//! Offline stand-in for the `serde` crate.
//!
//! Defines the trait shapes (`Serialize`/`Serializer`,
//! `Deserialize`/`Deserializer`) that the workspace's two manual impls
//! (`bcastdb_db::Key`) compile against, and re-exports the no-op derive
//! markers from the `serde_derive` stand-in. There is intentionally no
//! data-format machinery: nothing in-tree serializes at runtime — the
//! trace subsystem's JSON-Lines sink hand-rolls its encoding instead.

#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::fmt::Display;

/// A data format that can receive values ("visitor" half of serde's
/// serialization model, reduced to the primitives the workspace uses).
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error;

    /// Serializes a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u64`.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i64`.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
}

/// A value that can describe itself to any [`Serializer`].
pub trait Serialize {
    /// Feeds `self` into `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data format values can be read from, reduced to the primitives the
/// workspace's manual impls use.
pub trait Deserializer<'de>: Sized {
    /// Error produced on failure.
    type Error: Display;

    /// Reads an owned string.
    fn read_string(self) -> Result<String, Self::Error>;
}

/// A value constructible from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Builds `Self` from `deserializer`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for u64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self)
    }
}

impl Serialize for i64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.read_string()
    }
}
