//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: SplitMix64.
///
/// One 64-bit word of state advanced by a Weyl sequence and finalized
/// with two xor-shift-multiply rounds — the classic output function from
/// Steele/Lea/Flood "Fast splittable pseudorandom number generators".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // One warm-up mix so adjacent seeds do not start adjacent.
        let mut rng = StdRng {
            state: state ^ 0x5851_F42D_4C95_7F2D,
        };
        rng.state = rng.next_u64();
        rng
    }
}
