//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the surface `bcastdb-sim`'s `DetRng` wrapper
//! consumes: [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`],
//! raw output via [`RngCore`], and the [`Rng`] sampling helpers
//! `gen_range` / `gen_bool` / `gen`. The generator is SplitMix64 — fully
//! deterministic, statistically adequate for simulation workloads, and
//! dependency-free. This is not the real crate; see `vendor/README.md`
//! for why this stand-in exists.

#![forbid(unsafe_code)]

pub mod distributions;
pub mod rngs;

use distributions::uniform::{SampleRange, SampleUniform};
use distributions::{Distribution, Standard};

/// The core of a random number generator: a stream of raw bits.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        crate::unit_f64(self) < p
    }

    /// Samples a value of `T` from its standard distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Uniform `f64` in `[0, 1)` built from the top 53 bits of one output.
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u64 = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_f64_is_half_open() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let u = unit_f64(&mut r);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(3);
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 11];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
