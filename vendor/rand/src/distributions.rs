//! Sampling distributions: the `Standard` distribution and uniform ranges.

use crate::RngCore;

/// A distribution over values of `T`.
pub trait Distribution<T> {
    /// Samples one value using `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of a type: full range for integers,
/// `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        crate::unit_f64(rng)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub mod uniform {
    //! Uniform sampling over ranges, mirroring `rand`'s trait split:
    //! [`SampleUniform`] is the element type's capability, [`SampleRange`]
    //! the range shape.

    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Types that can be sampled uniformly between two bounds.
    pub trait SampleUniform: Sized + PartialOrd {
        /// Uniform sample from `[lo, hi)`.
        ///
        /// # Panics
        /// Panics if `lo >= hi`.
        fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
        /// Uniform sample from `[lo, hi]`.
        ///
        /// # Panics
        /// Panics if `lo > hi`.
        fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    }

    macro_rules! impl_sample_uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                    assert!(lo < hi, "gen_range: empty range");
                    let span = (hi as i128 - lo as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
                fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                    assert!(lo <= hi, "gen_range: empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleUniform for f64 {
        fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
            assert!(lo < hi, "gen_range: empty range");
            let u = crate::unit_f64(rng);
            let x = lo + u * (hi - lo);
            // Rounding can push the product up to `hi` for tiny spans.
            if x < hi {
                x
            } else {
                lo
            }
        }
        fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
            assert!(lo <= hi, "gen_range: empty range");
            let u = crate::unit_f64(rng);
            (lo + u * (hi - lo)).clamp(lo, hi)
        }
    }

    /// Range shapes accepted by `Rng::gen_range`.
    pub trait SampleRange<T> {
        /// Draws one uniform sample from this range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_half_open(rng, self.start, self.end)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (lo, hi) = self.into_inner();
            T::sample_inclusive(rng, lo, hi)
        }
    }
}
