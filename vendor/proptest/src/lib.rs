//! Offline stand-in for the `proptest` crate.
//!
//! A deterministic random-case property runner with the subset of
//! proptest's API the workspace uses: the [`proptest!`] /
//! [`prop_oneof!`] / `prop_assert*!` macros, range / tuple / [`Just`] /
//! [`any`] / [`collection::vec`] strategies, and [`ProptestConfig`].
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** Each failing case reports its case index; cases
//!   are derived from a fixed base seed, so a failure replays exactly by
//!   re-running the test. (`max_shrink_iters` is accepted and ignored.)
//! - **No persistence.** `proptest-regressions` files are neither read
//!   nor written; pin regressions as explicit deterministic `#[test]`s.

#![forbid(unsafe_code)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod collection;

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// Runner plumbing
// ---------------------------------------------------------------------------

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for compatibility; this runner never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property was falsified.
    Fail(String),
    /// The inputs were rejected (not counted as failure).
    Reject(String),
}

impl TestCaseError {
    /// A falsification with the given message.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// An input rejection with the given message.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "property falsified: {r}"),
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
        }
    }
}

/// The runner's deterministic generator (SplitMix64). Each case gets an
/// independent stream derived from a fixed base seed and the case index.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Fixed base so failures reproduce run-over-run.
    const BASE_SEED: u64 = 0xBCA5_7DB0_1CDC_5981;

    /// The generator for case number `case`.
    pub fn for_case(case: u32) -> Self {
        let mut rng = TestRng {
            state: Self::BASE_SEED ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        };
        rng.next_u64(); // warm-up mix
        rng
    }

    /// Next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value below `n` (`0` when `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Value`.
///
/// Object safe: `prop_map`/`boxed` carry `Self: Sized` bounds, so
/// `Box<dyn Strategy<Value = T>>` works (that is what [`prop_oneof!`]
/// builds).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Type-erases a strategy (used by [`prop_oneof!`]).
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.sample(rng))
    }
}

/// Uniform choice between boxed alternatives (built by [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

/// Values sampled from a type's whole domain (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy over a type's whole domain: `any::<u64>()`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn sample(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty => $wide:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $wide - self.start as $wide) as u64;
                (self.start as $wide + rng.below(span) as $wide) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as $wide - lo as $wide) as u64 + 1;
                (lo as $wide + rng.below(span) as $wide) as $t
            }
        }
    )*};
}

impl_range_strategy!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let x = self.start + rng.unit_f64() * (self.end - self.start);
        if x < self.end {
            x
        } else {
            self.start
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E));

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($items:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($items)* }
    };
    ($($items:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($items)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err(e) => {
                            panic!(
                                "{} failed at case {}/{}: {}",
                                stringify!($name), case, config.cases, e
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($strat)),+])
    };
}

/// `assert!` that fails the current case instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{}: {:?} != {:?}", format!($($fmt)+), l, r);
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "{}: {:?} == {:?}", format!($($fmt)+), l, r);
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case(0);
        for _ in 0..1000 {
            let v = (3u64..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let f = (0.25f64..0.5).sample(&mut rng);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::for_case(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn cases_are_reproducible() {
        let a: Vec<u64> = (0..5).map(|c| TestRng::for_case(c).next_u64()).collect();
        let b: Vec<u64> = (0..5).map(|c| TestRng::for_case(c).next_u64()).collect();
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn macro_roundtrip(x in 0u64..100, pair in (0u8..4, any::<bool>())) {
            prop_assert!(x < 100);
            let (k, _flag) = pair;
            prop_assert!(k < 4);
            prop_assert_eq!(k as u64 + x, x + k as u64);
            prop_assert_ne!(x, x + 1);
        }
    }
}
