//! Collection strategies: `proptest::collection::vec`.

use crate::{Strategy, TestRng};
use std::ops::{Range, RangeInclusive};

/// Size argument accepted by [`vec()`]: an exact length or a range.
pub trait IntoSizeRange {
    /// Inclusive lower and *exclusive* upper bound on the length.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

impl IntoSizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        (self.start, self.end)
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end() + 1)
    }
}

/// A strategy producing `Vec`s whose elements come from `element` and
/// whose length is uniform over `size`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (lo, hi) = size.bounds();
    assert!(lo < hi, "empty vec size range");
    VecStrategy { element, lo, hi }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    lo: usize,
    hi: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.hi - self.lo) as u64;
        let len = self.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_size_vec() {
        let s = vec(0u64..10, 4usize);
        let mut rng = TestRng::for_case(7);
        for _ in 0..50 {
            assert_eq!(s.sample(&mut rng).len(), 4);
        }
    }

    #[test]
    fn ranged_size_vec() {
        let s = vec(0u64..10, 2..6);
        let mut rng = TestRng::for_case(8);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
