//! Offline stand-in for the `criterion` crate.
//!
//! A minimal wall-clock micro-benchmark harness with criterion's macro
//! and builder surface (`criterion_group!` / `criterion_main!`,
//! [`Criterion::benchmark_group`], [`Bencher::iter`],
//! [`Bencher::iter_batched`]). Each benchmark is run for a short, fixed
//! measurement budget and its mean ns/iteration printed — enough to
//! compare hot paths locally; no statistics, plots, or baselines.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How batched inputs are sized (accepted for compatibility; the
/// stand-in always materializes one input per routine call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Entry point handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbench group: {name}");
        BenchmarkGroup { _parent: self }
    }

    /// Measures one stand-alone benchmark (outside any group).
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, f);
        self
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    let mut b = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = if b.iters > 0 {
        b.elapsed.as_nanos() as f64 / b.iters as f64
    } else {
        0.0
    };
    println!("  {id:<40} {per_iter:>12.1} ns/iter ({} iters)", b.iters);
}

/// A group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Measures one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, f);
        self
    }

    /// Sets the sample count (accepted for compatibility; the stand-in
    /// uses a fixed time budget instead).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ends the group (printing is immediate; nothing to flush).
    pub fn finish(self) {}
}

/// Measures closures; handed to the callback of
/// [`BenchmarkGroup::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

/// Measurement budget per benchmark. Small by design: the stand-in is
/// for local smoke comparisons, not publication-grade statistics.
const TARGET: Duration = Duration::from_millis(200);

impl Bencher {
    /// Times `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        loop {
            let out = routine();
            std::hint::black_box(&out);
            self.iters += 1;
            self.elapsed = start.elapsed();
            if self.elapsed >= TARGET {
                break;
            }
        }
    }

    /// Times `routine` over inputs freshly produced by `setup`; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        loop {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.elapsed += start.elapsed();
            std::hint::black_box(&out);
            self.iters += 1;
            if self.elapsed >= TARGET {
                break;
            }
        }
    }
}

/// Declares a benchmark group function calling each target with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                {
                    let mut c = $crate::Criterion::default();
                    $target(&mut c);
                }
            )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
