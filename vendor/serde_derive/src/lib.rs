//! Offline stand-in for `serde_derive`.
//!
//! The workspace uses `#[derive(serde::Serialize, serde::Deserialize)]`
//! purely as a *marker* on value types — no runtime serializer exists
//! in-tree (there is no `serde_json`/`bincode`), and no code bounds a
//! generic on `Serialize`/`Deserialize`. These derives therefore expand
//! to nothing: the attribute stays valid, the types stay unchanged, and
//! the two manual trait impls in `bcastdb-db` compile against the trait
//! definitions in the sibling `serde` stand-in.

use proc_macro::TokenStream;

/// No-op `Serialize` derive marker.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive marker.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
