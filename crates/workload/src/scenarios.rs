//! Named workload presets used across the experiment harness, examples,
//! and tests — one place to keep the standard shapes consistent.

use crate::spec::WorkloadConfig;

/// The standard evaluation workloads, mirroring the parameter choices the
/// benchmark binaries sweep around.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Large database, mild skew — conflicts are rare; isolates protocol
    /// overheads (message counts, commit latency).
    LowContention,
    /// Medium database, strong skew — steady conflict pressure.
    Moderate,
    /// Small database, multi-key transactions — the stress corner where
    /// conflict handling dominates.
    HighContention,
    /// Half the transactions are multi-read queries — exercises the
    /// read-only guarantees (free and abort-proof in the reliable/causal
    /// protocols, wound-able in the atomic one).
    ReadHeavy,
    /// Single-key blind writes at full tilt — the hot-spot worst case.
    HotSpot,
}

impl Scenario {
    /// All scenarios, mild to severe.
    pub const ALL: [Scenario; 5] = [
        Scenario::LowContention,
        Scenario::Moderate,
        Scenario::HighContention,
        Scenario::ReadHeavy,
        Scenario::HotSpot,
    ];

    /// A short stable name for tables and CSV files.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::LowContention => "low",
            Scenario::Moderate => "moderate",
            Scenario::HighContention => "high",
            Scenario::ReadHeavy => "read-heavy",
            Scenario::HotSpot => "hot-spot",
        }
    }

    /// The workload configuration for this scenario.
    pub fn config(self) -> WorkloadConfig {
        match self {
            Scenario::LowContention => WorkloadConfig {
                n_keys: 2000,
                theta: 0.3,
                reads_per_txn: 2,
                writes_per_txn: 2,
                readonly_fraction: 0.2,
                ..WorkloadConfig::default()
            },
            Scenario::Moderate => WorkloadConfig {
                n_keys: 200,
                theta: 0.8,
                reads_per_txn: 2,
                writes_per_txn: 2,
                readonly_fraction: 0.2,
                ..WorkloadConfig::default()
            },
            Scenario::HighContention => WorkloadConfig {
                n_keys: 20,
                theta: 0.9,
                reads_per_txn: 1,
                writes_per_txn: 3,
                readonly_fraction: 0.1,
                ..WorkloadConfig::default()
            },
            Scenario::ReadHeavy => WorkloadConfig {
                n_keys: 200,
                theta: 0.8,
                reads_per_txn: 1,
                writes_per_txn: 2,
                reads_per_ro_txn: 6,
                readonly_fraction: 0.5,
            },
            Scenario::HotSpot => WorkloadConfig {
                n_keys: 1,
                theta: 0.0,
                reads_per_txn: 0,
                writes_per_txn: 1,
                readonly_fraction: 0.0,
                ..WorkloadConfig::default()
            },
        }
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_config_is_valid() {
        for s in Scenario::ALL {
            s.config().validate();
        }
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<&str> =
            Scenario::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), Scenario::ALL.len());
    }

    #[test]
    fn contention_ordering_holds() {
        assert!(Scenario::LowContention.config().n_keys > Scenario::Moderate.config().n_keys);
        assert!(Scenario::Moderate.config().n_keys > Scenario::HighContention.config().n_keys);
    }

    /// Cross-crate smoke: every scenario runs clean on every protocol.
    #[test]
    fn scenarios_run_on_all_protocols() {
        use crate::runner::WorkloadRun;
        use bcastdb_core::{Cluster, ProtocolKind};
        use bcastdb_sim::SimDuration;

        for scenario in Scenario::ALL {
            for proto in ProtocolKind::ALL {
                let mut cluster = Cluster::builder().sites(3).protocol(proto).seed(97).build();
                let run = WorkloadRun::new(scenario.config(), 970);
                let report = run.open_loop(&mut cluster, 5, SimDuration::from_millis(5));
                assert!(report.quiesced, "{proto}/{scenario}");
                assert!(report.converged, "{proto}/{scenario}");
                cluster
                    .check_serializability()
                    .unwrap_or_else(|v| panic!("{proto}/{scenario}: {v}"));
            }
        }
    }
}
