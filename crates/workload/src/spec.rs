//! Workload configuration and transaction generation.

use crate::zipf::Zipf;
use bcastdb_db::{Key, TxnSpec};
use bcastdb_sim::DetRng;

/// Shape of the synthetic workload, mirroring the evaluation methodology of
/// the paper's era: fixed database, fixed transaction shapes, skewed
/// access, a read-only fraction.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of distinct objects in the database.
    pub n_keys: usize,
    /// Zipf skew over the key space (0 = uniform).
    pub theta: f64,
    /// Reads per update transaction.
    pub reads_per_txn: usize,
    /// Writes per update transaction.
    pub writes_per_txn: usize,
    /// Reads per read-only transaction.
    pub reads_per_ro_txn: usize,
    /// Fraction of transactions that are read-only (0.0..=1.0).
    pub readonly_fraction: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            n_keys: 1000,
            theta: 0.8,
            reads_per_txn: 2,
            writes_per_txn: 2,
            reads_per_ro_txn: 4,
            readonly_fraction: 0.0,
        }
    }
}

impl WorkloadConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics on nonsensical values (zero keys, fraction outside `[0,1]`,
    /// an update shape with zero writes).
    pub fn validate(&self) {
        assert!(self.n_keys > 0, "empty database");
        assert!(
            (0.0..=1.0).contains(&self.readonly_fraction),
            "read-only fraction out of range"
        );
        assert!(
            self.writes_per_txn > 0 || self.readonly_fraction >= 1.0,
            "update transactions need at least one write"
        );
    }

    /// Builds the Zipf sampler for this configuration.
    pub fn sampler(&self) -> Zipf {
        Zipf::new(self.n_keys, self.theta)
    }

    /// The key for 0-based index `i`.
    pub fn key(i: usize) -> Key {
        Key::new(format!("k{i:06}"))
    }

    /// Generates one transaction. Keys within a transaction are distinct;
    /// update transactions read their write set's keys first (the paper's
    /// model: all reads, then all writes), plus extra reads if configured.
    pub fn gen_txn(&self, zipf: &Zipf, rng: &mut DetRng) -> TxnSpec {
        let read_only = self.readonly_fraction > 0.0 && rng.gen_bool(self.readonly_fraction);
        let (n_reads, n_writes) = if read_only {
            (self.reads_per_ro_txn.max(1), 0)
        } else {
            (self.reads_per_txn, self.writes_per_txn)
        };
        let total = n_reads + n_writes;
        let mut picked = Vec::with_capacity(total);
        let mut guard = 0;
        while picked.len() < total.min(self.n_keys) {
            let idx = zipf.sample(rng);
            if !picked.contains(&idx) {
                picked.push(idx);
            }
            guard += 1;
            if guard > 100 * total.max(1) {
                // Tiny key spaces under heavy skew: fall back to linear fill.
                for i in 0..self.n_keys {
                    if picked.len() >= total.min(self.n_keys) {
                        break;
                    }
                    if !picked.contains(&i) {
                        picked.push(i);
                    }
                }
            }
        }
        let mut spec = TxnSpec::new();
        let n_reads_actual = picked.len().saturating_sub(n_writes.min(picked.len()));
        for &idx in picked.iter().take(n_reads_actual) {
            spec = spec.read(Self::key(idx));
        }
        for &idx in picked.iter().skip(n_reads_actual) {
            spec = spec.write(Self::key(idx), rng.gen_range(0..1_000_000));
        }
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WorkloadConfig {
        WorkloadConfig::default()
    }

    #[test]
    fn default_config_is_valid() {
        cfg().validate();
    }

    #[test]
    fn generated_update_txn_has_configured_shape() {
        let c = cfg();
        let z = c.sampler();
        let mut rng = DetRng::new(1);
        let t = c.gen_txn(&z, &mut rng);
        assert_eq!(t.reads().len(), c.reads_per_txn);
        assert_eq!(t.writes().len(), c.writes_per_txn);
        assert!(!t.is_read_only());
    }

    #[test]
    fn keys_within_txn_are_distinct() {
        let c = WorkloadConfig {
            n_keys: 10,
            theta: 0.99,
            reads_per_txn: 3,
            writes_per_txn: 3,
            ..cfg()
        };
        let z = c.sampler();
        let mut rng = DetRng::new(2);
        for _ in 0..200 {
            let t = c.gen_txn(&z, &mut rng);
            let mut all: Vec<&Key> = t.reads().iter().collect();
            all.extend(t.writes().iter().map(|w| &w.key));
            let mut dedup = all.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(all.len(), dedup.len(), "duplicate key in {t:?}");
        }
    }

    #[test]
    fn readonly_fraction_is_respected() {
        let c = WorkloadConfig {
            readonly_fraction: 0.5,
            ..cfg()
        };
        let z = c.sampler();
        let mut rng = DetRng::new(3);
        let n = 2000;
        let ro = (0..n)
            .filter(|_| c.gen_txn(&z, &mut rng).is_read_only())
            .count();
        let frac = ro as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.05, "read-only fraction {frac}");
    }

    #[test]
    fn pure_readonly_workload() {
        let c = WorkloadConfig {
            readonly_fraction: 1.0,
            writes_per_txn: 0,
            ..cfg()
        };
        c.validate();
        let z = c.sampler();
        let mut rng = DetRng::new(4);
        for _ in 0..50 {
            assert!(c.gen_txn(&z, &mut rng).is_read_only());
        }
    }

    #[test]
    fn tiny_keyspace_still_terminates() {
        let c = WorkloadConfig {
            n_keys: 2,
            reads_per_txn: 2,
            writes_per_txn: 2,
            ..cfg()
        };
        let z = c.sampler();
        let mut rng = DetRng::new(5);
        let t = c.gen_txn(&z, &mut rng);
        // Only two keys exist: transaction shrinks to fit.
        assert!(t.reads().len() + t.writes().len() <= 2);
    }

    #[test]
    #[should_panic(expected = "empty database")]
    fn zero_keys_invalid() {
        WorkloadConfig { n_keys: 0, ..cfg() }.validate();
    }

    #[test]
    fn key_naming_is_stable() {
        assert_eq!(WorkloadConfig::key(7).as_str(), "k000007");
    }
}
