//! Experiment drivers: submit generated transactions into a cluster and
//! collect the measurements the evaluation reports.

use crate::spec::WorkloadConfig;
use bcastdb_core::{Cluster, Metrics, TxnOutcome};
use bcastdb_db::TxnId;
use bcastdb_sim::{DetRng, SimDuration, SimTime, SiteId};

/// Everything an experiment needs from one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Transactions submitted by the driver.
    pub submitted: u64,
    /// Merged metrics across sites.
    pub metrics: Metrics,
    /// Point-to-point messages carried by the network.
    pub messages: u64,
    /// Virtual time consumed.
    pub duration: SimDuration,
    /// Committed transactions per virtual second.
    pub throughput_tps: f64,
    /// True iff the run quiesced (no events left).
    pub quiesced: bool,
    /// True iff all replicas converged to identical committed state.
    pub converged: bool,
}

impl RunReport {
    /// True iff every submitted transaction terminated (committed or
    /// aborted) — silent protocol wedges leave this false even when the
    /// run quiesced.
    pub fn all_terminated(&self) -> bool {
        self.metrics.commits() + self.metrics.aborts() == self.submitted
    }

    fn collect(cluster: &Cluster, quiesced: bool, submitted: u64) -> RunReport {
        let metrics = cluster.metrics();
        let duration = cluster.now().saturating_since(SimTime::ZERO);
        let secs = duration.as_micros() as f64 / 1_000_000.0;
        let throughput_tps = if secs > 0.0 {
            metrics.commits() as f64 / secs
        } else {
            0.0
        };
        RunReport {
            submitted,
            messages: cluster.messages_sent(),
            duration,
            throughput_tps,
            quiesced,
            converged: cluster.replicas_converged(),
            metrics,
        }
    }
}

/// Drivers that feed a workload into a cluster.
#[derive(Debug, Clone)]
pub struct WorkloadRun {
    /// The workload shape.
    pub config: WorkloadConfig,
    /// Generator seed (independent of the cluster's network seed).
    pub seed: u64,
}

impl WorkloadRun {
    /// Creates a driver.
    pub fn new(config: WorkloadConfig, seed: u64) -> Self {
        config.validate();
        WorkloadRun { config, seed }
    }

    /// Open-loop run: every site receives `txns_per_site` transactions with
    /// exponential interarrival times of the given mean, then the cluster
    /// runs to quiescence.
    pub fn open_loop(
        &self,
        cluster: &mut Cluster,
        txns_per_site: usize,
        mean_interarrival: SimDuration,
    ) -> RunReport {
        let zipf = self.config.sampler();
        let mut rng = DetRng::new(self.seed);
        let base = cluster.now();
        for site in 0..cluster.config().sites {
            let mut site_rng = rng.fork(site as u64);
            let mut at = base;
            for _ in 0..txns_per_site {
                at += SimDuration::from_micros(
                    site_rng.gen_exp(mean_interarrival.as_micros() as f64) as u64,
                );
                let spec = self.config.gen_txn(&zipf, &mut site_rng);
                cluster.submit_at(at, SiteId(site), spec);
            }
        }
        let out = cluster.run_to_quiescence();
        RunReport::collect(
            cluster,
            matches!(out, bcastdb_sim::RunOutcome::Quiesced { .. }),
            (txns_per_site * cluster.config().sites) as u64,
        )
    }

    /// Closed-loop run: `clients_per_site` clients per site each submit
    /// `txns_per_client` transactions back-to-back (a new one the moment
    /// the previous terminates) — the multiprogramming-level model used by
    /// the throughput experiment.
    pub fn closed_loop(
        &self,
        cluster: &mut Cluster,
        clients_per_site: usize,
        txns_per_client: usize,
    ) -> RunReport {
        let zipf = self.config.sampler();
        let mut rng = DetRng::new(self.seed);
        struct Client {
            site: SiteId,
            rng: DetRng,
            outstanding: Option<TxnId>,
            remaining: usize,
        }
        let mut clients: Vec<Client> = Vec::new();
        for site in 0..cluster.config().sites {
            for c in 0..clients_per_site {
                clients.push(Client {
                    site: SiteId(site),
                    rng: rng.fork((site * 10_000 + c) as u64),
                    outstanding: None,
                    remaining: txns_per_client,
                });
            }
        }
        // Initial submissions.
        for cl in clients.iter_mut() {
            if cl.remaining > 0 {
                let spec = self.config.gen_txn(&zipf, &mut cl.rng);
                cl.outstanding = Some(cluster.submit(cl.site, spec));
                cl.remaining -= 1;
            }
        }
        let quantum = SimDuration::from_millis(2);
        // Generous hard stop: closed loops always drain, but a protocol bug
        // must not hang the experiment harness.
        let hard_stop = cluster.now() + SimDuration::from_secs(3600);
        let quiesced;
        loop {
            let active = clients
                .iter()
                .any(|c| c.outstanding.is_some() || c.remaining > 0);
            if !active {
                let out = cluster.run_to_quiescence();
                quiesced = matches!(out, bcastdb_sim::RunOutcome::Quiesced { .. });
                break;
            }
            if cluster.now() >= hard_stop {
                quiesced = false;
                break;
            }
            let deadline = cluster.now() + quantum;
            cluster.run_until(deadline);
            for cl in clients.iter_mut() {
                let done = cl
                    .outstanding
                    .is_some_and(|t| cluster.outcome(t) != TxnOutcome::Pending);
                if done {
                    cl.outstanding = None;
                    if cl.remaining > 0 {
                        let spec = self.config.gen_txn(&zipf, &mut cl.rng);
                        cl.outstanding = Some(cluster.submit(cl.site, spec));
                        cl.remaining -= 1;
                    }
                }
            }
        }
        RunReport::collect(
            cluster,
            quiesced,
            (clients_per_site * txns_per_client * cluster.config().sites) as u64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcastdb_core::ProtocolKind;

    fn cluster(proto: ProtocolKind, sites: usize, seed: u64) -> Cluster {
        Cluster::builder()
            .sites(sites)
            .protocol(proto)
            .seed(seed)
            .build()
    }

    fn small_cfg() -> WorkloadConfig {
        WorkloadConfig {
            n_keys: 200,
            theta: 0.5,
            reads_per_txn: 1,
            writes_per_txn: 1,
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn open_loop_commits_everything_without_contention() {
        for proto in ProtocolKind::ALL {
            let mut c = cluster(proto, 3, 11);
            let run = WorkloadRun::new(small_cfg(), 42);
            let report = run.open_loop(&mut c, 10, SimDuration::from_millis(50));
            assert!(report.quiesced, "{proto}");
            assert!(report.converged, "{proto}");
            assert_eq!(
                report.metrics.commits() + report.metrics.aborts(),
                30,
                "{proto}: all transactions terminated"
            );
            assert!(report.metrics.commits() >= 25, "{proto}: too many aborts");
            c.check_serializability()
                .unwrap_or_else(|v| panic!("{proto}: {v}"));
        }
    }

    #[test]
    fn closed_loop_drains_all_clients() {
        for proto in ProtocolKind::ALL {
            let mut c = cluster(proto, 3, 12);
            let run = WorkloadRun::new(small_cfg(), 43);
            let report = run.closed_loop(&mut c, 2, 5);
            assert!(report.quiesced, "{proto}");
            assert_eq!(
                report.metrics.commits() + report.metrics.aborts(),
                3 * 2 * 5,
                "{proto}"
            );
            assert!(report.converged, "{proto}");
            c.check_serializability()
                .unwrap_or_else(|v| panic!("{proto}: {v}"));
        }
    }

    #[test]
    fn contended_workload_stays_serializable() {
        // A 5-key database with multi-key transactions: heavy conflicts.
        let cfg = WorkloadConfig {
            n_keys: 5,
            theta: 0.9,
            reads_per_txn: 1,
            writes_per_txn: 2,
            ..WorkloadConfig::default()
        };
        for proto in ProtocolKind::ALL {
            let mut c = cluster(proto, 4, 13);
            let run = WorkloadRun::new(cfg.clone(), 44);
            let report = run.open_loop(&mut c, 8, SimDuration::from_millis(2));
            assert!(report.quiesced, "{proto}: stuck under contention");
            assert!(report.converged, "{proto}: diverged under contention");
            c.check_serializability()
                .unwrap_or_else(|v| panic!("{proto}: {v}"));
            // Every transaction terminated one way or the other.
            assert_eq!(
                report.metrics.commits() + report.metrics.aborts(),
                4 * 8,
                "{proto}"
            );
        }
    }

    #[test]
    fn reports_are_deterministic() {
        let go = || {
            let mut c = cluster(ProtocolKind::CausalBcast, 3, 7);
            let run = WorkloadRun::new(small_cfg(), 7);
            let r = run.open_loop(&mut c, 20, SimDuration::from_millis(5));
            (r.messages, r.metrics.commits(), r.metrics.aborts())
        };
        assert_eq!(go(), go());
    }

    #[test]
    fn throughput_is_positive_when_commits_happen() {
        let mut c = cluster(ProtocolKind::AtomicBcast, 3, 14);
        let run = WorkloadRun::new(small_cfg(), 45);
        let report = run.open_loop(&mut c, 5, SimDuration::from_millis(10));
        assert!(report.throughput_tps > 0.0);
        assert!(report.duration > SimDuration::ZERO);
    }
}
