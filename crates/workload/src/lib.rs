//! # bcastdb-workload
//!
//! Workload generation and experiment drivers for `bcastdb`. The paper's
//! evaluation era used synthetic transaction mixes over a fixed database
//! with skewed (hot-spot / Zipf) access; this crate reproduces that
//! methodology:
//!
//! - [`zipf::Zipf`] — a seeded Zipf sampler for skewed key selection;
//! - [`WorkloadConfig`] — transaction shape (reads/writes per transaction,
//!   read-only fraction), database size, skew, and arrival process;
//! - [`WorkloadRun`] — drivers that submit the generated transactions into
//!   a [`Cluster`](bcastdb_core::Cluster) either *open-loop* (Poisson
//!   arrivals at a configured rate) or *closed-loop* (a fixed
//!   multiprogramming level: each client submits its next transaction when
//!   the previous one terminates), and collect the measurements every
//!   experiment reports.

//!
//! # Example
//!
//! ```
//! use bcastdb_core::{Cluster, ProtocolKind};
//! use bcastdb_sim::SimDuration;
//! use bcastdb_workload::{Scenario, WorkloadRun};
//!
//! let mut cluster = Cluster::builder()
//!     .sites(3)
//!     .protocol(ProtocolKind::ReliableBcast)
//!     .seed(1)
//!     .build();
//! let run = WorkloadRun::new(Scenario::Moderate.config(), 99);
//! let report = run.open_loop(&mut cluster, 5, SimDuration::from_millis(10));
//! assert!(report.quiesced && report.all_terminated());
//! cluster.check_serializability().expect("one-copy serializable");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod runner;
pub mod scenarios;
pub mod spec;
pub mod zipf;

pub use runner::{RunReport, WorkloadRun};
pub use scenarios::Scenario;
pub use spec::WorkloadConfig;
pub use zipf::Zipf;
