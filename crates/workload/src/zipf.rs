//! Zipf-distributed sampling over a key space.
//!
//! The standard model for skewed database access: key rank `k` (1-based)
//! is drawn with probability proportional to `1 / k^theta`. `theta = 0`
//! is uniform; `theta ≈ 1` is heavily skewed.

use bcastdb_sim::DetRng;

/// A precomputed Zipf sampler over `n` items.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative distribution, `cdf[i]` = P(rank <= i+1).
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` items with skew `theta >= 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is negative or non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "zipf needs at least one item");
        assert!(theta >= 0.0 && theta.is_finite(), "invalid skew {theta}");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(theta);
            cdf.push(total);
        }
        for v in cdf.iter_mut() {
            *v /= total;
        }
        // Guard against floating-point shortfall at the top end.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True iff the sampler covers zero items (never constructible).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a 0-based item index.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let u = rng.gen_f64();
        // First index whose CDF value is >= u.
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = DetRng::new(1);
        let mut counts = vec![0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.1).abs() < 0.01, "uniform fraction {frac}");
        }
    }

    #[test]
    fn skewed_prefers_low_ranks() {
        let z = Zipf::new(100, 0.99);
        let mut rng = DetRng::new(2);
        let mut counts = vec![0usize; 100];
        let n = 100_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[50]);
        // Rank 1 under theta≈1 over 100 items gets ~1/H(100) ≈ 19%.
        let frac0 = counts[0] as f64 / n as f64;
        assert!(frac0 > 0.12, "top rank fraction {frac0}");
    }

    #[test]
    fn single_item_always_sampled() {
        let z = Zipf::new(1, 0.8);
        let mut rng = DetRng::new(3);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn samples_cover_the_range() {
        let z = Zipf::new(5, 0.5);
        let mut rng = DetRng::new(4);
        let mut seen = [false; 5];
        for _ in 0..10_000 {
            seen[z.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_items_panics() {
        let _ = Zipf::new(0, 0.5);
    }

    #[test]
    #[should_panic(expected = "invalid skew")]
    fn negative_theta_panics() {
        let _ = Zipf::new(5, -1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let z = Zipf::new(50, 0.7);
        let mut a = DetRng::new(9);
        let mut b = DetRng::new(9);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }
}
