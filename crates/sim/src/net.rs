//! The simulated network.
//!
//! Models the communication substrate the paper assumes: point-to-point
//! links that are FIFO per sender/receiver pair, with configurable latency,
//! probabilistic message loss, crash failures, and partitions. Ordering
//! *across* senders is not guaranteed — that is exactly the gap the
//! broadcast primitives in `bcastdb-broadcast` close.

use crate::stats::Sample;
use crate::{DetRng, SimDuration, SimTime, SiteId};
use std::collections::HashSet;

/// Distribution of one-way link latency.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum LatencyModel {
    /// Every message takes exactly this long.
    Constant(SimDuration),
    /// Uniformly distributed between `min` and `max` (inclusive bounds).
    Uniform {
        /// Minimum one-way latency.
        min: SimDuration,
        /// Maximum one-way latency.
        max: SimDuration,
    },
    /// `base` plus an exponentially distributed jitter with mean `mean_jitter`.
    Exponential {
        /// Fixed propagation floor.
        base: SimDuration,
        /// Mean of the additive exponential jitter.
        mean_jitter: SimDuration,
    },
}

impl LatencyModel {
    /// Samples a one-way latency.
    pub fn sample(&self, rng: &mut DetRng) -> SimDuration {
        match *self {
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { min, max } => {
                let lo = min.as_micros();
                let hi = max.as_micros().max(lo);
                SimDuration::from_micros(rng.gen_range(lo..=hi))
            }
            LatencyModel::Exponential { base, mean_jitter } => {
                let jitter = rng.gen_exp(mean_jitter.as_micros() as f64);
                base + SimDuration::from_micros(jitter as u64)
            }
        }
    }

    /// The mean of the distribution (used by analytic message-cost models).
    pub fn mean(&self) -> SimDuration {
        match *self {
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { min, max } => {
                SimDuration::from_micros((min.as_micros() + max.as_micros()) / 2)
            }
            LatencyModel::Exponential { base, mean_jitter } => base + mean_jitter,
        }
    }
}

/// Administrative state of a link or site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkState {
    /// Messages flow normally.
    Up,
    /// Messages are silently discarded (crash or partition).
    Down,
}

/// Static configuration of the simulated network.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct NetworkConfig {
    /// One-way latency distribution applied to every link.
    pub latency: LatencyModel,
    /// Probability that any given message is lost in transit.
    pub loss_probability: f64,
    /// Fixed per-message local processing/queueing cost added at the sender.
    pub send_overhead: SimDuration,
    /// Optional per-link bandwidth in bytes per second: each message adds a
    /// transmission delay of `size / bandwidth` and occupies the link for
    /// that long (serialization delay on top of propagation latency).
    /// `None` models infinitely fast links.
    pub bandwidth_bytes_per_sec: Option<u64>,
    /// Optional per-*sender* NIC bandwidth in bytes per second: all links
    /// leaving one site share a single transmitter, so fan-out serializes
    /// at the sender instead of proceeding in parallel on independent
    /// links. This is what makes an `N-1`-copy broadcast leader-bound.
    /// `None` (the default everywhere) keeps the per-link-only model.
    pub nic_bytes_per_sec: Option<u64>,
}

impl NetworkConfig {
    /// A low-latency LAN profile resembling the paper's testbed era:
    /// ~1ms ± exponential jitter, lossless.
    pub fn lan() -> Self {
        NetworkConfig {
            latency: LatencyModel::Exponential {
                base: SimDuration::from_micros(800),
                mean_jitter: SimDuration::from_micros(200),
            },
            loss_probability: 0.0,
            send_overhead: SimDuration::from_micros(50),
            bandwidth_bytes_per_sec: None,
            nic_bytes_per_sec: None,
        }
    }

    /// A wide-area profile: 20ms ± 5ms jitter.
    pub fn wan() -> Self {
        NetworkConfig {
            latency: LatencyModel::Exponential {
                base: SimDuration::from_millis(20),
                mean_jitter: SimDuration::from_millis(5),
            },
            loss_probability: 0.0,
            send_overhead: SimDuration::from_micros(50),
            bandwidth_bytes_per_sec: None,
            nic_bytes_per_sec: None,
        }
    }

    /// Fixed latency, no jitter, no loss — ideal for unit tests that assert
    /// exact delivery schedules.
    pub fn deterministic(latency: SimDuration) -> Self {
        NetworkConfig {
            latency: LatencyModel::Constant(latency),
            loss_probability: 0.0,
            send_overhead: SimDuration::ZERO,
            bandwidth_bytes_per_sec: None,
            nic_bytes_per_sec: None,
        }
    }

    /// Returns a copy with the given loss probability.
    pub fn with_loss(mut self, p: f64) -> Self {
        self.loss_probability = p.clamp(0.0, 1.0);
        self
    }

    /// Returns a copy with a finite per-link bandwidth.
    pub fn with_bandwidth(mut self, bytes_per_sec: u64) -> Self {
        self.bandwidth_bytes_per_sec = Some(bytes_per_sec.max(1));
        self
    }

    /// Returns a copy with a finite per-sender NIC bandwidth, serializing
    /// all of a site's outgoing traffic through one shared transmitter.
    pub fn with_nic_bandwidth(mut self, bytes_per_sec: u64) -> Self {
        self.nic_bytes_per_sec = Some(bytes_per_sec.max(1));
        self
    }
}

/// Dynamic network state: computes delivery schedules, enforces per-link
/// FIFO, and tracks crashes/partitions plus traffic counters.
#[derive(Debug)]
pub struct Network {
    config: NetworkConfig,
    /// Per-(src, dst) serialization state; enforces the paper's FIFO-links
    /// assumption under jittered latency and serializes transmissions under
    /// finite bandwidth. Stored as a flat `stride × stride` table indexed
    /// `src * stride + dst` — [`Network::transit`] runs once per message,
    /// and a direct index beats hashing a key pair there. The table grows
    /// (power-of-two stride) the first time a new highest site id appears.
    links: Vec<LinkClock>,
    link_stride: usize,
    /// Crash flags indexed by site, plus a population count so the
    /// no-failures common case is a single comparison.
    crashed: Vec<bool>,
    crashed_count: usize,
    /// Unordered pairs that cannot currently communicate, keyed in
    /// normalized `(min, max)` form so a cut is symmetric *by
    /// construction*: there is no way to sever or heal only one
    /// direction of a link. Kept as a set — partitions are rare and
    /// short-lived — and guarded by an `is_empty` check on the hot path.
    severed: HashSet<(SiteId, SiteId)>,
    /// Per-sender shared-transmitter state, indexed by site and used only
    /// under a finite [`NetworkConfig::nic_bytes_per_sec`]: when the site's
    /// NIC finishes its previous transmission.
    nic_free: Vec<SimTime>,
    messages_sent: u64,
    messages_dropped: u64,
    bytes_sent: u64,
}

/// Per-link serialization state.
///
/// `tx_free` is when the link's transmitter finishes the previous message:
/// a new message begins transmitting at `max(submit, tx_free)`, so an idle
/// link adds zero queueing delay and a busy link serializes back-to-back
/// transmissions with no overlap and no artificial gap. `last_arrival`
/// additionally clamps delivery so jittered latency cannot reorder a link.
#[derive(Debug, Clone, Copy, Default)]
struct LinkClock {
    /// End of the previous message's transmission on this link.
    tx_free: SimTime,
    /// Arrival time of the most recently scheduled message on this link.
    last_arrival: SimTime,
}

/// Outcome of submitting a message to the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transit {
    /// Message will arrive at the given time.
    DeliverAt(SimTime),
    /// Message was lost (random loss, crash, or partition).
    Dropped,
}

impl Network {
    /// Creates a network in the fully-connected, all-up state.
    pub fn new(config: NetworkConfig) -> Self {
        Network {
            config,
            links: Vec::new(),
            link_stride: 0,
            crashed: Vec::new(),
            crashed_count: 0,
            severed: HashSet::new(),
            nic_free: Vec::new(),
            messages_sent: 0,
            messages_dropped: 0,
            bytes_sent: 0,
        }
    }

    /// Grows the flat link table so sites `0..new_n` are addressable,
    /// remapping existing per-link state. Strides are powers of two, so a
    /// fixed site population triggers at most a handful of rebuilds.
    fn grow_links(&mut self, new_n: usize) {
        let stride = new_n.next_power_of_two().max(4);
        let mut links = vec![LinkClock::default(); stride * stride];
        for from in 0..self.link_stride {
            for to in 0..self.link_stride {
                links[from * stride + to] = self.links[from * self.link_stride + to];
            }
        }
        self.links = links;
        self.link_stride = stride;
    }

    /// Access the static configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Computes what happens to a message of `size_hint` bytes submitted at
    /// `now` from `from` to `to`, updating traffic counters and the FIFO
    /// horizon for that link.
    pub fn transit(
        &mut self,
        now: SimTime,
        from: SiteId,
        to: SiteId,
        size_hint: usize,
        rng: &mut DetRng,
    ) -> Transit {
        if (self.crashed_count > 0 && (self.is_crashed(from) || self.is_crashed(to)))
            || (!self.severed.is_empty() && self.is_severed(from, to))
        {
            self.messages_dropped += 1;
            return Transit::Dropped;
        }
        if self.config.loss_probability > 0.0 && rng.gen_bool(self.config.loss_probability) {
            self.messages_dropped += 1;
            return Transit::Dropped;
        }
        self.messages_sent += 1;
        self.bytes_sent += size_hint as u64;
        let latency = self.config.latency.sample(rng) + self.config.send_overhead;
        // Finite bandwidth: the message occupies the link for its
        // transmission time, pushing later traffic back (modelled through
        // the FIFO horizon below).
        let mut transmission = match self.config.bandwidth_bytes_per_sec {
            Some(bw) => SimDuration::from_micros((size_hint as u64).saturating_mul(1_000_000) / bw),
            None => SimDuration::ZERO,
        };
        if from.0 >= self.link_stride || to.0 >= self.link_stride {
            self.grow_links(from.0.max(to.0) + 1);
        }
        let index = from.0 * self.link_stride + to.0;
        // Transmission starts once the message is submitted AND the previous
        // message has left the transmitter: back-to-back messages serialize
        // exactly, an idle link starts immediately (zero queueing delay).
        let mut start = now.max(self.links[index].tx_free);
        if let Some(nic_bw) = self.config.nic_bytes_per_sec {
            // The sender's NIC is shared by all its links: transmission also
            // waits for it and occupies it, so fan-out serializes at the
            // sender. The effective rate is the slower of link and NIC.
            if from.0 >= self.nic_free.len() {
                self.nic_free.resize(from.0 + 1, SimTime::ZERO);
            }
            let tx_nic =
                SimDuration::from_micros((size_hint as u64).saturating_mul(1_000_000) / nic_bw);
            start = start.max(self.nic_free[from.0]);
            transmission = transmission.max(tx_nic);
            self.nic_free[from.0] = start + transmission;
        }
        let link = &mut self.links[index];
        link.tx_free = start + transmission;
        // Propagation after transmission; clamp to the previous arrival so
        // jittered latency cannot reorder the link (FIFO). Equal-time
        // arrivals are fine: the event queue preserves insertion order.
        let arrive = (link.tx_free + latency).max(link.last_arrival);
        link.last_arrival = arrive;
        Transit::DeliverAt(arrive)
    }

    /// Marks `site` as crashed: it neither sends nor receives from now on.
    pub fn crash(&mut self, site: SiteId) {
        if site.0 >= self.crashed.len() {
            self.crashed.resize(site.0 + 1, false);
        }
        if !self.crashed[site.0] {
            self.crashed[site.0] = true;
            self.crashed_count += 1;
        }
    }

    /// Recovers a crashed site.
    pub fn recover(&mut self, site: SiteId) {
        if self.crashed.get(site.0).copied().unwrap_or(false) {
            self.crashed[site.0] = false;
            self.crashed_count -= 1;
        }
    }

    /// True iff `site` is currently crashed.
    pub fn is_crashed(&self, site: SiteId) -> bool {
        self.crashed.get(site.0).copied().unwrap_or(false)
    }

    /// Normalized key for the unordered pair `{a, b}`.
    fn pair_key(a: SiteId, b: SiteId) -> (SiteId, SiteId) {
        if a.0 <= b.0 {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Severs bidirectional communication between `a` and `b`.
    pub fn sever(&mut self, a: SiteId, b: SiteId) {
        self.severed.insert(Self::pair_key(a, b));
    }

    /// Restores communication between `a` and `b`.
    pub fn heal(&mut self, a: SiteId, b: SiteId) {
        self.severed.remove(&Self::pair_key(a, b));
    }

    /// Partitions the sites into two groups that cannot talk to each other.
    pub fn partition(&mut self, group_a: &[SiteId], group_b: &[SiteId]) {
        for &a in group_a {
            for &b in group_b {
                self.sever(a, b);
            }
        }
    }

    /// Removes all partitions (crashed sites stay crashed).
    pub fn heal_all(&mut self) {
        self.severed.clear();
    }

    fn is_severed(&self, a: SiteId, b: SiteId) -> bool {
        self.severed.contains(&Self::pair_key(a, b))
    }

    /// Total messages accepted by the network so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Total messages dropped (loss, crash, partition) so far.
    pub fn messages_dropped(&self) -> u64 {
        self.messages_dropped
    }

    /// Total payload bytes accepted so far.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Folds the network's state at `now` into a metrics sample: cumulative
    /// traffic counters plus link-serialization gauges. A link is *busy*
    /// when its transmitter is still occupied (`tx_free > now`), which only
    /// happens under a finite [`NetworkConfig::bandwidth_bytes_per_sec`];
    /// its *backlog* is how far `tx_free` lies in the future — the queueing
    /// delay the next message on that link would see. On infinitely fast
    /// links every transmission completes instantly and all three gauges
    /// stay zero.
    pub fn sample_into(&self, now: SimTime, sample: &mut Sample) {
        sample.set("net.msgs_sent", self.messages_sent);
        sample.set("net.msgs_dropped", self.messages_dropped);
        sample.set("net.bytes_sent", self.bytes_sent);
        let mut busy = 0u64;
        let mut backlog_total = 0u64;
        let mut backlog_max = 0u64;
        for link in &self.links {
            if link.tx_free > now {
                busy += 1;
                let lag = link.tx_free.as_micros() - now.as_micros();
                backlog_total += lag;
                backlog_max = backlog_max.max(lag);
            }
        }
        sample.set("net.links_busy", busy);
        sample.set("net.backlog_us_total", backlog_total);
        sample.set("net.backlog_us_max", backlog_max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::new(1234)
    }

    #[test]
    fn constant_latency_is_exact() {
        let mut net = Network::new(NetworkConfig::deterministic(SimDuration::from_millis(2)));
        let mut r = rng();
        match net.transit(SimTime::ZERO, SiteId(0), SiteId(1), 10, &mut r) {
            Transit::DeliverAt(t) => assert_eq!(t.as_micros(), 2_000),
            Transit::Dropped => panic!("lossless network dropped a message"),
        }
    }

    #[test]
    fn fifo_is_enforced_per_link() {
        // High jitter would reorder without FIFO enforcement.
        let cfg = NetworkConfig {
            latency: LatencyModel::Uniform {
                min: SimDuration::from_micros(10),
                max: SimDuration::from_millis(10),
            },
            loss_probability: 0.0,
            send_overhead: SimDuration::ZERO,
            bandwidth_bytes_per_sec: None,
            nic_bytes_per_sec: None,
        };
        let mut net = Network::new(cfg);
        let mut r = rng();
        let mut last = SimTime::ZERO;
        for i in 0..200 {
            let now = SimTime::from_micros(i);
            match net.transit(now, SiteId(0), SiteId(1), 1, &mut r) {
                Transit::DeliverAt(t) => {
                    // Equal arrival times are allowed: the event queue
                    // breaks ties in insertion order, preserving FIFO.
                    assert!(t >= last, "FIFO violated: {t:?} < {last:?}");
                    last = t;
                }
                Transit::Dropped => panic!("unexpected drop"),
            }
        }
    }

    #[test]
    fn distinct_links_do_not_share_fifo_horizon() {
        let mut net = Network::new(NetworkConfig::deterministic(SimDuration::from_millis(1)));
        let mut r = rng();
        let t1 = match net.transit(SimTime::ZERO, SiteId(0), SiteId(1), 1, &mut r) {
            Transit::DeliverAt(t) => t,
            _ => panic!(),
        };
        // Different destination: same nominal arrival is fine.
        let t2 = match net.transit(SimTime::ZERO, SiteId(0), SiteId(2), 1, &mut r) {
            Transit::DeliverAt(t) => t,
            _ => panic!(),
        };
        assert_eq!(t1, t2);
    }

    #[test]
    fn crashed_sites_drop_traffic_both_ways() {
        let mut net = Network::new(NetworkConfig::deterministic(SimDuration::from_millis(1)));
        let mut r = rng();
        net.crash(SiteId(1));
        assert!(net.is_crashed(SiteId(1)));
        assert_eq!(
            net.transit(SimTime::ZERO, SiteId(0), SiteId(1), 1, &mut r),
            Transit::Dropped
        );
        assert_eq!(
            net.transit(SimTime::ZERO, SiteId(1), SiteId(0), 1, &mut r),
            Transit::Dropped
        );
        net.recover(SiteId(1));
        assert!(matches!(
            net.transit(SimTime::ZERO, SiteId(0), SiteId(1), 1, &mut r),
            Transit::DeliverAt(_)
        ));
    }

    #[test]
    fn partition_blocks_cross_group_traffic_only() {
        let mut net = Network::new(NetworkConfig::deterministic(SimDuration::from_millis(1)));
        let mut r = rng();
        net.partition(&[SiteId(0), SiteId(1)], &[SiteId(2)]);
        assert_eq!(
            net.transit(SimTime::ZERO, SiteId(0), SiteId(2), 1, &mut r),
            Transit::Dropped
        );
        assert!(matches!(
            net.transit(SimTime::ZERO, SiteId(0), SiteId(1), 1, &mut r),
            Transit::DeliverAt(_)
        ));
        net.heal_all();
        assert!(matches!(
            net.transit(SimTime::ZERO, SiteId(0), SiteId(2), 1, &mut r),
            Transit::DeliverAt(_)
        ));
    }

    #[test]
    fn sever_and_heal_are_symmetric_regardless_of_argument_order() {
        let mut net = Network::new(NetworkConfig::deterministic(SimDuration::from_millis(1)));
        let mut r = rng();
        // Cut as (0,2); both directions must drop.
        net.sever(SiteId(0), SiteId(2));
        assert_eq!(
            net.transit(SimTime::ZERO, SiteId(0), SiteId(2), 1, &mut r),
            Transit::Dropped
        );
        assert_eq!(
            net.transit(SimTime::ZERO, SiteId(2), SiteId(0), 1, &mut r),
            Transit::Dropped
        );
        // Heal with the arguments *swapped*; both directions must flow.
        net.heal(SiteId(2), SiteId(0));
        assert!(matches!(
            net.transit(SimTime::ZERO, SiteId(0), SiteId(2), 1, &mut r),
            Transit::DeliverAt(_)
        ));
        assert!(matches!(
            net.transit(SimTime::ZERO, SiteId(2), SiteId(0), 1, &mut r),
            Transit::DeliverAt(_)
        ));
    }

    #[test]
    fn loss_probability_drops_roughly_that_fraction() {
        let mut net =
            Network::new(NetworkConfig::deterministic(SimDuration::from_millis(1)).with_loss(0.3));
        let mut r = rng();
        let n = 10_000;
        let mut dropped = 0;
        for i in 0..n {
            if net.transit(SimTime::from_micros(i), SiteId(0), SiteId(1), 1, &mut r)
                == Transit::Dropped
            {
                dropped += 1;
            }
        }
        let frac = dropped as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.03, "drop fraction {frac}");
    }

    #[test]
    fn counters_track_sent_dropped_bytes() {
        let mut net = Network::new(NetworkConfig::deterministic(SimDuration::from_millis(1)));
        let mut r = rng();
        net.transit(SimTime::ZERO, SiteId(0), SiteId(1), 100, &mut r);
        net.crash(SiteId(2));
        net.transit(SimTime::ZERO, SiteId(0), SiteId(2), 100, &mut r);
        assert_eq!(net.messages_sent(), 1);
        assert_eq!(net.messages_dropped(), 1);
        assert_eq!(net.bytes_sent(), 100);
    }

    #[test]
    fn finite_bandwidth_adds_transmission_delay() {
        // 1_000 bytes at 1 MB/s = 1ms transmission on top of 1ms latency.
        let cfg =
            NetworkConfig::deterministic(SimDuration::from_millis(1)).with_bandwidth(1_000_000);
        let mut net = Network::new(cfg);
        let mut r = rng();
        match net.transit(SimTime::ZERO, SiteId(0), SiteId(1), 1_000, &mut r) {
            Transit::DeliverAt(t) => assert_eq!(t.as_micros(), 2_000),
            Transit::Dropped => panic!("unexpected drop"),
        }
    }

    #[test]
    fn bandwidth_serializes_back_to_back_messages() {
        let cfg =
            NetworkConfig::deterministic(SimDuration::from_millis(1)).with_bandwidth(1_000_000);
        let mut net = Network::new(cfg);
        let mut r = rng();
        let t1 = match net.transit(SimTime::ZERO, SiteId(0), SiteId(1), 1_000, &mut r) {
            Transit::DeliverAt(t) => t,
            _ => panic!(),
        };
        let t2 = match net.transit(SimTime::ZERO, SiteId(0), SiteId(1), 1_000, &mut r) {
            Transit::DeliverAt(t) => t,
            _ => panic!(),
        };
        assert!(
            t2.as_micros() >= t1.as_micros() + 1_000,
            "second message must wait out the first's transmission: {t1} vs {t2}"
        );
    }

    #[test]
    fn idle_link_adds_no_queueing_delay() {
        // Regression: the old horizon accounting bumped a message arriving
        // exactly at the FIFO horizon by a spurious +1µs. Two messages
        // submitted at the same instant on an infinitely fast link must
        // arrive at the same instant (FIFO held by event-queue tie order).
        let mut net = Network::new(NetworkConfig::deterministic(SimDuration::from_millis(2)));
        let mut r = rng();
        let t1 = match net.transit(SimTime::ZERO, SiteId(0), SiteId(1), 64, &mut r) {
            Transit::DeliverAt(t) => t,
            _ => panic!(),
        };
        let t2 = match net.transit(SimTime::ZERO, SiteId(0), SiteId(1), 64, &mut r) {
            Transit::DeliverAt(t) => t,
            _ => panic!(),
        };
        assert_eq!(t1.as_micros(), 2_000);
        assert_eq!(t2, t1, "same-instant message picked up spurious queueing");
        // A later, spaced-out message is likewise unqueued.
        let t3 = match net.transit(
            SimTime::from_micros(5_000),
            SiteId(0),
            SiteId(1),
            64,
            &mut r,
        ) {
            Transit::DeliverAt(t) => t,
            _ => panic!(),
        };
        assert_eq!(t3.as_micros(), 7_000);
    }

    #[test]
    fn back_to_back_transmissions_abut_exactly() {
        // 1_000 bytes at 1 MB/s = 1ms transmission. Three messages submitted
        // together must arrive exactly one transmission apart — serialized,
        // with neither overlap nor artificial gaps.
        let cfg =
            NetworkConfig::deterministic(SimDuration::from_millis(1)).with_bandwidth(1_000_000);
        let mut net = Network::new(cfg);
        let mut r = rng();
        let arrivals: Vec<u64> = (0..3)
            .map(
                |_| match net.transit(SimTime::ZERO, SiteId(0), SiteId(1), 1_000, &mut r) {
                    Transit::DeliverAt(t) => t.as_micros(),
                    _ => panic!(),
                },
            )
            .collect();
        assert_eq!(arrivals, vec![2_000, 3_000, 4_000]);
    }

    #[test]
    fn nic_bandwidth_serializes_fan_out_across_destinations() {
        // 1_000 bytes at 1 MB/s = 1ms per transmission. Without a NIC
        // limit, fan-out to distinct destinations proceeds in parallel on
        // independent links; with one, the sender's shared transmitter
        // serializes the copies.
        let cfg =
            NetworkConfig::deterministic(SimDuration::from_millis(1)).with_nic_bandwidth(1_000_000);
        let mut net = Network::new(cfg);
        let mut r = rng();
        let arrivals: Vec<u64> = (1..4)
            .map(
                |dst| match net.transit(SimTime::ZERO, SiteId(0), SiteId(dst), 1_000, &mut r) {
                    Transit::DeliverAt(t) => t.as_micros(),
                    _ => panic!(),
                },
            )
            .collect();
        assert_eq!(arrivals, vec![2_000, 3_000, 4_000]);
        // A different sender's NIC is independent.
        match net.transit(SimTime::ZERO, SiteId(1), SiteId(2), 1_000, &mut r) {
            Transit::DeliverAt(t) => assert_eq!(t.as_micros(), 2_000),
            _ => panic!(),
        }
    }

    #[test]
    fn nic_and_link_bandwidth_compose_at_the_slower_rate() {
        // Link at 500 kB/s (2ms per 1_000 bytes) is slower than the NIC at
        // 1 MB/s (1ms): the transmission runs at the bottleneck rate and
        // occupies both clocks for its duration.
        let cfg = NetworkConfig::deterministic(SimDuration::from_millis(1))
            .with_bandwidth(500_000)
            .with_nic_bandwidth(1_000_000);
        let mut net = Network::new(cfg);
        let mut r = rng();
        let t1 = match net.transit(SimTime::ZERO, SiteId(0), SiteId(1), 1_000, &mut r) {
            Transit::DeliverAt(t) => t.as_micros(),
            _ => panic!(),
        };
        assert_eq!(t1, 3_000);
        // Second copy to another site still waits out the NIC occupancy.
        let t2 = match net.transit(SimTime::ZERO, SiteId(0), SiteId(2), 1_000, &mut r) {
            Transit::DeliverAt(t) => t.as_micros(),
            _ => panic!(),
        };
        assert_eq!(t2, 5_000);
    }

    use proptest::prelude::*;

    proptest! {
        /// Link-serialization property: under constant latency and finite
        /// bandwidth, transmission intervals on one link never overlap, an
        /// idle link adds zero queueing delay, and arrivals are FIFO.
        #[test]
        fn transmissions_never_overlap_on_a_link(
            gaps in proptest::collection::vec(0u64..3_000, 1..40),
            sizes in proptest::collection::vec(1usize..4_000, 40),
        ) {
            const LATENCY_US: u64 = 500;
            const BW: u64 = 1_000_000; // 1 byte/µs
            let cfg = NetworkConfig::deterministic(SimDuration::from_micros(LATENCY_US))
                .with_bandwidth(BW);
            let mut net = Network::new(cfg);
            let mut r = rng();
            let mut now = 0u64;
            let mut prev_tx_end = 0u64;
            let mut prev_arrive = 0u64;
            for (i, &gap) in gaps.iter().enumerate() {
                now += gap;
                let size = sizes[i];
                let tx = size as u64; // at 1 byte/µs
                let arrive = match net.transit(
                    SimTime::from_micros(now),
                    SiteId(0),
                    SiteId(1),
                    size,
                    &mut r,
                ) {
                    Transit::DeliverAt(t) => t.as_micros(),
                    Transit::Dropped => unreachable!("lossless network"),
                };
                // Constant latency ⇒ arrival = transmission end + latency.
                let tx_end = arrive - LATENCY_US;
                let tx_start = tx_end - tx;
                prop_assert!(
                    tx_start >= prev_tx_end,
                    "transmissions overlap: starts at {tx_start} before previous end {prev_tx_end}"
                );
                prop_assert!(tx_start >= now, "transmission began before submission");
                if now >= prev_tx_end {
                    // Link idle at submission: zero queueing delay.
                    prop_assert_eq!(arrive, now + tx + LATENCY_US);
                }
                prop_assert!(arrive >= prev_arrive, "FIFO violated");
                prev_tx_end = tx_end;
                prev_arrive = arrive;
            }
        }
    }

    #[test]
    fn latency_model_means() {
        assert_eq!(
            LatencyModel::Constant(SimDuration::from_millis(3)).mean(),
            SimDuration::from_millis(3)
        );
        assert_eq!(
            LatencyModel::Uniform {
                min: SimDuration::from_micros(100),
                max: SimDuration::from_micros(300),
            }
            .mean(),
            SimDuration::from_micros(200)
        );
        assert_eq!(
            LatencyModel::Exponential {
                base: SimDuration::from_micros(500),
                mean_jitter: SimDuration::from_micros(100),
            }
            .mean(),
            SimDuration::from_micros(600)
        );
    }
}
