//! The simulated network.
//!
//! Models the communication substrate the paper assumes: point-to-point
//! links that are FIFO per sender/receiver pair, with configurable latency,
//! probabilistic message loss, crash failures, and partitions. Ordering
//! *across* senders is not guaranteed — that is exactly the gap the
//! broadcast primitives in `bcastdb-broadcast` close.
//!
//! On top of the uniform `loss_probability` knob sits the packet-fault
//! model: a [`FaultPlan`] of per-link, per-direction, time-windowed
//! [`FaultClause`]s that can drop, duplicate (with a delayed second
//! copy), reorder (skip the FIFO clamp under extra jitter), burst-drop
//! (a "gray" link that loses everything for a window), or delay-spike
//! individual packets. All randomness comes from the simulation's one
//! deterministic RNG, so any run is replayable from `(seed, plan)`
//! alone; with no plan installed the RNG stream is byte-identical to a
//! plan-free build.

use crate::stats::Sample;
use crate::{DetRng, SimDuration, SimTime, SiteId};
use std::collections::HashSet;

/// Distribution of one-way link latency.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum LatencyModel {
    /// Every message takes exactly this long.
    Constant(SimDuration),
    /// Uniformly distributed between `min` and `max` (inclusive bounds).
    Uniform {
        /// Minimum one-way latency.
        min: SimDuration,
        /// Maximum one-way latency.
        max: SimDuration,
    },
    /// `base` plus an exponentially distributed jitter with mean `mean_jitter`.
    Exponential {
        /// Fixed propagation floor.
        base: SimDuration,
        /// Mean of the additive exponential jitter.
        mean_jitter: SimDuration,
    },
}

impl LatencyModel {
    /// Samples a one-way latency.
    pub fn sample(&self, rng: &mut DetRng) -> SimDuration {
        match *self {
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { min, max } => {
                let lo = min.as_micros();
                let hi = max.as_micros().max(lo);
                SimDuration::from_micros(rng.gen_range(lo..=hi))
            }
            LatencyModel::Exponential { base, mean_jitter } => {
                let jitter = rng.gen_exp(mean_jitter.as_micros() as f64);
                base + SimDuration::from_micros(jitter as u64)
            }
        }
    }

    /// The mean of the distribution (used by analytic message-cost models).
    pub fn mean(&self) -> SimDuration {
        match *self {
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { min, max } => {
                SimDuration::from_micros((min.as_micros() + max.as_micros()) / 2)
            }
            LatencyModel::Exponential { base, mean_jitter } => base + mean_jitter,
        }
    }
}

/// Administrative state of a link or site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkState {
    /// Messages flow normally.
    Up,
    /// Messages are silently discarded (crash or partition).
    Down,
}

/// Static configuration of the simulated network.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct NetworkConfig {
    /// One-way latency distribution applied to every link.
    pub latency: LatencyModel,
    /// Probability that any given message is lost in transit.
    pub loss_probability: f64,
    /// Fixed per-message local processing/queueing cost added at the sender.
    pub send_overhead: SimDuration,
    /// Optional per-link bandwidth in bytes per second: each message adds a
    /// transmission delay of `size / bandwidth` and occupies the link for
    /// that long (serialization delay on top of propagation latency).
    /// `None` models infinitely fast links.
    pub bandwidth_bytes_per_sec: Option<u64>,
    /// Optional per-*sender* NIC bandwidth in bytes per second: all links
    /// leaving one site share a single transmitter, so fan-out serializes
    /// at the sender instead of proceeding in parallel on independent
    /// links. This is what makes an `N-1`-copy broadcast leader-bound.
    /// `None` (the default everywhere) keeps the per-link-only model.
    pub nic_bytes_per_sec: Option<u64>,
}

impl NetworkConfig {
    /// A low-latency LAN profile resembling the paper's testbed era:
    /// ~1ms ± exponential jitter, lossless.
    pub fn lan() -> Self {
        NetworkConfig {
            latency: LatencyModel::Exponential {
                base: SimDuration::from_micros(800),
                mean_jitter: SimDuration::from_micros(200),
            },
            loss_probability: 0.0,
            send_overhead: SimDuration::from_micros(50),
            bandwidth_bytes_per_sec: None,
            nic_bytes_per_sec: None,
        }
    }

    /// A wide-area profile: 20ms ± 5ms jitter.
    pub fn wan() -> Self {
        NetworkConfig {
            latency: LatencyModel::Exponential {
                base: SimDuration::from_millis(20),
                mean_jitter: SimDuration::from_millis(5),
            },
            loss_probability: 0.0,
            send_overhead: SimDuration::from_micros(50),
            bandwidth_bytes_per_sec: None,
            nic_bytes_per_sec: None,
        }
    }

    /// Fixed latency, no jitter, no loss — ideal for unit tests that assert
    /// exact delivery schedules.
    pub fn deterministic(latency: SimDuration) -> Self {
        NetworkConfig {
            latency: LatencyModel::Constant(latency),
            loss_probability: 0.0,
            send_overhead: SimDuration::ZERO,
            bandwidth_bytes_per_sec: None,
            nic_bytes_per_sec: None,
        }
    }

    /// Returns a copy with the given loss probability.
    pub fn with_loss(mut self, p: f64) -> Self {
        self.loss_probability = p.clamp(0.0, 1.0);
        self
    }

    /// Returns a copy with a finite per-link bandwidth.
    pub fn with_bandwidth(mut self, bytes_per_sec: u64) -> Self {
        self.bandwidth_bytes_per_sec = Some(bytes_per_sec.max(1));
        self
    }

    /// Returns a copy with a finite per-sender NIC bandwidth, serializing
    /// all of a site's outgoing traffic through one shared transmitter.
    pub fn with_nic_bandwidth(mut self, bytes_per_sec: u64) -> Self {
        self.nic_bytes_per_sec = Some(bytes_per_sec.max(1));
        self
    }
}

/// The effect of one [`FaultClause`] on a matching packet.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum FaultKind {
    /// Drop the packet with probability `p`.
    Drop {
        /// Per-packet drop probability.
        p: f64,
    },
    /// With probability `p`, deliver the packet *twice*: the normal copy
    /// plus a second one `extra_delay` later. The second copy bypasses
    /// the FIFO clamp — a duplicated packet can also arrive reordered,
    /// exactly the combination retransmitting NICs produce.
    Duplicate {
        /// Per-packet duplication probability.
        p: f64,
        /// How far behind the original the second copy arrives.
        extra_delay: SimDuration,
    },
    /// With probability `p`, add up to `max_extra` of uniform jitter and
    /// *skip the per-link FIFO clamp*, so the packet can overtake or be
    /// overtaken by its neighbours on the same link.
    Reorder {
        /// Per-packet reorder probability.
        p: f64,
        /// Upper bound of the extra uniform jitter.
        max_extra: SimDuration,
    },
    /// A "gray" link: every matching packet is dropped for the whole
    /// clause window. No randomness — the window *is* the fault.
    BurstLoss,
    /// With probability `p`, delay the packet by a fixed `extra` on top
    /// of its sampled latency (FIFO clamp still applies, so a spike
    /// stalls everything behind it — a bufferbloat burst).
    DelaySpike {
        /// Per-packet spike probability.
        p: f64,
        /// The fixed extra delay.
        extra: SimDuration,
    },
}

impl FaultKind {
    /// Short stable name used by the plan grammar and tables.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Drop { .. } => "drop",
            FaultKind::Duplicate { .. } => "dup",
            FaultKind::Reorder { .. } => "reorder",
            FaultKind::BurstLoss => "burst",
            FaultKind::DelaySpike { .. } => "spike",
        }
    }
}

/// One time-windowed fault on a set of directed links.
///
/// `from`/`to` are selectors: `None` matches every sender/receiver, so
/// `{from: Some(2), to: None}` degrades everything site 2 *sends*
/// without touching what it hears — per-direction asymmetry is the
/// default, not a special case. The window is half-open `[start, end)`
/// on the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultClause {
    /// Sender selector (`None` = any site).
    pub from: Option<SiteId>,
    /// Receiver selector (`None` = any site).
    pub to: Option<SiteId>,
    /// Start of the active window (inclusive).
    pub start: SimTime,
    /// End of the active window (exclusive).
    pub end: SimTime,
    /// What happens to matching packets.
    pub kind: FaultKind,
}

impl FaultClause {
    /// True iff this clause applies to a packet sent `from → to` at `now`.
    pub fn matches(&self, now: SimTime, from: SiteId, to: SiteId) -> bool {
        now >= self.start
            && now < self.end
            && self.from.is_none_or(|f| f == from)
            && self.to.is_none_or(|t| t == to)
    }
}

/// A replayable schedule of packet faults.
///
/// Clauses are evaluated in order on every packet; each matching
/// probabilistic clause consumes RNG draws in that fixed order, which is
/// what makes a `(seed, plan)` pair fully determine a run. An empty plan
/// is indistinguishable from no plan.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultPlan {
    /// The clauses, applied in order to every packet.
    pub clauses: Vec<FaultClause>,
}

impl FaultPlan {
    /// A plan with no clauses (faults off).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True iff the plan has no clauses.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }
}

/// Exact attribution of [`Network::messages_dropped`]: every drop is
/// counted in precisely one bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DropBreakdown {
    /// Uniform `loss_probability` and probabilistic `Drop` clauses.
    pub loss: u64,
    /// Sender or receiver crashed.
    pub crash: u64,
    /// The link is severed by a partition.
    pub partition: u64,
    /// A `BurstLoss` clause window.
    pub burst: u64,
}

impl DropBreakdown {
    /// Sum of all buckets — always equals `messages_dropped`.
    pub fn total(&self) -> u64 {
        self.loss + self.crash + self.partition + self.burst
    }
}

/// Dynamic network state: computes delivery schedules, enforces per-link
/// FIFO, and tracks crashes/partitions plus traffic counters.
#[derive(Debug)]
pub struct Network {
    config: NetworkConfig,
    /// Per-(src, dst) serialization state; enforces the paper's FIFO-links
    /// assumption under jittered latency and serializes transmissions under
    /// finite bandwidth. Stored as a flat `stride × stride` table indexed
    /// `src * stride + dst` — [`Network::transit`] runs once per message,
    /// and a direct index beats hashing a key pair there. The table grows
    /// (power-of-two stride) the first time a new highest site id appears.
    links: Vec<LinkClock>,
    link_stride: usize,
    /// Crash flags indexed by site, plus a population count so the
    /// no-failures common case is a single comparison.
    crashed: Vec<bool>,
    crashed_count: usize,
    /// Unordered pairs that cannot currently communicate, keyed in
    /// normalized `(min, max)` form so a cut is symmetric *by
    /// construction*: there is no way to sever or heal only one
    /// direction of a link. Kept as a set — partitions are rare and
    /// short-lived — and guarded by an `is_empty` check on the hot path.
    severed: HashSet<(SiteId, SiteId)>,
    /// Per-sender shared-transmitter state, indexed by site and used only
    /// under a finite [`NetworkConfig::nic_bytes_per_sec`]: when the site's
    /// NIC finishes its previous transmission.
    nic_free: Vec<SimTime>,
    /// The installed packet-fault plan, if any. `None` keeps the hot
    /// path (and the RNG stream) byte-identical to a plan-free build.
    fault_plan: Option<FaultPlan>,
    messages_sent: u64,
    messages_dropped: u64,
    dropped: DropBreakdown,
    duplicated: u64,
    reordered: u64,
    delay_spiked: u64,
    bytes_sent: u64,
}

/// Per-link serialization state.
///
/// `tx_free` is when the link's transmitter finishes the previous message:
/// a new message begins transmitting at `max(submit, tx_free)`, so an idle
/// link adds zero queueing delay and a busy link serializes back-to-back
/// transmissions with no overlap and no artificial gap. `last_arrival`
/// additionally clamps delivery so jittered latency cannot reorder a link.
#[derive(Debug, Clone, Copy, Default)]
struct LinkClock {
    /// End of the previous message's transmission on this link.
    tx_free: SimTime,
    /// Arrival time of the most recently scheduled message on this link.
    last_arrival: SimTime,
}

/// Outcome of submitting a message to the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transit {
    /// Message will arrive at the given time.
    DeliverAt(SimTime),
    /// Message was lost (random loss, crash, partition, or burst).
    Dropped,
    /// A `DelaySpike` clause fired: the message arrives at the given
    /// (inflated) time. Semantically a delivery — the distinct variant
    /// exists so callers can surface the spike in traces and metrics.
    Delayed(SimTime),
    /// A `Duplicate` clause fired: the message arrives *twice*.
    Duplicated {
        /// Arrival of the normal copy.
        first: SimTime,
        /// Arrival of the duplicate (bypasses the FIFO clamp).
        second: SimTime,
    },
}

impl Network {
    /// Creates a network in the fully-connected, all-up state.
    pub fn new(config: NetworkConfig) -> Self {
        Network {
            config,
            links: Vec::new(),
            link_stride: 0,
            crashed: Vec::new(),
            crashed_count: 0,
            severed: HashSet::new(),
            nic_free: Vec::new(),
            fault_plan: None,
            messages_sent: 0,
            messages_dropped: 0,
            dropped: DropBreakdown::default(),
            duplicated: 0,
            reordered: 0,
            delay_spiked: 0,
            bytes_sent: 0,
        }
    }

    /// Installs a packet-fault plan. An empty plan is treated as none,
    /// keeping the hot path and RNG stream identical to a fresh network.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = if plan.is_empty() { None } else { Some(plan) };
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Grows the flat link table so sites `0..new_n` are addressable,
    /// remapping existing per-link state. Strides are powers of two, so a
    /// fixed site population triggers at most a handful of rebuilds.
    fn grow_links(&mut self, new_n: usize) {
        let stride = new_n.next_power_of_two().max(4);
        let mut links = vec![LinkClock::default(); stride * stride];
        for from in 0..self.link_stride {
            for to in 0..self.link_stride {
                links[from * stride + to] = self.links[from * self.link_stride + to];
            }
        }
        self.links = links;
        self.link_stride = stride;
    }

    /// Access the static configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Computes what happens to a message of `size_hint` bytes submitted at
    /// `now` from `from` to `to`, updating traffic counters and the FIFO
    /// horizon for that link.
    pub fn transit(
        &mut self,
        now: SimTime,
        from: SiteId,
        to: SiteId,
        size_hint: usize,
        rng: &mut DetRng,
    ) -> Transit {
        if self.crashed_count > 0 && (self.is_crashed(from) || self.is_crashed(to)) {
            self.messages_dropped += 1;
            self.dropped.crash += 1;
            return Transit::Dropped;
        }
        if !self.severed.is_empty() && self.is_severed(from, to) {
            self.messages_dropped += 1;
            self.dropped.partition += 1;
            return Transit::Dropped;
        }
        // Gray links drop everything in their window before any RNG is
        // consumed: a burst is a property of the window, not a sample.
        if self.fault_plan.is_some() && self.burst_active(now, from, to) {
            self.messages_dropped += 1;
            self.dropped.burst += 1;
            return Transit::Dropped;
        }
        if self.config.loss_probability > 0.0 && rng.gen_bool(self.config.loss_probability) {
            self.messages_dropped += 1;
            self.dropped.loss += 1;
            return Transit::Dropped;
        }
        // Probabilistic fault clauses, in plan order so the RNG stream is
        // a pure function of (seed, plan). Matching clauses compose:
        // extra delays add up, the first Duplicate hit wins, and a Drop
        // hit short-circuits everything after it.
        let mut extra = SimDuration::ZERO;
        let mut duplicate: Option<SimDuration> = None;
        let mut reorder_hit = false;
        let mut spiked = false;
        let n_clauses = self.fault_plan.as_ref().map_or(0, |p| p.clauses.len());
        for i in 0..n_clauses {
            let clause = self.fault_plan.as_ref().expect("plan present").clauses[i];
            if !clause.matches(now, from, to) {
                continue;
            }
            match clause.kind {
                FaultKind::Drop { p } => {
                    if rng.gen_bool(p) {
                        self.messages_dropped += 1;
                        self.dropped.loss += 1;
                        return Transit::Dropped;
                    }
                }
                FaultKind::Duplicate { p, extra_delay } => {
                    if duplicate.is_none() && rng.gen_bool(p) {
                        duplicate = Some(extra_delay);
                    }
                }
                FaultKind::Reorder { p, max_extra } => {
                    if rng.gen_bool(p) {
                        reorder_hit = true;
                        extra += SimDuration::from_micros(
                            rng.gen_range(0..=max_extra.as_micros().max(1)),
                        );
                    }
                }
                FaultKind::BurstLoss => {} // handled above, RNG-free
                FaultKind::DelaySpike { p, extra: spike } => {
                    if rng.gen_bool(p) {
                        spiked = true;
                        extra += spike;
                    }
                }
            }
        }
        self.messages_sent += 1;
        self.bytes_sent += size_hint as u64;
        let latency = self.config.latency.sample(rng) + self.config.send_overhead + extra;
        // Finite bandwidth: the message occupies the link for its
        // transmission time, pushing later traffic back (modelled through
        // the FIFO horizon below).
        let mut transmission = match self.config.bandwidth_bytes_per_sec {
            Some(bw) => SimDuration::from_micros((size_hint as u64).saturating_mul(1_000_000) / bw),
            None => SimDuration::ZERO,
        };
        if from.0 >= self.link_stride || to.0 >= self.link_stride {
            self.grow_links(from.0.max(to.0) + 1);
        }
        let index = from.0 * self.link_stride + to.0;
        // Transmission starts once the message is submitted AND the previous
        // message has left the transmitter: back-to-back messages serialize
        // exactly, an idle link starts immediately (zero queueing delay).
        let mut start = now.max(self.links[index].tx_free);
        if let Some(nic_bw) = self.config.nic_bytes_per_sec {
            // The sender's NIC is shared by all its links: transmission also
            // waits for it and occupies it, so fan-out serializes at the
            // sender. The effective rate is the slower of link and NIC.
            if from.0 >= self.nic_free.len() {
                self.nic_free.resize(from.0 + 1, SimTime::ZERO);
            }
            let tx_nic =
                SimDuration::from_micros((size_hint as u64).saturating_mul(1_000_000) / nic_bw);
            start = start.max(self.nic_free[from.0]);
            transmission = transmission.max(tx_nic);
            self.nic_free[from.0] = start + transmission;
        }
        let link = &mut self.links[index];
        link.tx_free = start + transmission;
        // Propagation after transmission; clamp to the previous arrival so
        // jittered latency cannot reorder the link (FIFO). Equal-time
        // arrivals are fine: the event queue preserves insertion order.
        let raw = link.tx_free + latency;
        let arrive = if reorder_hit {
            // A reorder hit skips the clamp: the packet lands wherever
            // its jittered latency puts it. Only count a reorder when it
            // actually overtakes traffic already scheduled on the link.
            if raw < link.last_arrival {
                self.reordered += 1;
            }
            link.last_arrival = link.last_arrival.max(raw);
            raw
        } else {
            let arrive = raw.max(link.last_arrival);
            link.last_arrival = arrive;
            arrive
        };
        if spiked {
            self.delay_spiked += 1;
        }
        if let Some(extra_delay) = duplicate {
            // The second copy trails the first and bypasses the FIFO
            // clamp (it does not advance `last_arrival` either): a late
            // duplicate is out-of-band traffic, not part of the stream.
            self.duplicated += 1;
            return Transit::Duplicated {
                first: arrive,
                second: arrive + extra_delay,
            };
        }
        if spiked {
            return Transit::Delayed(arrive);
        }
        Transit::DeliverAt(arrive)
    }

    /// True iff a `BurstLoss` clause covers this packet.
    fn burst_active(&self, now: SimTime, from: SiteId, to: SiteId) -> bool {
        self.fault_plan.as_ref().is_some_and(|plan| {
            plan.clauses
                .iter()
                .any(|c| matches!(c.kind, FaultKind::BurstLoss) && c.matches(now, from, to))
        })
    }

    /// Marks `site` as crashed: it neither sends nor receives from now on.
    pub fn crash(&mut self, site: SiteId) {
        if site.0 >= self.crashed.len() {
            self.crashed.resize(site.0 + 1, false);
        }
        if !self.crashed[site.0] {
            self.crashed[site.0] = true;
            self.crashed_count += 1;
        }
    }

    /// Recovers a crashed site.
    pub fn recover(&mut self, site: SiteId) {
        if self.crashed.get(site.0).copied().unwrap_or(false) {
            self.crashed[site.0] = false;
            self.crashed_count -= 1;
        }
    }

    /// True iff `site` is currently crashed.
    pub fn is_crashed(&self, site: SiteId) -> bool {
        self.crashed.get(site.0).copied().unwrap_or(false)
    }

    /// Normalized key for the unordered pair `{a, b}`.
    fn pair_key(a: SiteId, b: SiteId) -> (SiteId, SiteId) {
        if a.0 <= b.0 {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Severs bidirectional communication between `a` and `b`.
    pub fn sever(&mut self, a: SiteId, b: SiteId) {
        self.severed.insert(Self::pair_key(a, b));
    }

    /// Restores communication between `a` and `b`.
    pub fn heal(&mut self, a: SiteId, b: SiteId) {
        self.severed.remove(&Self::pair_key(a, b));
    }

    /// Partitions the sites into two groups that cannot talk to each other.
    pub fn partition(&mut self, group_a: &[SiteId], group_b: &[SiteId]) {
        for &a in group_a {
            for &b in group_b {
                self.sever(a, b);
            }
        }
    }

    /// Removes all partitions (crashed sites stay crashed).
    pub fn heal_all(&mut self) {
        self.severed.clear();
    }

    fn is_severed(&self, a: SiteId, b: SiteId) -> bool {
        self.severed.contains(&Self::pair_key(a, b))
    }

    /// Total messages accepted by the network so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Total messages dropped (loss, crash, partition, burst) so far.
    pub fn messages_dropped(&self) -> u64 {
        self.messages_dropped
    }

    /// Per-cause attribution of [`Network::messages_dropped`].
    pub fn drop_breakdown(&self) -> DropBreakdown {
        self.dropped
    }

    /// Packets duplicated by a `Duplicate` clause so far.
    pub fn messages_duplicated(&self) -> u64 {
        self.duplicated
    }

    /// Packets that actually overtook link traffic via a `Reorder` clause.
    pub fn messages_reordered(&self) -> u64 {
        self.reordered
    }

    /// Packets hit by a `DelaySpike` clause so far.
    pub fn messages_delay_spiked(&self) -> u64 {
        self.delay_spiked
    }

    /// Total payload bytes accepted so far.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Folds the network's state at `now` into a metrics sample: cumulative
    /// traffic counters plus link-serialization gauges. A link is *busy*
    /// when its transmitter is still occupied (`tx_free > now`), which only
    /// happens under a finite [`NetworkConfig::bandwidth_bytes_per_sec`];
    /// its *backlog* is how far `tx_free` lies in the future — the queueing
    /// delay the next message on that link would see. On infinitely fast
    /// links every transmission completes instantly and all three gauges
    /// stay zero.
    pub fn sample_into(&self, now: SimTime, sample: &mut Sample) {
        sample.set("net.msgs_sent", self.messages_sent);
        sample.set("net.msgs_dropped", self.messages_dropped);
        sample.set("net.bytes_sent", self.bytes_sent);
        // Fault-model counters, emitted only when a plan is installed so
        // plan-free metrics streams stay byte-identical to older builds.
        if self.fault_plan.is_some() {
            sample.set("net.dup", self.duplicated);
            sample.set("net.reordered", self.reordered);
            sample.set("net.burst_dropped", self.dropped.burst);
            sample.set("net.delay_spiked", self.delay_spiked);
            sample.set("net.dropped_loss", self.dropped.loss);
            sample.set("net.dropped_crash", self.dropped.crash);
            sample.set("net.dropped_partition", self.dropped.partition);
        }
        let mut busy = 0u64;
        let mut backlog_total = 0u64;
        let mut backlog_max = 0u64;
        for link in &self.links {
            if link.tx_free > now {
                busy += 1;
                let lag = link.tx_free.as_micros() - now.as_micros();
                backlog_total += lag;
                backlog_max = backlog_max.max(lag);
            }
        }
        sample.set("net.links_busy", busy);
        sample.set("net.backlog_us_total", backlog_total);
        sample.set("net.backlog_us_max", backlog_max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::new(1234)
    }

    #[test]
    fn constant_latency_is_exact() {
        let mut net = Network::new(NetworkConfig::deterministic(SimDuration::from_millis(2)));
        let mut r = rng();
        match net.transit(SimTime::ZERO, SiteId(0), SiteId(1), 10, &mut r) {
            Transit::DeliverAt(t) => assert_eq!(t.as_micros(), 2_000),
            other => panic!("plain network produced {other:?}"),
        }
    }

    #[test]
    fn fifo_is_enforced_per_link() {
        // High jitter would reorder without FIFO enforcement.
        let cfg = NetworkConfig {
            latency: LatencyModel::Uniform {
                min: SimDuration::from_micros(10),
                max: SimDuration::from_millis(10),
            },
            loss_probability: 0.0,
            send_overhead: SimDuration::ZERO,
            bandwidth_bytes_per_sec: None,
            nic_bytes_per_sec: None,
        };
        let mut net = Network::new(cfg);
        let mut r = rng();
        let mut last = SimTime::ZERO;
        for i in 0..200 {
            let now = SimTime::from_micros(i);
            match net.transit(now, SiteId(0), SiteId(1), 1, &mut r) {
                Transit::DeliverAt(t) => {
                    // Equal arrival times are allowed: the event queue
                    // breaks ties in insertion order, preserving FIFO.
                    assert!(t >= last, "FIFO violated: {t:?} < {last:?}");
                    last = t;
                }
                other => panic!("plain network produced {other:?}"),
            }
        }
    }

    #[test]
    fn distinct_links_do_not_share_fifo_horizon() {
        let mut net = Network::new(NetworkConfig::deterministic(SimDuration::from_millis(1)));
        let mut r = rng();
        let t1 = match net.transit(SimTime::ZERO, SiteId(0), SiteId(1), 1, &mut r) {
            Transit::DeliverAt(t) => t,
            _ => panic!(),
        };
        // Different destination: same nominal arrival is fine.
        let t2 = match net.transit(SimTime::ZERO, SiteId(0), SiteId(2), 1, &mut r) {
            Transit::DeliverAt(t) => t,
            _ => panic!(),
        };
        assert_eq!(t1, t2);
    }

    #[test]
    fn crashed_sites_drop_traffic_both_ways() {
        let mut net = Network::new(NetworkConfig::deterministic(SimDuration::from_millis(1)));
        let mut r = rng();
        net.crash(SiteId(1));
        assert!(net.is_crashed(SiteId(1)));
        assert_eq!(
            net.transit(SimTime::ZERO, SiteId(0), SiteId(1), 1, &mut r),
            Transit::Dropped
        );
        assert_eq!(
            net.transit(SimTime::ZERO, SiteId(1), SiteId(0), 1, &mut r),
            Transit::Dropped
        );
        net.recover(SiteId(1));
        assert!(matches!(
            net.transit(SimTime::ZERO, SiteId(0), SiteId(1), 1, &mut r),
            Transit::DeliverAt(_)
        ));
    }

    #[test]
    fn partition_blocks_cross_group_traffic_only() {
        let mut net = Network::new(NetworkConfig::deterministic(SimDuration::from_millis(1)));
        let mut r = rng();
        net.partition(&[SiteId(0), SiteId(1)], &[SiteId(2)]);
        assert_eq!(
            net.transit(SimTime::ZERO, SiteId(0), SiteId(2), 1, &mut r),
            Transit::Dropped
        );
        assert!(matches!(
            net.transit(SimTime::ZERO, SiteId(0), SiteId(1), 1, &mut r),
            Transit::DeliverAt(_)
        ));
        net.heal_all();
        assert!(matches!(
            net.transit(SimTime::ZERO, SiteId(0), SiteId(2), 1, &mut r),
            Transit::DeliverAt(_)
        ));
    }

    #[test]
    fn sever_and_heal_are_symmetric_regardless_of_argument_order() {
        let mut net = Network::new(NetworkConfig::deterministic(SimDuration::from_millis(1)));
        let mut r = rng();
        // Cut as (0,2); both directions must drop.
        net.sever(SiteId(0), SiteId(2));
        assert_eq!(
            net.transit(SimTime::ZERO, SiteId(0), SiteId(2), 1, &mut r),
            Transit::Dropped
        );
        assert_eq!(
            net.transit(SimTime::ZERO, SiteId(2), SiteId(0), 1, &mut r),
            Transit::Dropped
        );
        // Heal with the arguments *swapped*; both directions must flow.
        net.heal(SiteId(2), SiteId(0));
        assert!(matches!(
            net.transit(SimTime::ZERO, SiteId(0), SiteId(2), 1, &mut r),
            Transit::DeliverAt(_)
        ));
        assert!(matches!(
            net.transit(SimTime::ZERO, SiteId(2), SiteId(0), 1, &mut r),
            Transit::DeliverAt(_)
        ));
    }

    #[test]
    fn loss_probability_drops_roughly_that_fraction() {
        let mut net =
            Network::new(NetworkConfig::deterministic(SimDuration::from_millis(1)).with_loss(0.3));
        let mut r = rng();
        let n = 10_000;
        let mut dropped = 0;
        for i in 0..n {
            if net.transit(SimTime::from_micros(i), SiteId(0), SiteId(1), 1, &mut r)
                == Transit::Dropped
            {
                dropped += 1;
            }
        }
        let frac = dropped as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.03, "drop fraction {frac}");
    }

    #[test]
    fn counters_track_sent_dropped_bytes() {
        let mut net = Network::new(NetworkConfig::deterministic(SimDuration::from_millis(1)));
        let mut r = rng();
        net.transit(SimTime::ZERO, SiteId(0), SiteId(1), 100, &mut r);
        net.crash(SiteId(2));
        net.transit(SimTime::ZERO, SiteId(0), SiteId(2), 100, &mut r);
        assert_eq!(net.messages_sent(), 1);
        assert_eq!(net.messages_dropped(), 1);
        assert_eq!(net.bytes_sent(), 100);
    }

    #[test]
    fn finite_bandwidth_adds_transmission_delay() {
        // 1_000 bytes at 1 MB/s = 1ms transmission on top of 1ms latency.
        let cfg =
            NetworkConfig::deterministic(SimDuration::from_millis(1)).with_bandwidth(1_000_000);
        let mut net = Network::new(cfg);
        let mut r = rng();
        match net.transit(SimTime::ZERO, SiteId(0), SiteId(1), 1_000, &mut r) {
            Transit::DeliverAt(t) => assert_eq!(t.as_micros(), 2_000),
            other => panic!("plain network produced {other:?}"),
        }
    }

    #[test]
    fn bandwidth_serializes_back_to_back_messages() {
        let cfg =
            NetworkConfig::deterministic(SimDuration::from_millis(1)).with_bandwidth(1_000_000);
        let mut net = Network::new(cfg);
        let mut r = rng();
        let t1 = match net.transit(SimTime::ZERO, SiteId(0), SiteId(1), 1_000, &mut r) {
            Transit::DeliverAt(t) => t,
            _ => panic!(),
        };
        let t2 = match net.transit(SimTime::ZERO, SiteId(0), SiteId(1), 1_000, &mut r) {
            Transit::DeliverAt(t) => t,
            _ => panic!(),
        };
        assert!(
            t2.as_micros() >= t1.as_micros() + 1_000,
            "second message must wait out the first's transmission: {t1} vs {t2}"
        );
    }

    #[test]
    fn idle_link_adds_no_queueing_delay() {
        // Regression: the old horizon accounting bumped a message arriving
        // exactly at the FIFO horizon by a spurious +1µs. Two messages
        // submitted at the same instant on an infinitely fast link must
        // arrive at the same instant (FIFO held by event-queue tie order).
        let mut net = Network::new(NetworkConfig::deterministic(SimDuration::from_millis(2)));
        let mut r = rng();
        let t1 = match net.transit(SimTime::ZERO, SiteId(0), SiteId(1), 64, &mut r) {
            Transit::DeliverAt(t) => t,
            _ => panic!(),
        };
        let t2 = match net.transit(SimTime::ZERO, SiteId(0), SiteId(1), 64, &mut r) {
            Transit::DeliverAt(t) => t,
            _ => panic!(),
        };
        assert_eq!(t1.as_micros(), 2_000);
        assert_eq!(t2, t1, "same-instant message picked up spurious queueing");
        // A later, spaced-out message is likewise unqueued.
        let t3 = match net.transit(
            SimTime::from_micros(5_000),
            SiteId(0),
            SiteId(1),
            64,
            &mut r,
        ) {
            Transit::DeliverAt(t) => t,
            _ => panic!(),
        };
        assert_eq!(t3.as_micros(), 7_000);
    }

    #[test]
    fn back_to_back_transmissions_abut_exactly() {
        // 1_000 bytes at 1 MB/s = 1ms transmission. Three messages submitted
        // together must arrive exactly one transmission apart — serialized,
        // with neither overlap nor artificial gaps.
        let cfg =
            NetworkConfig::deterministic(SimDuration::from_millis(1)).with_bandwidth(1_000_000);
        let mut net = Network::new(cfg);
        let mut r = rng();
        let arrivals: Vec<u64> = (0..3)
            .map(
                |_| match net.transit(SimTime::ZERO, SiteId(0), SiteId(1), 1_000, &mut r) {
                    Transit::DeliverAt(t) => t.as_micros(),
                    _ => panic!(),
                },
            )
            .collect();
        assert_eq!(arrivals, vec![2_000, 3_000, 4_000]);
    }

    #[test]
    fn nic_bandwidth_serializes_fan_out_across_destinations() {
        // 1_000 bytes at 1 MB/s = 1ms per transmission. Without a NIC
        // limit, fan-out to distinct destinations proceeds in parallel on
        // independent links; with one, the sender's shared transmitter
        // serializes the copies.
        let cfg =
            NetworkConfig::deterministic(SimDuration::from_millis(1)).with_nic_bandwidth(1_000_000);
        let mut net = Network::new(cfg);
        let mut r = rng();
        let arrivals: Vec<u64> = (1..4)
            .map(
                |dst| match net.transit(SimTime::ZERO, SiteId(0), SiteId(dst), 1_000, &mut r) {
                    Transit::DeliverAt(t) => t.as_micros(),
                    _ => panic!(),
                },
            )
            .collect();
        assert_eq!(arrivals, vec![2_000, 3_000, 4_000]);
        // A different sender's NIC is independent.
        match net.transit(SimTime::ZERO, SiteId(1), SiteId(2), 1_000, &mut r) {
            Transit::DeliverAt(t) => assert_eq!(t.as_micros(), 2_000),
            _ => panic!(),
        }
    }

    #[test]
    fn nic_and_link_bandwidth_compose_at_the_slower_rate() {
        // Link at 500 kB/s (2ms per 1_000 bytes) is slower than the NIC at
        // 1 MB/s (1ms): the transmission runs at the bottleneck rate and
        // occupies both clocks for its duration.
        let cfg = NetworkConfig::deterministic(SimDuration::from_millis(1))
            .with_bandwidth(500_000)
            .with_nic_bandwidth(1_000_000);
        let mut net = Network::new(cfg);
        let mut r = rng();
        let t1 = match net.transit(SimTime::ZERO, SiteId(0), SiteId(1), 1_000, &mut r) {
            Transit::DeliverAt(t) => t.as_micros(),
            _ => panic!(),
        };
        assert_eq!(t1, 3_000);
        // Second copy to another site still waits out the NIC occupancy.
        let t2 = match net.transit(SimTime::ZERO, SiteId(0), SiteId(2), 1_000, &mut r) {
            Transit::DeliverAt(t) => t.as_micros(),
            _ => panic!(),
        };
        assert_eq!(t2, 5_000);
    }

    use proptest::prelude::*;

    proptest! {
        /// Link-serialization property: under constant latency and finite
        /// bandwidth, transmission intervals on one link never overlap, an
        /// idle link adds zero queueing delay, and arrivals are FIFO.
        #[test]
        fn transmissions_never_overlap_on_a_link(
            gaps in proptest::collection::vec(0u64..3_000, 1..40),
            sizes in proptest::collection::vec(1usize..4_000, 40),
        ) {
            const LATENCY_US: u64 = 500;
            const BW: u64 = 1_000_000; // 1 byte/µs
            let cfg = NetworkConfig::deterministic(SimDuration::from_micros(LATENCY_US))
                .with_bandwidth(BW);
            let mut net = Network::new(cfg);
            let mut r = rng();
            let mut now = 0u64;
            let mut prev_tx_end = 0u64;
            let mut prev_arrive = 0u64;
            for (i, &gap) in gaps.iter().enumerate() {
                now += gap;
                let size = sizes[i];
                let tx = size as u64; // at 1 byte/µs
                let arrive = match net.transit(
                    SimTime::from_micros(now),
                    SiteId(0),
                    SiteId(1),
                    size,
                    &mut r,
                ) {
                    Transit::DeliverAt(t) => t.as_micros(),
                    other => unreachable!("plain network produced {other:?}"),
                };
                // Constant latency ⇒ arrival = transmission end + latency.
                let tx_end = arrive - LATENCY_US;
                let tx_start = tx_end - tx;
                prop_assert!(
                    tx_start >= prev_tx_end,
                    "transmissions overlap: starts at {tx_start} before previous end {prev_tx_end}"
                );
                prop_assert!(tx_start >= now, "transmission began before submission");
                if now >= prev_tx_end {
                    // Link idle at submission: zero queueing delay.
                    prop_assert_eq!(arrive, now + tx + LATENCY_US);
                }
                prop_assert!(arrive >= prev_arrive, "FIFO violated");
                prev_tx_end = tx_end;
                prev_arrive = arrive;
            }
        }
    }

    fn window(start_us: u64, end_us: u64, kind: FaultKind) -> FaultClause {
        FaultClause {
            from: None,
            to: None,
            start: SimTime::from_micros(start_us),
            end: SimTime::from_micros(end_us),
            kind,
        }
    }

    #[test]
    fn drop_attribution_is_exact_per_cause() {
        // Regression for cause attribution: loss, crash, partition, and
        // burst drops each land in exactly one bucket, and the buckets
        // always sum to messages_dropped.
        let mut net =
            Network::new(NetworkConfig::deterministic(SimDuration::from_millis(1)).with_loss(1.0));
        let mut r = rng();
        // Crash drop: checked before any RNG, even at loss 1.0.
        net.crash(SiteId(3));
        assert_eq!(
            net.transit(SimTime::ZERO, SiteId(0), SiteId(3), 1, &mut r),
            Transit::Dropped
        );
        net.recover(SiteId(3));
        // Partition drop.
        net.sever(SiteId(0), SiteId(2));
        assert_eq!(
            net.transit(SimTime::ZERO, SiteId(0), SiteId(2), 1, &mut r),
            Transit::Dropped
        );
        net.heal(SiteId(0), SiteId(2));
        // Burst drop: the clause window beats loss sampling.
        net.install_fault_plan(FaultPlan {
            clauses: vec![window(0, 10, FaultKind::BurstLoss)],
        });
        assert_eq!(
            net.transit(SimTime::ZERO, SiteId(0), SiteId(1), 1, &mut r),
            Transit::Dropped
        );
        // Loss drop (probability 1.0, outside the burst window).
        assert_eq!(
            net.transit(SimTime::from_micros(20), SiteId(0), SiteId(1), 1, &mut r),
            Transit::Dropped
        );
        let b = net.drop_breakdown();
        assert_eq!(b.crash, 1);
        assert_eq!(b.partition, 1);
        assert_eq!(b.burst, 1);
        assert_eq!(b.loss, 1);
        assert_eq!(b.total(), net.messages_dropped());
    }

    #[test]
    fn fault_clause_matches_window_and_direction() {
        let c = FaultClause {
            from: Some(SiteId(1)),
            to: None,
            start: SimTime::from_micros(100),
            end: SimTime::from_micros(200),
            kind: FaultKind::BurstLoss,
        };
        // Direction: only packets site 1 sends.
        assert!(c.matches(SimTime::from_micros(150), SiteId(1), SiteId(0)));
        assert!(!c.matches(SimTime::from_micros(150), SiteId(0), SiteId(1)));
        // Window is half-open [start, end).
        assert!(c.matches(SimTime::from_micros(100), SiteId(1), SiteId(2)));
        assert!(!c.matches(SimTime::from_micros(200), SiteId(1), SiteId(2)));
        assert!(!c.matches(SimTime::from_micros(99), SiteId(1), SiteId(2)));
    }

    #[test]
    fn duplicate_clause_delivers_twice_with_trailing_copy() {
        let mut net = Network::new(NetworkConfig::deterministic(SimDuration::from_millis(1)));
        net.install_fault_plan(FaultPlan {
            clauses: vec![window(
                0,
                1_000,
                FaultKind::Duplicate {
                    p: 1.0,
                    extra_delay: SimDuration::from_micros(700),
                },
            )],
        });
        let mut r = rng();
        match net.transit(SimTime::ZERO, SiteId(0), SiteId(1), 1, &mut r) {
            Transit::Duplicated { first, second } => {
                assert_eq!(first.as_micros(), 1_000);
                assert_eq!(second.as_micros(), 1_700);
            }
            other => panic!("expected Duplicated, got {other:?}"),
        }
        assert_eq!(net.messages_duplicated(), 1);
        // One logical message accepted, not two.
        assert_eq!(net.messages_sent(), 1);
    }

    #[test]
    fn reorder_clause_skips_the_fifo_clamp() {
        // A delay-spiked first packet pushes the link horizon far out; a
        // reordered second packet lands at its raw time, overtaking it.
        let mut net = Network::new(NetworkConfig::deterministic(SimDuration::from_millis(5)));
        net.install_fault_plan(FaultPlan {
            clauses: vec![
                window(
                    0,
                    10,
                    FaultKind::DelaySpike {
                        p: 1.0,
                        extra: SimDuration::from_millis(50),
                    },
                ),
                window(
                    50,
                    1_000_000,
                    FaultKind::Reorder {
                        p: 1.0,
                        max_extra: SimDuration::from_micros(1),
                    },
                ),
            ],
        });
        let mut r = rng();
        // Seed the link horizon at t=55000 via the spike.
        let first = match net.transit(SimTime::ZERO, SiteId(0), SiteId(1), 1, &mut r) {
            Transit::Delayed(t) => t,
            other => panic!("{other:?}"),
        };
        assert_eq!(first.as_micros(), 55_000);
        // Without the reorder clause this packet would clamp to >= 55000;
        // reordered, it lands at its raw ~5.1 ms arrival instead.
        let second = match net.transit(SimTime::from_micros(100), SiteId(0), SiteId(1), 1, &mut r) {
            Transit::DeliverAt(t) => t,
            other => panic!("{other:?}"),
        };
        assert!(
            second < first,
            "reordered packet must overtake: {second} vs {first}"
        );
        assert_eq!(net.messages_reordered(), 1);
        // The horizon is untouched by the overtake: a third, in-window
        // FIFO packet still clamps to the spiked arrival.
        net.install_fault_plan(FaultPlan::none());
        let third = match net.transit(SimTime::from_micros(200), SiteId(0), SiteId(1), 1, &mut r) {
            Transit::DeliverAt(t) => t,
            other => panic!("{other:?}"),
        };
        assert_eq!(third.as_micros(), 55_000);
    }

    #[test]
    fn delay_spike_inflates_latency_and_reports_delayed() {
        let mut net = Network::new(NetworkConfig::deterministic(SimDuration::from_millis(1)));
        net.install_fault_plan(FaultPlan {
            clauses: vec![window(
                0,
                1_000,
                FaultKind::DelaySpike {
                    p: 1.0,
                    extra: SimDuration::from_millis(50),
                },
            )],
        });
        let mut r = rng();
        match net.transit(SimTime::ZERO, SiteId(0), SiteId(1), 1, &mut r) {
            Transit::Delayed(t) => assert_eq!(t.as_micros(), 51_000),
            other => panic!("expected Delayed, got {other:?}"),
        }
        assert_eq!(net.messages_delay_spiked(), 1);
        // Outside the window the spike is gone, but the FIFO clamp means
        // the spiked packet stalls everything queued behind it.
        match net.transit(SimTime::from_micros(2_000), SiteId(0), SiteId(1), 1, &mut r) {
            Transit::DeliverAt(t) => assert_eq!(t.as_micros(), 51_000),
            other => panic!("expected DeliverAt, got {other:?}"),
        }
    }

    #[test]
    fn empty_plan_is_byte_identical_to_no_plan() {
        // The determinism contract: installing an empty plan (or none)
        // leaves the RNG consumption and every arrival unchanged.
        let cfg = NetworkConfig::lan().with_loss(0.2);
        let mut plain = Network::new(cfg.clone());
        let mut planned = Network::new(cfg);
        planned.install_fault_plan(FaultPlan::none());
        let mut r1 = rng();
        let mut r2 = rng();
        for i in 0..500 {
            let now = SimTime::from_micros(i * 10);
            let a = plain.transit(now, SiteId(0), SiteId(1), 64, &mut r1);
            let b = planned.transit(now, SiteId(0), SiteId(1), 64, &mut r2);
            assert_eq!(a, b, "diverged at message {i}");
        }
        assert_eq!(plain.messages_sent(), planned.messages_sent());
        assert_eq!(plain.messages_dropped(), planned.messages_dropped());
    }

    #[test]
    fn fault_runs_replay_identically_from_seed_and_plan() {
        let plan = FaultPlan {
            clauses: vec![
                window(
                    0,
                    3_000,
                    FaultKind::Duplicate {
                        p: 0.3,
                        extra_delay: SimDuration::from_micros(400),
                    },
                ),
                window(1_000, 2_000, FaultKind::Drop { p: 0.5 }),
                window(
                    0,
                    5_000,
                    FaultKind::Reorder {
                        p: 0.2,
                        max_extra: SimDuration::from_micros(900),
                    },
                ),
            ],
        };
        let run = |seed: u64| {
            let mut net = Network::new(NetworkConfig::lan());
            net.install_fault_plan(plan.clone());
            let mut r = DetRng::new(seed);
            (0..400)
                .map(|i| {
                    net.transit(
                        SimTime::from_micros(i * 10),
                        SiteId(0),
                        SiteId(1),
                        64,
                        &mut r,
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7), "same (seed, plan) must replay identically");
        assert_ne!(run(7), run(8), "different seeds must explore differently");
    }

    #[test]
    fn latency_model_means() {
        assert_eq!(
            LatencyModel::Constant(SimDuration::from_millis(3)).mean(),
            SimDuration::from_millis(3)
        );
        assert_eq!(
            LatencyModel::Uniform {
                min: SimDuration::from_micros(100),
                max: SimDuration::from_micros(300),
            }
            .mean(),
            SimDuration::from_micros(200)
        );
        assert_eq!(
            LatencyModel::Exponential {
                base: SimDuration::from_micros(500),
                mean_jitter: SimDuration::from_micros(100),
            }
            .mean(),
            SimDuration::from_micros(600)
        );
    }
}
