//! Deterministic random number generation.
//!
//! Every source of randomness in a simulation flows through one [`DetRng`]
//! seeded from the run seed, so a `(seed, config, workload)` triple fully
//! determines the history the simulator produces.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic, seedable RNG used throughout the simulator.
///
/// Wraps [`rand::rngs::StdRng`] so the concrete generator can change without
/// touching call sites; derive-style helpers cover the handful of sampling
/// shapes the simulator needs.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: StdRng,
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        DetRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator; used to give each site its own
    /// stream so per-site behaviour does not depend on global event order.
    pub fn fork(&mut self, salt: u64) -> DetRng {
        // Mix the salt into fresh state drawn from the parent stream.
        let base = self.inner.next_u64();
        DetRng::new(base ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Samples uniformly from a range.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        self.inner.gen_range(range)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Samples a uniformly distributed `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Samples an exponentially distributed value with the given mean.
    ///
    /// Returns `0.0` when `mean <= 0`.
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// Samples the next raw `u64` from the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be effectively independent");
    }

    #[test]
    fn fork_is_deterministic() {
        let mut p1 = DetRng::new(9);
        let mut p2 = DetRng::new(9);
        let mut c1 = p1.fork(3);
        let mut c2 = p2.fork(3);
        assert_eq!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn forks_with_different_salts_differ() {
        let mut p = DetRng::new(9);
        let mut c1 = p.fork(1);
        let mut p2 = DetRng::new(9);
        let mut c2 = p2.fork(2);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn gen_exp_has_roughly_correct_mean() {
        let mut r = DetRng::new(11);
        let n = 20_000;
        let mean = 5.0;
        let total: f64 = (0..n).map(|_| r.gen_exp(mean)).sum();
        let observed = total / n as f64;
        assert!((observed - mean).abs() < 0.25, "observed mean {observed}");
    }

    #[test]
    fn gen_exp_zero_mean_is_zero() {
        let mut r = DetRng::new(1);
        assert_eq!(r.gen_exp(0.0), 0.0);
        assert_eq!(r.gen_exp(-3.0), 0.0);
    }

    #[test]
    fn gen_bool_clamps_probability() {
        let mut r = DetRng::new(5);
        assert!(r.gen_bool(2.0));
        assert!(!r.gen_bool(-1.0));
    }
}
