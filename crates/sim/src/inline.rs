//! A small-vector type with inline storage for the first `N` elements.
//!
//! The simulator's hot paths build many short-lived lists whose typical
//! length is tiny and bounded by the site count — per-batch phase lists,
//! fan-out scratch, small wire buffers. A `Vec` pays a heap allocation per
//! list; [`InlineVec`] keeps the first `N` elements on the stack and only
//! spills to the heap past that, so the common case allocates nothing.
//!
//! The implementation is deliberately `unsafe`-free (this crate forbids
//! `unsafe`): inline storage is an array of `Option<T>`, which costs a
//! discriminant per element but preserves the no-allocation property that
//! matters on the hot path.
//!
//! # Examples
//!
//! ```
//! use bcastdb_sim::inline::InlineVec;
//!
//! let mut v: InlineVec<u32, 4> = InlineVec::new();
//! for i in 0..6 {
//!     v.push(i); // first 4 inline, the rest spill to the heap
//! }
//! assert_eq!(v.len(), 6);
//! assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4, 5]);
//! ```

/// A growable list that stores its first `N` elements inline.
#[derive(Debug, Clone)]
pub struct InlineVec<T, const N: usize> {
    /// Inline slots; `inline[..inline_len]` are `Some`.
    inline: [Option<T>; N],
    inline_len: usize,
    /// Overflow beyond `N` elements, in order after the inline ones.
    spill: Vec<T>,
}

impl<T, const N: usize> InlineVec<T, N> {
    /// Creates an empty list (no heap allocation).
    pub fn new() -> Self {
        InlineVec {
            inline: std::array::from_fn(|_| None),
            inline_len: 0,
            spill: Vec::new(),
        }
    }

    /// A one-element list (no heap allocation).
    pub fn one(value: T) -> Self {
        let mut v = Self::new();
        v.push(value);
        v
    }

    /// Appends an element, spilling to the heap only past `N` elements.
    pub fn push(&mut self, value: T) {
        if self.inline_len < N {
            self.inline[self.inline_len] = Some(value);
            self.inline_len += 1;
        } else {
            self.spill.push(value);
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.inline_len + self.spill.len()
    }

    /// True iff the list is empty.
    pub fn is_empty(&self) -> bool {
        self.inline_len == 0
    }

    /// Removes all elements, keeping any spill capacity.
    pub fn clear(&mut self) {
        for slot in &mut self.inline[..self.inline_len] {
            *slot = None;
        }
        self.inline_len = 0;
        self.spill.clear();
    }

    /// The element at `index`, or `None` past the end.
    pub fn get(&self, index: usize) -> Option<&T> {
        if index < self.inline_len {
            self.inline[index].as_ref()
        } else {
            self.spill.get(index - self.inline_len)
        }
    }

    /// True iff an element equal to `value` is present.
    pub fn contains(&self, value: &T) -> bool
    where
        T: PartialEq,
    {
        self.iter().any(|v| v == value)
    }

    /// Iterates the elements in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.inline[..self.inline_len]
            .iter()
            .map(|s| s.as_ref().expect("slot below inline_len"))
            .chain(self.spill.iter())
    }
}

impl<T: PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<T: Eq, const N: usize> Eq for InlineVec<T, N> {}

/// Element-wise comparison against a `Vec`, so tests can assert an
/// [`InlineVec`]'s contents with `assert_eq!(buf, vec![...])`.
impl<T: PartialEq, const N: usize> PartialEq<Vec<T>> for InlineVec<T, N> {
    fn eq(&self, other: &Vec<T>) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<T, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, const N: usize> std::ops::Index<usize> for InlineVec<T, N> {
    type Output = T;

    fn index(&self, index: usize) -> &T {
        self.get(index)
            .unwrap_or_else(|| panic!("index {index} out of bounds (len {})", self.len()))
    }
}

impl<T, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = Self::new();
        v.extend(iter);
        v
    }
}

impl<T, const N: usize> Extend<T> for InlineVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

impl<T, const N: usize> IntoIterator for InlineVec<T, N> {
    type Item = T;
    type IntoIter = IntoIter<T, N>;

    fn into_iter(self) -> Self::IntoIter {
        IntoIter {
            inline: self.inline,
            inline_len: self.inline_len,
            pos: 0,
            spill: self.spill.into_iter(),
        }
    }
}

/// Owning iterator over an [`InlineVec`].
#[derive(Debug)]
pub struct IntoIter<T, const N: usize> {
    inline: [Option<T>; N],
    inline_len: usize,
    pos: usize,
    spill: std::vec::IntoIter<T>,
}

impl<T, const N: usize> Iterator for IntoIter<T, N> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        if self.pos < self.inline_len {
            let v = self.inline[self.pos].take();
            self.pos += 1;
            debug_assert!(v.is_some(), "slot below inline_len");
            v
        } else {
            self.spill.next()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_up_to_n() {
        let mut v: InlineVec<u8, 3> = InlineVec::new();
        assert!(v.is_empty());
        v.push(1);
        v.push(2);
        v.push(3);
        assert_eq!(v.len(), 3);
        assert_eq!(v.spill.capacity(), 0, "no heap allocation below N");
    }

    #[test]
    fn spills_past_n_preserving_order() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        v.extend(0..5);
        assert_eq!(v.len(), 5);
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        assert_eq!(v.into_iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn clear_resets_and_allows_reuse() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        v.extend(0..4);
        v.clear();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
        v.push(9);
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![9]);
    }

    #[test]
    fn empty_iterators_terminate() {
        let v: InlineVec<u32, 2> = InlineVec::new();
        assert_eq!(v.iter().count(), 0);
        assert_eq!(v.into_iter().count(), 0);
    }
}
