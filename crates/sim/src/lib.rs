//! # bcastdb-sim
//!
//! A deterministic discrete-event simulation (DES) kernel and network
//! substrate for `bcastdb`, the reproduction of *"Using Broadcast Primitives
//! in Replicated Databases"* (Stanoi, Agrawal, El Abbadi — ICDCS 1998).
//!
//! The paper evaluates replication protocols on a LAN of workstations; this
//! crate substitutes a deterministic simulator so every experiment is exactly
//! reproducible from a seed. The kernel provides:
//!
//! - [`SimTime`] / [`SimDuration`] — microsecond-resolution virtual time,
//! - [`EventQueue`] — a stable priority queue of timestamped events,
//! - [`Network`] — a message-passing substrate with per-link FIFO delivery
//!   (the paper assumes FIFO links), pluggable latency models, probabilistic
//!   loss, partitions, and crash failures,
//! - [`Simulation`] — the driver that owns a set of [`Node`]s and runs the
//!   event loop to quiescence or a deadline,
//! - [`trace`] — counters and histograms used by the experiment harness,
//! - [`telemetry`] — structured trace events with per-phase message
//!   accounting, pluggable sinks, and an offline invariant checker,
//! - [`spans`] / [`analyze`] — per-transaction span reconstruction and
//!   commit-latency decomposition over the trace stream,
//! - [`stats`] — a deterministic virtual-time metrics registry (counters,
//!   gauges, log2 histograms) sampled at fixed sim-clock boundaries.
//!
//! # Example
//!
//! ```
//! use bcastdb_sim::{Simulation, Node, Ctx, SiteId, SimDuration, NetworkConfig};
//!
//! /// A node that echoes every message back to its sender once.
//! struct Echo { seen: usize }
//!
//! impl Node for Echo {
//!     type Msg = u64;
//!     type Timer = ();
//!     fn on_message(&mut self, ctx: &mut Ctx<'_, u64, ()>, from: SiteId, msg: u64) {
//!         self.seen += 1;
//!         if msg == 0 {
//!             ctx.send(from, 1);
//!         }
//!     }
//!     fn on_timer(&mut self, _ctx: &mut Ctx<'_, u64, ()>, _t: ()) {}
//! }
//!
//! let mut sim = Simulation::new(42, NetworkConfig::lan(), vec![Echo { seen: 0 }, Echo { seen: 0 }]);
//! sim.send_external(SiteId(0), SiteId(1), 0); // kick off: node 0 -> node 1
//! sim.run_to_quiescence(SimDuration::from_millis(100));
//! assert_eq!(sim.node(SiteId(1)).seen, 1);
//! assert_eq!(sim.node(SiteId(0)).seen, 1); // echo came back
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
mod event;
pub mod inline;
mod net;
mod rng;
mod simulation;
pub mod spans;
pub mod stats;
pub mod telemetry;
mod time;
pub mod trace;

pub use event::{Event, EventKind, EventQueue, WheelStats};
pub use net::{
    DropBreakdown, FaultClause, FaultKind, FaultPlan, LatencyModel, LinkState, Network,
    NetworkConfig, Transit,
};
pub use rng::DetRng;
pub use simulation::{Ctx, Node, RunOutcome, SendOutcome, Simulation};
pub use stats::{Histogram, Sample, StatsHandle, StatsRegistry};
pub use time::{SimDuration, SimTime};

use std::fmt;

/// Identifier of a site (replica / process) in the simulated system.
///
/// Sites are numbered densely from zero; `SiteId(i)` is the `i`-th node
/// handed to [`Simulation::new`].
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct SiteId(pub usize);

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<usize> for SiteId {
    fn from(v: usize) -> Self {
        SiteId(v)
    }
}

impl SiteId {
    /// Returns the dense index of this site.
    pub fn index(self) -> usize {
        self.0
    }
}
