//! Virtual time for the simulator.
//!
//! Time is measured in integer microseconds since the start of the run.
//! Integer time makes event ordering exact and runs reproducible; the
//! protocols under study only care about relative delays.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time (microseconds since simulation start).
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time (microseconds).
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Returns the raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns this instant as fractional milliseconds (for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The amount of time elapsed since `earlier`, saturating at zero.
    ///
    /// Saturation (rather than panicking) keeps metric collection robust when
    /// an event is recorded against a baseline taken slightly later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Returns the raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional milliseconds (for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Multiplies the duration by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// True iff the duration is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_duration_to_time() {
        let t = SimTime::from_micros(10) + SimDuration::from_micros(5);
        assert_eq!(t.as_micros(), 15);
    }

    #[test]
    fn millis_and_secs_constructors() {
        assert_eq!(SimDuration::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimDuration::from_secs(3).as_micros(), 3_000_000);
    }

    #[test]
    fn saturating_since_never_underflows() {
        let a = SimTime::from_micros(5);
        let b = SimTime::from_micros(9);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a).as_micros(), 4);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert!(SimDuration::from_millis(1) > SimDuration::from_micros(999));
    }

    #[test]
    fn display_formats_as_millis() {
        assert_eq!(SimTime::from_micros(1500).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_micros(250).to_string(), "0.250ms");
    }

    #[test]
    fn saturating_mul_caps_at_max() {
        let d = SimDuration::from_micros(u64::MAX);
        assert_eq!(d.saturating_mul(2).as_micros(), u64::MAX);
    }
}
