//! Per-transaction span reconstruction: folds an ordered [`TraceEvent`]
//! stream into one [`TxnSpan`] timeline per transaction and decomposes
//! each committed update's latency into named [`Segment`]s.
//!
//! The decomposition is *exact by construction*: milestones are clamped
//! into the `[submit, commit]` interval in chain order, so the segment
//! durations telescope and always sum to precisely the end-to-end latency
//! the metrics layer records at the origin (`commit − submit`, in
//! microseconds of virtual time). That identity is what lets the paper's
//! "where does commit latency go" comparison be audited instead of
//! eyeballed: every microsecond is attributed to exactly one segment.
//!
//! # Segment boundaries
//!
//! | segment       | from                    | to                          |
//! |---------------|-------------------------|-----------------------------|
//! | `read`        | `Submit`                | `LocksAcquired` at origin   |
//! | `disseminate` | `LocksAcquired`         | `CommitReqOut` at origin    |
//! | `order_wait`  | `CommitReqOut`          | `TotalOrder` at origin, or the first `Vote` |
//! | `votes`       | order point             | last `Vote` at or before the origin commit, or the origin's `Decided` |
//! | `decide`      | quorum point            | `Commit` at origin          |
//!
//! Milestones a protocol never produces collapse to zero-width segments:
//! the point-to-point baseline's per-operation ack round trips all land in
//! `disseminate`, the reliable protocol's cost sits in `votes`/`decide`,
//! the causal protocol's implicit-acknowledgement wait shows up as
//! `votes` (closed by its origin-side `Decided` milestone), and the
//! atomic protocol's sequencer/ISIS latency is `order_wait`.

use crate::telemetry::{TraceEvent, TraceSink, TxnRef};
use crate::{SimDuration, SimTime, SiteId};
use std::collections::BTreeMap;
use std::fmt;

/// A named slice of a committed update transaction's latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Segment {
    /// Origin-side read phase: submission until all read locks are held.
    Read,
    /// Write dissemination: read locks held until the commit request (the
    /// final leg of the write broadcast) is handed to the network.
    Disseminate,
    /// Ordering/broadcast wait: commit request out until the origin's
    /// total-order delivery (atomic protocol) or the first vote.
    OrderWait,
    /// Vote collection: ordering point until the last vote the origin's
    /// decision could have depended on (for the causal protocol's implicit
    /// acknowledgements, until the origin's `Decided` milestone).
    Votes,
    /// Decision propagation and application at the origin.
    Decide,
}

impl Segment {
    /// All segments, in timeline order.
    pub const ALL: [Segment; 5] = [
        Segment::Read,
        Segment::Disseminate,
        Segment::OrderWait,
        Segment::Votes,
        Segment::Decide,
    ];

    /// Short stable name used in CSV columns and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            Segment::Read => "read",
            Segment::Disseminate => "disseminate",
            Segment::OrderWait => "order_wait",
            Segment::Votes => "votes",
            Segment::Decide => "decide",
        }
    }

    /// One-letter tag for ASCII timeline bars.
    pub fn letter(self) -> char {
        match self {
            Segment::Read => 'R',
            Segment::Disseminate => 'D',
            Segment::OrderWait => 'O',
            Segment::Votes => 'V',
            Segment::Decide => 'C',
        }
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The per-segment latency decomposition of one committed transaction.
///
/// [`SegmentBreakdown::total`] equals the end-to-end commit latency
/// exactly — see the module docs for why.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegmentBreakdown {
    /// Time in [`Segment::Read`].
    pub read: SimDuration,
    /// Time in [`Segment::Disseminate`].
    pub disseminate: SimDuration,
    /// Time in [`Segment::OrderWait`].
    pub order_wait: SimDuration,
    /// Time in [`Segment::Votes`].
    pub votes: SimDuration,
    /// Time in [`Segment::Decide`].
    pub decide: SimDuration,
    /// How many raw milestones had to be clamped into `[predecessor, end]`
    /// to make the telescoping sum exact — i.e. were recorded
    /// *non-monotonically* relative to the canonical milestone order.
    /// Zero for a well-ordered execution; a nonzero count flags spans
    /// whose decomposition absorbed out-of-order timestamps rather than
    /// hiding them.
    pub clamped: u32,
}

impl SegmentBreakdown {
    /// The duration of one segment.
    pub fn get(&self, seg: Segment) -> SimDuration {
        match seg {
            Segment::Read => self.read,
            Segment::Disseminate => self.disseminate,
            Segment::OrderWait => self.order_wait,
            Segment::Votes => self.votes,
            Segment::Decide => self.decide,
        }
    }

    /// Sum over all segments — exactly the end-to-end commit latency.
    pub fn total(&self) -> SimDuration {
        SimDuration::from_micros(Segment::ALL.iter().map(|&s| self.get(s).as_micros()).sum())
    }

    /// The largest segment (ties go to the earlier one) — the critical
    /// path's dominant cost.
    pub fn dominant(&self) -> Segment {
        let mut best = Segment::Read;
        for s in Segment::ALL {
            if self.get(s) > self.get(best) {
                best = s;
            }
        }
        best
    }
}

/// One site's recorded verdict on a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VoteRecord {
    /// The judging site.
    pub site: SiteId,
    /// When the verdict was fixed.
    pub at: SimTime,
    /// `true` = ready to commit.
    pub yes: bool,
}

/// The fate of a transaction as recorded at its origin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpanOutcome {
    /// Committed at the origin at this time.
    Committed {
        /// Origin-side commit time.
        at: SimTime,
    },
    /// Aborted at the origin.
    Aborted {
        /// Origin-side abort time.
        at: SimTime,
        /// Stable abort-reason counter name.
        reason: String,
    },
}

/// The reconstructed timeline of one transaction across all sites.
#[derive(Debug, Clone, PartialEq)]
pub struct TxnSpan {
    /// The transaction.
    pub txn: TxnRef,
    /// True for read-only transactions (commit at the origin, no
    /// dissemination — their whole latency is the `read` segment).
    pub read_only: bool,
    /// Submission time at the origin.
    pub submit: Option<SimTime>,
    /// Origin read phase completed (all read locks held).
    pub locks: Option<SimTime>,
    /// Commit request handed to the network at the origin.
    pub commit_req_out: Option<SimTime>,
    /// Per-site total-order delivery `(time, gseq)` (atomic protocol).
    pub total_order: BTreeMap<SiteId, (SimTime, u64)>,
    /// Votes in arrival order (a site may appear once per verdict).
    pub votes: Vec<VoteRecord>,
    /// Sites that learned the outcome before they could apply it.
    pub decided: BTreeMap<SiteId, (SimTime, bool)>,
    /// Per-site commit application times (the basis for commit skew).
    pub commits: BTreeMap<SiteId, SimTime>,
    /// The origin-side termination, once known.
    pub outcome: Option<SpanOutcome>,
}

impl TxnSpan {
    fn new(txn: TxnRef) -> Self {
        TxnSpan {
            txn,
            read_only: false,
            submit: None,
            locks: None,
            commit_req_out: None,
            total_order: BTreeMap::new(),
            votes: Vec::new(),
            decided: BTreeMap::new(),
            commits: BTreeMap::new(),
            outcome: None,
        }
    }

    /// True iff the transaction committed at its origin.
    pub fn committed(&self) -> bool {
        matches!(self.outcome, Some(SpanOutcome::Committed { .. }))
    }

    /// Origin-side termination time, once known.
    pub fn end(&self) -> Option<SimTime> {
        match self.outcome {
            Some(SpanOutcome::Committed { at }) => Some(at),
            Some(SpanOutcome::Aborted { at, .. }) => Some(at),
            None => None,
        }
    }

    /// End-to-end latency (submission → origin termination).
    pub fn latency(&self) -> Option<SimDuration> {
        Some(self.end()?.saturating_since(self.submit?))
    }

    /// Commit skew: latest minus earliest commit application across sites
    /// (`None` until at least one site committed).
    pub fn commit_skew(&self) -> Option<SimDuration> {
        let first = self.commits.values().min()?;
        let last = self.commits.values().max()?;
        Some(last.saturating_since(*first))
    }

    /// Decomposes a *committed* transaction's latency into segments that
    /// sum exactly to [`TxnSpan::latency`]. Returns `None` for aborted or
    /// still-pending transactions, or when the submission was never
    /// traced.
    ///
    /// Missing milestones inherit their predecessor (zero-width segment);
    /// milestones recorded outside `[submit, commit]` — e.g. a straggler
    /// site's vote arriving after the origin already decided — are clamped
    /// into it, which is what makes the telescoping sum exact. Each clamp
    /// that actually moved a raw milestone is counted in
    /// [`SegmentBreakdown::clamped`], so non-monotonic executions are
    /// flagged rather than silently absorbed.
    pub fn decompose(&self) -> Option<SegmentBreakdown> {
        let submit = self.submit?;
        let Some(SpanOutcome::Committed { at: end }) = self.outcome else {
            return None;
        };
        let order_raw = self
            .total_order
            .get(&self.txn.origin)
            .map(|&(at, _)| at)
            .or_else(|| self.votes.iter().map(|v| v.at).min());
        let votes_done_raw = self
            .votes
            .iter()
            .filter(|v| v.at <= end)
            .map(|v| v.at)
            .max()
            .or_else(|| self.decided.get(&self.txn.origin).map(|&(at, _)| at));
        let mut clamped = 0u32;
        let mut clamp = |raw: Option<SimTime>, prev: SimTime| match raw {
            Some(t) => {
                let c = t.max(prev).min(end);
                if c != t {
                    clamped += 1;
                }
                c
            }
            None => prev,
        };
        let m0 = submit.min(end);
        let m1 = clamp(self.locks, m0);
        let m2 = clamp(self.commit_req_out, m1);
        let m3 = clamp(order_raw, m2);
        let m4 = clamp(votes_done_raw, m3);
        Some(SegmentBreakdown {
            read: m1.saturating_since(m0),
            disseminate: m2.saturating_since(m1),
            order_wait: m3.saturating_since(m2),
            votes: m4.saturating_since(m3),
            decide: end.saturating_since(m4),
            clamped,
        })
    }
}

/// A [`TraceSink`] that folds lifecycle events into per-transaction
/// [`TxnSpan`]s. Message events (`Send`/`Deliver`/`Drop`) are ignored, so
/// memory is bounded by the number of transactions, not events — spans
/// survive runs whose trace overflows any ring buffer.
#[derive(Debug, Default)]
pub struct SpanBuilder {
    spans: BTreeMap<TxnRef, TxnSpan>,
}

impl SpanBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn span(&mut self, txn: &TxnRef) -> &mut TxnSpan {
        self.spans.entry(*txn).or_insert_with(|| TxnSpan::new(*txn))
    }

    /// Ingests one event (in trace order).
    pub fn ingest(&mut self, ev: &TraceEvent) {
        match ev {
            TraceEvent::Submit { at, txn, read_only } => {
                let s = self.span(txn);
                s.read_only = *read_only;
                s.submit.get_or_insert(*at);
            }
            TraceEvent::LocksAcquired { at, txn } => {
                self.span(txn).locks.get_or_insert(*at);
            }
            TraceEvent::CommitReqOut { at, txn } => {
                self.span(txn).commit_req_out.get_or_insert(*at);
            }
            TraceEvent::Vote { at, site, txn, yes } => {
                self.span(txn).votes.push(VoteRecord {
                    site: *site,
                    at: *at,
                    yes: *yes,
                });
            }
            TraceEvent::Decided {
                at,
                site,
                txn,
                commit,
            } => {
                self.span(txn)
                    .decided
                    .entry(*site)
                    .or_insert((*at, *commit));
            }
            TraceEvent::TotalOrder {
                at,
                site,
                txn,
                gseq,
            } => {
                self.span(txn)
                    .total_order
                    .entry(*site)
                    .or_insert((*at, *gseq));
            }
            TraceEvent::Commit { at, site, txn } => {
                let s = self.span(txn);
                s.commits.entry(*site).or_insert(*at);
                if *site == txn.origin && s.outcome.is_none() {
                    s.outcome = Some(SpanOutcome::Committed { at: *at });
                }
            }
            TraceEvent::Abort {
                at,
                site,
                txn,
                reason,
            } => {
                let s = self.span(txn);
                if *site == txn.origin && s.outcome.is_none() {
                    s.outcome = Some(SpanOutcome::Aborted {
                        at: *at,
                        reason: reason.clone(),
                    });
                }
            }
            TraceEvent::Send { .. }
            | TraceEvent::Deliver { .. }
            | TraceEvent::Drop { .. }
            | TraceEvent::BatchFlushed { .. }
            | TraceEvent::ViewChange { .. }
            | TraceEvent::Crash { .. }
            // The speculative decision is always followed by the Decided /
            // Commit / Abort that actually moves the segment boundary.
            | TraceEvent::Suspect { .. }
            | TraceEvent::FastDecide { .. } => {}
        }
    }

    /// The reconstructed spans, keyed by transaction.
    pub fn spans(&self) -> &BTreeMap<TxnRef, TxnSpan> {
        &self.spans
    }

    /// Consumes the builder, yielding the spans.
    pub fn into_spans(self) -> BTreeMap<TxnRef, TxnSpan> {
        self.spans
    }

    /// The span of one transaction, if any of its events were seen.
    pub fn get(&self, txn: TxnRef) -> Option<&TxnSpan> {
        self.spans.get(&txn)
    }

    /// Number of transactions observed.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True iff no transactions were observed.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

impl TraceSink for SpanBuilder {
    fn record(&mut self, ev: &TraceEvent) {
        self.ingest(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn txn(origin: usize, num: u64) -> TxnRef {
        TxnRef {
            origin: SiteId(origin),
            num,
        }
    }

    /// A committed update with every milestone present.
    fn full_run() -> SpanBuilder {
        let tx = txn(0, 1);
        let mut b = SpanBuilder::new();
        for ev in [
            TraceEvent::Submit {
                at: t(100),
                txn: tx,
                read_only: false,
            },
            TraceEvent::LocksAcquired {
                at: t(150),
                txn: tx,
            },
            TraceEvent::CommitReqOut {
                at: t(230),
                txn: tx,
            },
            TraceEvent::TotalOrder {
                at: t(400),
                site: SiteId(0),
                txn: tx,
                gseq: 1,
            },
            TraceEvent::Vote {
                at: t(400),
                site: SiteId(0),
                txn: tx,
                yes: true,
            },
            TraceEvent::Vote {
                at: t(520),
                site: SiteId(1),
                txn: tx,
                yes: true,
            },
            TraceEvent::Commit {
                at: t(600),
                site: SiteId(0),
                txn: tx,
            },
            TraceEvent::Commit {
                at: t(640),
                site: SiteId(1),
                txn: tx,
            },
        ] {
            b.ingest(&ev);
        }
        b
    }

    #[test]
    fn full_span_decomposes_exactly() {
        let b = full_run();
        let s = b.get(txn(0, 1)).expect("span");
        assert!(s.committed());
        assert_eq!(s.latency(), Some(SimDuration::from_micros(500)));
        let d = s.decompose().expect("committed");
        assert_eq!(d.read.as_micros(), 50);
        assert_eq!(d.disseminate.as_micros(), 80);
        assert_eq!(d.order_wait.as_micros(), 170);
        assert_eq!(d.votes.as_micros(), 120);
        assert_eq!(d.decide.as_micros(), 80);
        assert_eq!(d.total(), s.latency().unwrap());
        assert_eq!(d.dominant(), Segment::OrderWait);
        assert_eq!(s.commit_skew(), Some(SimDuration::from_micros(40)));
    }

    #[test]
    fn missing_milestones_collapse_to_zero_width() {
        // Point-to-point shape: no ordering point, no commit request trace.
        let tx = txn(1, 7);
        let mut b = SpanBuilder::new();
        b.ingest(&TraceEvent::Submit {
            at: t(10),
            txn: tx,
            read_only: false,
        });
        b.ingest(&TraceEvent::Commit {
            at: t(90),
            site: SiteId(1),
            txn: tx,
        });
        let d = b.get(tx).unwrap().decompose().expect("committed");
        assert_eq!(d.total().as_micros(), 80);
        assert_eq!(d.read.as_micros(), 0, "no locks milestone");
        assert_eq!(d.decide.as_micros(), 80, "everything lands in the tail");
    }

    #[test]
    fn straggler_votes_are_clamped_not_counted() {
        // A vote after the origin already committed (atomic protocol's
        // remote certifications) must not push milestones past the end.
        let tx = txn(0, 2);
        let mut b = SpanBuilder::new();
        b.ingest(&TraceEvent::Submit {
            at: t(0),
            txn: tx,
            read_only: false,
        });
        b.ingest(&TraceEvent::Vote {
            at: t(40),
            site: SiteId(0),
            txn: tx,
            yes: true,
        });
        b.ingest(&TraceEvent::Commit {
            at: t(50),
            site: SiteId(0),
            txn: tx,
        });
        b.ingest(&TraceEvent::Vote {
            at: t(500),
            site: SiteId(2),
            txn: tx,
            yes: true,
        });
        let d = b.get(tx).unwrap().decompose().unwrap();
        assert_eq!(d.total().as_micros(), 50, "sum still exact");
        assert_eq!(d.votes.as_micros(), 0, "straggler vote excluded");
        assert_eq!(d.decide.as_micros(), 10);
        assert_eq!(d.clamped, 0, "excluded straggler is not a clamp");
    }

    #[test]
    fn non_monotonic_milestones_are_counted_not_hidden() {
        // Locks recorded *after* the commit request went out (a reordered
        // trace, or a bug in the instrumented engine): the decomposition
        // clamps the milestone so segments still telescope, and reports
        // exactly how many raw milestones it had to move.
        let tx = txn(1, 1);
        let mut b = SpanBuilder::new();
        b.ingest(&TraceEvent::Submit {
            at: t(0),
            txn: tx,
            read_only: false,
        });
        b.ingest(&TraceEvent::CommitReqOut { at: t(10), txn: tx });
        b.ingest(&TraceEvent::LocksAcquired { at: t(30), txn: tx });
        b.ingest(&TraceEvent::Vote {
            at: t(40),
            site: SiteId(0),
            txn: tx,
            yes: true,
        });
        b.ingest(&TraceEvent::Commit {
            at: t(50),
            site: SiteId(1),
            txn: tx,
        });
        let d = b.get(tx).unwrap().decompose().unwrap();
        assert_eq!(d.total().as_micros(), 50, "clamping keeps the sum exact");
        // locks@30 lands after commit_req_out@10 in milestone order, so
        // commit_req_out@10 is clamped up to 30.
        assert_eq!(d.clamped, 1, "one raw milestone was non-monotonic");

        // A well-ordered run reports zero.
        let tx2 = txn(1, 2);
        b.ingest(&TraceEvent::Submit {
            at: t(0),
            txn: tx2,
            read_only: false,
        });
        b.ingest(&TraceEvent::LocksAcquired { at: t(5), txn: tx2 });
        b.ingest(&TraceEvent::CommitReqOut {
            at: t(10),
            txn: tx2,
        });
        b.ingest(&TraceEvent::Commit {
            at: t(20),
            site: SiteId(1),
            txn: tx2,
        });
        let d2 = b.get(tx2).unwrap().decompose().unwrap();
        assert_eq!(d2.clamped, 0);
    }

    #[test]
    fn aborted_and_pending_spans_do_not_decompose() {
        let tx = txn(0, 3);
        let mut b = SpanBuilder::new();
        b.ingest(&TraceEvent::Submit {
            at: t(0),
            txn: tx,
            read_only: false,
        });
        assert_eq!(b.get(tx).unwrap().decompose(), None, "pending");
        b.ingest(&TraceEvent::Abort {
            at: t(9),
            site: SiteId(0),
            txn: tx,
            reason: "abort_wounded".into(),
        });
        let s = b.get(tx).unwrap();
        assert_eq!(s.decompose(), None, "aborted");
        assert_eq!(s.end(), Some(t(9)));
        assert_eq!(s.latency(), Some(SimDuration::from_micros(9)));
    }

    #[test]
    fn read_only_span_is_all_read_segment() {
        let tx = txn(2, 1);
        let mut b = SpanBuilder::new();
        b.ingest(&TraceEvent::Submit {
            at: t(5),
            txn: tx,
            read_only: true,
        });
        b.ingest(&TraceEvent::LocksAcquired { at: t(35), txn: tx });
        b.ingest(&TraceEvent::Commit {
            at: t(35),
            site: SiteId(2),
            txn: tx,
        });
        let s = b.get(tx).unwrap();
        assert!(s.read_only);
        let d = s.decompose().unwrap();
        assert_eq!(d.read.as_micros(), 30);
        assert_eq!(d.total().as_micros(), 30);
    }

    #[test]
    fn implicit_ack_wait_lands_in_votes_segment() {
        // Causal-protocol shape: no explicit votes; the origin's Decided
        // milestone (implicit acks satisfied) closes the votes segment.
        let tx = txn(1, 3);
        let mut b = SpanBuilder::new();
        b.ingest(&TraceEvent::Submit {
            at: t(0),
            txn: tx,
            read_only: false,
        });
        b.ingest(&TraceEvent::LocksAcquired { at: t(10), txn: tx });
        b.ingest(&TraceEvent::CommitReqOut { at: t(30), txn: tx });
        b.ingest(&TraceEvent::Decided {
            at: t(200),
            site: SiteId(1),
            txn: tx,
            commit: true,
        });
        b.ingest(&TraceEvent::Commit {
            at: t(240),
            site: SiteId(1),
            txn: tx,
        });
        let d = b.get(tx).unwrap().decompose().unwrap();
        assert_eq!(d.votes.as_micros(), 170, "implicit-ack wait");
        assert_eq!(d.decide.as_micros(), 40);
        assert_eq!(d.total().as_micros(), 240);
        assert_eq!(d.dominant(), Segment::Votes);
    }

    #[test]
    fn early_decision_is_recorded() {
        let tx = txn(0, 4);
        let mut b = SpanBuilder::new();
        b.ingest(&TraceEvent::Submit {
            at: t(0),
            txn: tx,
            read_only: false,
        });
        b.ingest(&TraceEvent::Decided {
            at: t(20),
            site: SiteId(1),
            txn: tx,
            commit: true,
        });
        let s = b.get(tx).unwrap();
        assert_eq!(s.decided.get(&SiteId(1)), Some(&(t(20), true)));
    }
}
