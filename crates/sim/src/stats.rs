//! Deterministic, virtual-time metrics: a registry of counters, gauges, and
//! fixed-log2-bucket histograms, sampled on the simulation clock.
//!
//! Where the [`telemetry`](crate::telemetry) stream answers *"what happened
//! to this message / transaction"*, this module answers *"what did the
//! system look like over time"*: event-queue depth, timing-wheel residency,
//! link backlog against the bandwidth model, batcher occupancy,
//! retransmission pressure, lock-wait counts. Samples are taken at fixed
//! **virtual**-time boundaries by the simulation driver, so a run's metrics
//! stream depends only on the run's inputs — the output is byte-identical
//! at any `BCASTDB_JOBS`, on any machine, with any wall-clock jitter.
//!
//! The write side mirrors [`Tracer`](crate::telemetry::Tracer): a
//! [`StatsHandle`] is either attached to a shared [`StatsRegistry`] or
//! disabled, and every recording method on a disabled handle is a single
//! `Option` check — enabling metrics is a run-configuration choice with
//! zero cost on runs that do not make it. Crucially, sampling never
//! schedules events: the driver takes samples *between* events at period
//! boundaries, so enabling metrics cannot perturb event sequence numbers,
//! delivery order, or any simulation output.
//!
//! # Sample schema
//!
//! One [`Sample`] per period boundary, serialized as one flat JSONL line:
//!
//! ```text
//! {"t":<µs>,"v":{"<name>":<u64>,...},"h":{"<name>":[[<bucket>,<count>],...],...}}
//! ```
//!
//! `v` holds point-in-time gauges and cumulative counters (both plain
//! `u64`s — the name documents which); `h` holds sparse log2-bucket
//! histogram snapshots (cumulative since the start of the run). Names use
//! only `[a-z0-9._]` with a `s<site>.` prefix for per-site series, so no
//! JSON escaping is ever needed.

use crate::{SimDuration, SimTime, SiteId};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

/// Number of histogram buckets: one for zero plus one per power of two.
pub const HIST_BUCKETS: usize = 65;

/// A fixed-size log2-bucket histogram of `u64` observations.
///
/// Bucket `0` holds exactly the value `0`; bucket `i ≥ 1` holds the range
/// `[2^(i-1), 2^i - 1]`. Every `u64` maps to exactly one bucket, so the
/// bucket counts always sum to the observation count.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: [u64; HIST_BUCKETS],
    sum: u128,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: [0; HIST_BUCKETS],
            sum: 0,
            max: 0,
        }
    }

    /// The bucket index a value falls into.
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Smallest value of bucket `i`.
    ///
    /// # Panics
    /// Panics if `i >= HIST_BUCKETS`.
    pub fn bucket_lo(i: usize) -> u64 {
        assert!(i < HIST_BUCKETS);
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Largest value of bucket `i`.
    ///
    /// # Panics
    /// Panics if `i >= HIST_BUCKETS`.
    pub fn bucket_hi(i: usize) -> u64 {
        assert!(i < HIST_BUCKETS);
        match i {
            0 => 0,
            64 => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.sum += v as u128;
        self.max = self.max.max(v);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Largest observation (zero when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, truncated (zero when empty).
    pub fn mean(&self) -> u64 {
        let n = self.count();
        if n == 0 {
            0
        } else {
            (self.sum / n as u128) as u64
        }
    }

    /// Sparse `(bucket, count)` pairs for the non-empty buckets, in bucket
    /// order.
    pub fn snapshot(&self) -> Vec<(u8, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u8, c))
            .collect()
    }
}

/// One point-in-time snapshot of every metric, taken at a virtual-time
/// period boundary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Sample {
    /// The period boundary this sample was taken at.
    pub at: SimTime,
    /// Gauges and cumulative counters, by name.
    pub values: BTreeMap<String, u64>,
    /// Sparse histogram snapshots (cumulative), by name.
    pub hists: BTreeMap<String, Vec<(u8, u64)>>,
}

/// True iff `name` sticks to the escaping-free metric-name alphabet.
fn name_ok(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'.' || b == b'_')
}

impl Sample {
    /// An empty sample stamped `at`.
    pub fn new(at: SimTime) -> Self {
        Sample {
            at,
            ..Self::default()
        }
    }

    /// Sets a value (gauge or counter snapshot).
    ///
    /// # Panics
    /// Panics (debug builds) if `name` leaves the `[a-z0-9._]` alphabet.
    pub fn set(&mut self, name: &str, v: u64) {
        debug_assert!(name_ok(name), "bad metric name {name:?}");
        self.values.insert(name.to_owned(), v);
    }

    /// Sets a per-site value under the canonical `s<site>.` prefix.
    pub fn set_site(&mut self, site: SiteId, name: &str, v: u64) {
        debug_assert!(name_ok(name), "bad metric name {name:?}");
        self.values.insert(format!("s{}.{name}", site.0), v);
    }

    /// Serializes to one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(64 + 16 * self.values.len());
        let _ = write!(out, "{{\"t\":{}", self.at.as_micros());
        if !self.values.is_empty() {
            out.push_str(",\"v\":{");
            for (i, (k, v)) in self.values.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{k}\":{v}");
            }
            out.push('}');
        }
        if !self.hists.is_empty() {
            out.push_str(",\"h\":{");
            for (i, (k, buckets)) in self.hists.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{k}\":[");
                for (j, (b, c)) in buckets.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "[{b},{c}]");
                }
                out.push(']');
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// Parses a line produced by [`Sample::to_jsonl`].
    ///
    /// # Errors
    /// Returns a description of the first syntax problem.
    pub fn from_jsonl(line: &str) -> Result<Sample, String> {
        let mut p = Parser {
            b: line.as_bytes(),
            i: 0,
        };
        let mut sample = Sample::default();
        p.expect(b'{')?;
        loop {
            let key = p.string()?;
            p.expect(b':')?;
            match key.as_str() {
                "t" => sample.at = SimTime::from_micros(p.u64()?),
                "v" => {
                    p.expect(b'{')?;
                    if !p.try_expect(b'}') {
                        loop {
                            let name = p.string()?;
                            p.expect(b':')?;
                            sample.values.insert(name, p.u64()?);
                            if !p.try_expect(b',') {
                                break;
                            }
                        }
                        p.expect(b'}')?;
                    }
                }
                "h" => {
                    p.expect(b'{')?;
                    if !p.try_expect(b'}') {
                        loop {
                            let name = p.string()?;
                            p.expect(b':')?;
                            p.expect(b'[')?;
                            let mut buckets = Vec::new();
                            if !p.try_expect(b']') {
                                loop {
                                    p.expect(b'[')?;
                                    let b = p.u64()?;
                                    if b as usize >= HIST_BUCKETS {
                                        return Err(format!("bucket {b} out of range"));
                                    }
                                    p.expect(b',')?;
                                    let c = p.u64()?;
                                    p.expect(b']')?;
                                    buckets.push((b as u8, c));
                                    if !p.try_expect(b',') {
                                        break;
                                    }
                                }
                                p.expect(b']')?;
                            }
                            sample.hists.insert(name, buckets);
                            if !p.try_expect(b',') {
                                break;
                            }
                        }
                        p.expect(b'}')?;
                    }
                }
                other => return Err(format!("unknown sample field {other:?}")),
            }
            if !p.try_expect(b',') {
                break;
            }
        }
        p.expect(b'}')?;
        if p.i != p.b.len() {
            return Err("trailing bytes after sample object".into());
        }
        Ok(sample)
    }
}

/// Minimal parser for the sample JSONL dialect (unescaped strings, `u64`
/// numbers, fixed structure).
struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}",
                c as char,
                self.i.min(self.b.len())
            ))
        }
    }

    fn try_expect(&mut self, c: u8) -> bool {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.i;
        while let Some(&c) = self.b.get(self.i) {
            if c == b'"' {
                let s = std::str::from_utf8(&self.b[start..self.i])
                    .map_err(|_| "non-utf8 string".to_string())?;
                self.i += 1;
                return Ok(s.to_owned());
            }
            if c == b'\\' {
                return Err("escapes not allowed in metric names".into());
            }
            self.i += 1;
        }
        Err("unterminated string".into())
    }

    fn u64(&mut self) -> Result<u64, String> {
        let start = self.i;
        while self.b.get(self.i).is_some_and(u8::is_ascii_digit) {
            self.i += 1;
        }
        if start == self.i {
            return Err(format!("expected number at byte {start}"));
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| "bad number".to_string())
    }
}

/// Renders samples as JSONL (one line per sample, each newline-terminated).
pub fn render_jsonl(samples: &[Sample]) -> String {
    let mut out = String::new();
    for s in samples {
        out.push_str(&s.to_jsonl());
        out.push('\n');
    }
    out
}

/// Renders samples as CSV: a `t_us` column, every value series in name
/// order, and one `<name>.n` observation-count column per histogram.
/// Series missing from a sample render as empty cells.
pub fn render_csv(samples: &[Sample]) -> String {
    let mut value_cols: Vec<&str> = Vec::new();
    let mut hist_cols: Vec<&str> = Vec::new();
    for s in samples {
        for k in s.values.keys() {
            if let Err(pos) = value_cols.binary_search(&k.as_str()) {
                value_cols.insert(pos, k);
            }
        }
        for k in s.hists.keys() {
            if let Err(pos) = hist_cols.binary_search(&k.as_str()) {
                hist_cols.insert(pos, k);
            }
        }
    }
    let mut out = String::from("t_us");
    for c in &value_cols {
        let _ = write!(out, ",{c}");
    }
    for c in &hist_cols {
        let _ = write!(out, ",{c}.n");
    }
    out.push('\n');
    for s in samples {
        let _ = write!(out, "{}", s.at.as_micros());
        for c in &value_cols {
            match s.values.get(*c) {
                Some(v) => {
                    let _ = write!(out, ",{v}");
                }
                None => out.push(','),
            }
        }
        for c in &hist_cols {
            match s.hists.get(*c) {
                Some(buckets) => {
                    let n: u64 = buckets.iter().map(|&(_, c)| c).sum();
                    let _ = write!(out, ",{n}");
                }
                None => out.push(','),
            }
        }
        out.push('\n');
    }
    out
}

/// The shared metric store of one run: push-side counters, gauges, and
/// histograms, plus the accumulated samples.
///
/// Counters and gauges written through [`StatsHandle`] are folded into
/// every subsequent sample; histograms are snapshotted cumulatively.
#[derive(Debug)]
pub struct StatsRegistry {
    interval: SimDuration,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Histogram>,
    samples: Vec<Sample>,
}

impl StatsRegistry {
    /// Creates a registry sampling every `interval` of virtual time.
    ///
    /// # Panics
    /// Panics if `interval` is zero.
    pub fn new(interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "metrics need a nonzero interval");
        StatsRegistry {
            interval,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            hists: BTreeMap::new(),
            samples: Vec::new(),
        }
    }

    /// The sampling period.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Folds the push-side state into `sample` and appends it.
    pub fn commit_sample(&mut self, mut sample: Sample) {
        for (&k, &v) in &self.counters {
            sample.set(k, v);
        }
        for (&k, &v) in &self.gauges {
            sample.set(k, v);
        }
        for (&k, h) in &self.hists {
            debug_assert!(name_ok(k), "bad metric name {k:?}");
            sample.hists.insert(k.to_owned(), h.snapshot());
        }
        self.samples.push(sample);
    }

    /// The samples taken so far, oldest first.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Consumes the registry, yielding its samples.
    pub fn into_samples(self) -> Vec<Sample> {
        self.samples
    }

    /// A push-side histogram's current state (`None` if never observed).
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }
}

/// A cheap, cloneable handle to a run's [`StatsRegistry`] — or to nothing.
///
/// Mirrors [`Tracer`](crate::telemetry::Tracer): components hold a handle
/// unconditionally and record through it; when no registry is attached
/// every method is one branch and metrics cost nothing. Handles are
/// reference-counted and `!Send`, like the rest of a cluster.
#[derive(Debug, Clone, Default)]
pub struct StatsHandle {
    inner: Option<Rc<RefCell<StatsRegistry>>>,
}

impl StatsHandle {
    /// A handle that records nothing.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A handle attached to `registry`.
    pub fn new(registry: Rc<RefCell<StatsRegistry>>) -> Self {
        StatsHandle {
            inner: Some(registry),
        }
    }

    /// True iff a registry is attached.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The sampling period, when attached.
    pub fn interval(&self) -> Option<SimDuration> {
        self.inner.as_ref().map(|r| r.borrow().interval())
    }

    /// Adds `delta` to counter `name`.
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        if let Some(reg) = &self.inner {
            *reg.borrow_mut().counters.entry(name).or_insert(0) += delta;
        }
    }

    /// Sets gauge `name` to `v`.
    pub fn gauge_set(&self, name: &'static str, v: u64) {
        if let Some(reg) = &self.inner {
            reg.borrow_mut().gauges.insert(name, v);
        }
    }

    /// Records one histogram observation.
    pub fn observe(&self, name: &'static str, v: u64) {
        if let Some(reg) = &self.inner {
            reg.borrow_mut().hists.entry(name).or_default().record(v);
        }
    }

    /// Folds the push-side state into `sample` and stores it. Called by
    /// the simulation driver at each period boundary.
    pub fn commit_sample(&self, sample: Sample) {
        if let Some(reg) = &self.inner {
            reg.borrow_mut().commit_sample(sample);
        }
    }

    /// The samples taken so far (empty when disabled).
    pub fn samples(&self) -> Vec<Sample> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |r| r.borrow().samples().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_zero_is_exactly_zero() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_lo(0), 0);
        assert_eq!(Histogram::bucket_hi(0), 0);
    }

    #[test]
    fn bucket_edges_land_where_documented() {
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_hi(64), u64::MAX);
    }

    #[test]
    fn histogram_summary_stats() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 5, 5, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 111);
        assert_eq!(h.max(), 100);
        assert_eq!(h.mean(), 22);
        let snap = h.snapshot();
        assert_eq!(snap, vec![(0, 1), (1, 1), (3, 2), (7, 1)]);
    }

    #[test]
    fn sample_jsonl_round_trips() {
        let mut s = Sample::new(SimTime::from_micros(12345));
        s.set("queue_depth", 42);
        s.set_site(SiteId(3), "lock_waiters", 7);
        s.hists
            .insert("batch.flush_msgs".into(), vec![(1, 5), (4, 2)]);
        let line = s.to_jsonl();
        let back = Sample::from_jsonl(&line).expect("parses");
        assert_eq!(back, s);
        assert_eq!(back.values["s3.lock_waiters"], 7);
    }

    #[test]
    fn empty_sample_round_trips() {
        let s = Sample::new(SimTime::from_micros(9));
        assert_eq!(s.to_jsonl(), "{\"t\":9}");
        assert_eq!(Sample::from_jsonl("{\"t\":9}").unwrap(), s);
    }

    #[test]
    fn bad_lines_are_rejected() {
        for bad in [
            "",
            "{",
            "{\"t\":}",
            "{\"x\":1}",
            "{\"t\":1} ",
            "{\"t\":1,\"v\":{\"a\\\"b\":1}}",
            "{\"t\":1,\"h\":{\"a\":[[99,1]]}}",
        ] {
            assert!(Sample::from_jsonl(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn csv_unions_columns_and_leaves_gaps_empty() {
        let mut a = Sample::new(SimTime::from_micros(10));
        a.set("x", 1);
        let mut b = Sample::new(SimTime::from_micros(20));
        b.set("y", 2);
        b.hists.insert("h1".into(), vec![(0, 4)]);
        let csv = render_csv(&[a, b]);
        assert_eq!(csv, "t_us,x,y,h1.n\n10,1,,\n20,,2,4\n");
    }

    #[test]
    fn registry_folds_push_side_into_samples() {
        let reg = Rc::new(RefCell::new(StatsRegistry::new(SimDuration::from_millis(
            1,
        ))));
        let h = StatsHandle::new(reg.clone());
        h.counter_add("retrans", 3);
        h.counter_add("retrans", 2);
        h.gauge_set("depth", 9);
        h.observe("flush", 4);
        h.commit_sample(Sample::new(SimTime::from_micros(1000)));
        let samples = h.samples();
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].values["retrans"], 5);
        assert_eq!(samples[0].values["depth"], 9);
        assert_eq!(samples[0].hists["flush"], vec![(3, 1)]);
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let h = StatsHandle::disabled();
        assert!(!h.is_enabled());
        h.counter_add("x", 1);
        h.gauge_set("y", 2);
        h.observe("z", 3);
        h.commit_sample(Sample::new(SimTime::ZERO));
        assert!(h.samples().is_empty());
        assert_eq!(h.interval(), None);
    }

    #[test]
    #[should_panic(expected = "nonzero interval")]
    fn zero_interval_is_rejected() {
        let _ = StatsRegistry::new(SimDuration::ZERO);
    }

    proptest! {
        /// Every value lands in exactly the bucket whose documented
        /// boundaries contain it, and the boundaries tile `u64` without
        /// gaps or overlap.
        #[test]
        fn bucket_boundaries_contain_their_values(v in any::<u64>()) {
            let b = Histogram::bucket_of(v);
            prop_assert!(b < HIST_BUCKETS);
            prop_assert!(Histogram::bucket_lo(b) <= v);
            prop_assert!(v <= Histogram::bucket_hi(b));
        }

        /// Adjacent buckets abut exactly: `hi(i) + 1 == lo(i+1)`.
        #[test]
        fn buckets_tile_without_gaps(i in 0usize..HIST_BUCKETS - 1) {
            prop_assert_eq!(
                Histogram::bucket_hi(i).wrapping_add(1),
                Histogram::bucket_lo(i + 1)
            );
        }

        /// JSONL serialization round-trips arbitrary samples built from
        /// the legal name alphabet.
        #[test]
        fn jsonl_round_trip(
            t in 0u64..u64::MAX / 2,
            vals in proptest::collection::vec((0u8..40, any::<u64>()), 0..6),
            hist in proptest::collection::vec((0u8..HIST_BUCKETS as u8, 1u64..1000), 0..5),
        ) {
            let mut s = Sample::new(SimTime::from_micros(t));
            s.values = vals
                .into_iter()
                .map(|(i, v)| (format!("m{i}.x_{}", i % 7), v))
                .collect();
            let mut buckets: Vec<(u8, u64)> = hist;
            buckets.sort_unstable();
            buckets.dedup_by_key(|p| p.0);
            if !buckets.is_empty() {
                s.hists.insert("h".into(), buckets);
            }
            let back = Sample::from_jsonl(&s.to_jsonl()).expect("round trip parses");
            prop_assert_eq!(back, s);
        }
    }
}
