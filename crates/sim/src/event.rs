//! The simulator's event queue: a timing-wheel (calendar-queue) scheduler.
//!
//! Events are ordered by `(time, sequence)` where `sequence` is a strictly
//! increasing insertion counter: two events scheduled for the same instant
//! fire in the order they were scheduled. This tie-break is what makes whole
//! simulation runs reproducible bit-for-bit.
//!
//! # Design
//!
//! The queue is a single-level timing wheel in the style of Varghese &
//! Lauck's calendar queues, chosen over a `BinaryHeap` because the
//! simulator's schedule horizon is short and dense: almost every event is a
//! network delivery or protocol tick landing within a few virtual
//! milliseconds of "now", so `O(1)` bucket insertion beats `O(log n)`
//! sift-down on the hot path. Four structures cooperate:
//!
//! - **`ready`** — events at exactly the current cursor time, in seq order.
//!   Popping the front is the common fast path.
//! - **the wheel** — [`WHEEL_SLOTS`] buckets of one virtual microsecond
//!   each. An event with `0 < time - cursor < WHEEL_SLOTS` lives in slot
//!   `time % WHEEL_SLOTS`. Because every resident delta is smaller than one
//!   revolution, a slot holds events of **exactly one** timestamp, and
//!   because the insertion seq only grows, each slot's vector is sorted by
//!   seq *by construction* — no per-slot sorting, ever. A 1-bit-per-slot
//!   occupancy bitmap (plus a 1-bit-per-word summary) finds the next
//!   non-empty slot in a handful of word scans.
//! - **`far`** — a `BinaryHeap` for events at or beyond one wheel
//!   revolution (long timers, workload arrivals scheduled far ahead). Far
//!   events are *not* cascaded into the wheel as the cursor approaches —
//!   they are merged (by seq) with the wheel slot of the same timestamp at
//!   pop time, which is what preserves the FIFO tie-break exactly.
//! - **`past`** — a `BinaryHeap` for events scheduled strictly before the
//!   cursor. The simulation driver never does this, but the queue stays a
//!   faithful stable priority queue even for pathological schedules.
//!
//! Pop order is **identical** to the previous `BinaryHeap` implementation
//! for every schedule; the property tests at the bottom of this module and
//! the cross-implementation tests in `tests/` hold the two in lock-step.
//!
//! # Examples
//!
//! Same-time events pop in the order they were scheduled:
//!
//! ```
//! use bcastdb_sim::{EventKind, EventQueue, SimTime, SiteId};
//!
//! let mut q: EventQueue<&str, ()> = EventQueue::new();
//! let at = |us| SimTime::from_micros(us);
//! let msg = |s: &'static str| EventKind::Deliver {
//!     from: SiteId(0),
//!     to: SiteId(1),
//!     msg: s,
//! };
//! q.schedule(at(20), msg("late"));
//! q.schedule(at(10), msg("first"));
//! q.schedule(at(10), msg("second"));
//! assert_eq!(q.peek_time(), Some(at(10)));
//! let order: Vec<_> = std::iter::from_fn(|| q.pop())
//!     .map(|e| (e.time.as_micros(), e.seq))
//!     .collect();
//! assert_eq!(order, vec![(10, 1), (10, 2), (20, 0)]);
//! ```

use crate::{SimTime, SiteId};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Number of one-microsecond slots in the timing wheel (one revolution).
///
/// 8192 µs comfortably covers the LAN latency/tick horizon the experiments
/// schedule into; anything further out (long failure-detector timeouts,
/// workload arrivals injected at absolute times) takes the `far` heap path,
/// which is exactly the old binary-heap behavior.
const WHEEL_SLOTS: usize = 8192;
const WHEEL_MASK: u64 = WHEEL_SLOTS as u64 - 1;
/// Occupancy bitmap words (64 slots per word).
const OCC_WORDS: usize = WHEEL_SLOTS / 64;

/// What an [`Event`] does when it fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind<M, T> {
    /// Deliver a network message to `to`.
    Deliver {
        /// Originating site.
        from: SiteId,
        /// Destination site.
        to: SiteId,
        /// Application payload.
        msg: M,
    },
    /// Fire a local timer at `at`.
    Timer {
        /// Site whose timer fires.
        at: SiteId,
        /// Application-defined timer tag.
        tag: T,
    },
}

/// A scheduled occurrence in virtual time.
#[derive(Debug, Clone)]
pub struct Event<M, T> {
    /// When the event fires.
    pub time: SimTime,
    /// Insertion sequence number; breaks ties at equal `time`.
    pub seq: u64,
    /// The action to perform.
    pub kind: EventKind<M, T>,
}

impl<M, T> PartialEq for Event<M, T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M, T> Eq for Event<M, T> {}

impl<M, T> PartialOrd for Event<M, T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M, T> Ord for Event<M, T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is on top
        // (the `far` and `past` heaps rely on this).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A stable min-priority queue of [`Event`]s.
///
/// Pops strictly in `(time, seq)` order: earliest firing time first, and
/// among events scheduled for the same instant, scheduling order (FIFO).
/// The module-level docs in `crates/sim/src/event.rs` (and DESIGN.md §13)
/// describe the internal wheel/heap layout.
#[derive(Debug)]
pub struct EventQueue<M, T> {
    /// Wheel buckets; entry = `(seq, kind)`. Each occupied slot holds
    /// events of exactly one timestamp, recoverable from the slot index
    /// and the cursor, and its vector is seq-sorted by construction.
    slots: Vec<Vec<(u64, EventKind<M, T>)>>,
    /// One occupancy bit per slot.
    occ: [u64; OCC_WORDS],
    /// One bit per occupancy word (any-set summary for fast scans).
    summary: u128,
    /// The current batch timestamp in µs: every event in `ready` fires at
    /// exactly this time, every wheel/far event strictly after it.
    cursor: u64,
    /// Events at time == `cursor`, in seq order; popped from the front.
    ready: VecDeque<(u64, EventKind<M, T>)>,
    /// Events at or beyond one wheel revolution, in `(time, seq)` order.
    far: BinaryHeap<Event<M, T>>,
    /// Events scheduled strictly before the cursor (pathological case).
    past: BinaryHeap<Event<M, T>>,
    next_seq: u64,
    len: usize,
    /// Lifetime schedule counts by placement (wheel/ready, far, past) —
    /// cheap always-on counters feeding [`EventQueue::wheel_stats`].
    sched_near: u64,
    sched_far: u64,
    sched_past: u64,
}

/// Where the events of a queue's lifetime landed, plus the live residency
/// of each structure. `near` counts the wheel/ready fast path; `far` the
/// beyond-one-revolution heap; `past` the pathological behind-the-cursor
/// heap. The PR-5 performance model assumes `near` dominates — the metrics
/// subsystem samples these so a workload that quietly falls off the fast
/// path shows up in the data.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WheelStats {
    /// Events scheduled onto the wheel or the ready queue (fast path).
    pub sched_near: u64,
    /// Events scheduled at or beyond one wheel revolution (far heap).
    pub sched_far: u64,
    /// Events scheduled strictly before the cursor (past heap).
    pub sched_past: u64,
    /// Events currently in the ready queue.
    pub ready_len: usize,
    /// Events currently in the far heap.
    pub far_len: usize,
    /// Events currently in the past heap.
    pub past_len: usize,
}

impl<M, T> Default for EventQueue<M, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M, T> EventQueue<M, T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue pre-sized for roughly `cap` pending events,
    /// so the steady state of a workload that stays under that bound never
    /// reallocates. Ordering semantics are identical to
    /// [`EventQueue::new`] — capacity never affects pop order.
    pub fn with_capacity(cap: usize) -> Self {
        let mut slots = Vec::with_capacity(WHEEL_SLOTS);
        slots.resize_with(WHEEL_SLOTS, Vec::new);
        EventQueue {
            slots,
            occ: [0; OCC_WORDS],
            summary: 0,
            cursor: 0,
            // A same-instant batch is a broadcast fan-out plus ties, far
            // smaller than the total pending population.
            ready: VecDeque::with_capacity(cap.min(64)),
            // Absolute-time workload arrivals land here in bulk.
            far: BinaryHeap::with_capacity(cap),
            past: BinaryHeap::new(),
            next_seq: 0,
            len: 0,
            sched_near: 0,
            sched_far: 0,
            sched_past: 0,
        }
    }

    /// Schedules `kind` to fire at `time`. Events at equal times fire in
    /// scheduling order.
    pub fn schedule(&mut self, time: SimTime, kind: EventKind<M, T>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        let t = time.as_micros();
        if t > self.cursor {
            let delta = t - self.cursor;
            if delta < WHEEL_SLOTS as u64 {
                let idx = (t & WHEEL_MASK) as usize;
                self.slots[idx].push((seq, kind));
                self.occ[idx >> 6] |= 1u64 << (idx & 63);
                self.summary |= 1u128 << (idx >> 6);
                self.sched_near += 1;
            } else {
                self.far.push(Event { time, seq, kind });
                self.sched_far += 1;
            }
        } else if t == self.cursor {
            // Fires at the instant currently being drained: this seq is
            // larger than everything already in `ready`, so appending
            // keeps `ready` seq-sorted.
            self.ready.push_back((seq, kind));
            self.sched_near += 1;
        } else {
            self.past.push(Event { time, seq, kind });
            self.sched_past += 1;
        }
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event<M, T>> {
        // Past events (time < cursor) precede everything resident in the
        // wheel or `ready` (time >= cursor).
        if let Some(ev) = self.past.pop() {
            self.len -= 1;
            return Some(ev);
        }
        if self.ready.is_empty() && !self.advance() {
            return None;
        }
        let (seq, kind) = self.ready.pop_front().expect("advance filled ready");
        self.len -= 1;
        Some(Event {
            time: SimTime::from_micros(self.cursor),
            seq,
            kind,
        })
    }

    /// Returns the firing time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(ev) = self.past.peek() {
            return Some(ev.time);
        }
        if !self.ready.is_empty() {
            return Some(SimTime::from_micros(self.cursor));
        }
        let wheel_t = self.next_occupied().map(|(_, t)| t);
        let far_t = self.far.peek().map(|e| e.time.as_micros());
        match (wheel_t, far_t) {
            (None, None) => None,
            (a, b) => Some(SimTime::from_micros(
                a.unwrap_or(u64::MAX).min(b.unwrap_or(u64::MAX)),
            )),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Lifetime placement counts and live per-structure residency.
    pub fn wheel_stats(&self) -> WheelStats {
        WheelStats {
            sched_near: self.sched_near,
            sched_far: self.sched_far,
            sched_past: self.sched_past,
            ready_len: self.ready.len(),
            far_len: self.far.len(),
            past_len: self.past.len(),
        }
    }

    /// Moves the next timestamp's events into `ready` and advances the
    /// cursor to it. Returns `false` when the queue is empty.
    fn advance(&mut self) -> bool {
        debug_assert!(self.ready.is_empty() && self.past.is_empty());
        let wheel = self.next_occupied();
        let far_t = self.far.peek().map(|e| e.time.as_micros());
        match (wheel, far_t) {
            (None, None) => false,
            (Some((idx, tw)), None) => {
                self.cursor = tw;
                self.move_slot_to_ready(idx);
                true
            }
            (None, Some(tf)) => {
                self.cursor = tf;
                self.move_far_to_ready(tf);
                true
            }
            (Some((idx, tw)), Some(tf)) => {
                self.cursor = tw.min(tf);
                match tw.cmp(&tf) {
                    Ordering::Less => self.move_slot_to_ready(idx),
                    Ordering::Greater => self.move_far_to_ready(tf),
                    // A far event caught up with a wheel slot at the same
                    // timestamp: interleave the two seq-sorted runs.
                    Ordering::Equal => self.merge_slot_and_far(idx, tf),
                }
                true
            }
        }
    }

    /// Finds the occupied slot closest after the cursor, returning its
    /// index and absolute timestamp. Read-only (shared by `peek_time`).
    fn next_occupied(&self) -> Option<(usize, u64)> {
        if self.summary == 0 {
            return None;
        }
        // Scanning slot indices upward from the cursor's position (and
        // wrapping once) visits resident deltas in increasing order,
        // because every resident delta is below one revolution.
        let start = ((self.cursor as usize) + 1) & (WHEEL_SLOTS - 1);
        let idx = self
            .scan_range(start, WHEEL_SLOTS)
            .or_else(|| self.scan_range(0, start))?;
        let delta = (idx as u64).wrapping_sub(self.cursor) & WHEEL_MASK;
        debug_assert_ne!(delta, 0, "slot at the cursor's own index occupied");
        Some((idx, self.cursor + delta))
    }

    /// Lowest occupied slot index in `[from, to)`, via the bitmaps.
    fn scan_range(&self, from: usize, to: usize) -> Option<usize> {
        if from >= to {
            return None;
        }
        let first_w = from >> 6;
        let last_w = (to - 1) >> 6;
        // Words with any occupied slot, restricted to [first_w, last_w].
        let mut sum = (self.summary >> first_w) << first_w;
        if last_w < OCC_WORDS - 1 {
            sum &= (1u128 << (last_w + 1)) - 1;
        }
        while sum != 0 {
            let w = sum.trailing_zeros() as usize;
            let mut word = self.occ[w];
            if w == first_w {
                word &= !0u64 << (from & 63);
            }
            if w == last_w && (to & 63) != 0 {
                word &= (1u64 << (to & 63)) - 1;
            }
            if word != 0 {
                return Some((w << 6) + word.trailing_zeros() as usize);
            }
            sum &= sum - 1;
        }
        None
    }

    fn clear_bit(&mut self, idx: usize) {
        let w = idx >> 6;
        self.occ[w] &= !(1u64 << (idx & 63));
        if self.occ[w] == 0 {
            self.summary &= !(1u128 << w);
        }
    }

    /// Drains slot `idx` (one timestamp, seq-sorted) into `ready`.
    fn move_slot_to_ready(&mut self, idx: usize) {
        let mut v = std::mem::take(&mut self.slots[idx]);
        self.ready.extend(v.drain(..));
        self.slots[idx] = v; // hand the capacity back to the slot
        self.clear_bit(idx);
    }

    /// Drains every far event at exactly time `t` into `ready`. The heap
    /// yields equal-time events in seq order, so `ready` stays sorted.
    fn move_far_to_ready(&mut self, t: u64) {
        while self.far.peek().is_some_and(|e| e.time.as_micros() == t) {
            let e = self.far.pop().expect("peeked");
            self.ready.push_back((e.seq, e.kind));
        }
    }

    /// Two-way merge (by seq) of slot `idx` and the far events at time `t`
    /// into `ready`. Both runs are already seq-sorted.
    fn merge_slot_and_far(&mut self, idx: usize, t: u64) {
        let mut v = std::mem::take(&mut self.slots[idx]);
        let mut slot_it = v.drain(..).peekable();
        while let Some(far_seq) = self
            .far
            .peek()
            .filter(|e| e.time.as_micros() == t)
            .map(|e| e.seq)
        {
            while slot_it.peek().is_some_and(|&(s, _)| s < far_seq) {
                self.ready.push_back(slot_it.next().expect("peeked"));
            }
            let e = self.far.pop().expect("peeked");
            self.ready.push_back((e.seq, e.kind));
        }
        self.ready.extend(slot_it);
        self.slots[idx] = v;
        self.clear_bit(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deliver(n: usize) -> EventKind<u32, ()> {
        EventKind::Deliver {
            from: SiteId(0),
            to: SiteId(n),
            msg: n as u32,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), deliver(3));
        q.schedule(SimTime::from_micros(10), deliver(1));
        q.schedule(SimTime::from_micros(20), deliver(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.as_micros())
            .collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(SimTime::from_micros(5), deliver(i));
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Deliver { to, .. } => to.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q: EventQueue<u32, ()> = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_micros(9), deliver(0));
        q.schedule(SimTime::from_micros(4), deliver(1));
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(4)));
    }

    #[test]
    fn len_and_is_empty_track_contents() {
        let mut q: EventQueue<u32, ()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, deliver(0));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn timers_and_messages_interleave_correctly() {
        let mut q: EventQueue<u32, u8> = EventQueue::new();
        q.schedule(
            SimTime::from_micros(2),
            EventKind::Timer {
                at: SiteId(1),
                tag: 7,
            },
        );
        q.schedule(
            SimTime::from_micros(1),
            EventKind::Deliver {
                from: SiteId(0),
                to: SiteId(1),
                msg: 42,
            },
        );
        assert!(matches!(
            q.pop().unwrap().kind,
            EventKind::Deliver { msg: 42, .. }
        ));
        assert!(matches!(
            q.pop().unwrap().kind,
            EventKind::Timer { tag: 7, .. }
        ));
    }

    #[test]
    fn events_beyond_one_revolution_take_the_far_path() {
        let mut q = EventQueue::new();
        let far = WHEEL_SLOTS as u64 * 3 + 17;
        q.schedule(SimTime::from_micros(far), deliver(2));
        q.schedule(SimTime::from_micros(5), deliver(1));
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(5)));
        assert_eq!(q.pop().unwrap().time.as_micros(), 5);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(far)));
        assert_eq!(q.pop().unwrap().time.as_micros(), far);
        assert!(q.pop().is_none());
    }

    #[test]
    fn far_event_merges_with_wheel_slot_in_seq_order() {
        let mut q = EventQueue::new();
        let t = WHEEL_SLOTS as u64 + 100;
        // seq 0 goes far (beyond one revolution from cursor 0)...
        q.schedule(SimTime::from_micros(t), deliver(0));
        // ...advance the cursor so the same timestamp now fits the wheel.
        q.schedule(SimTime::from_micros(200), deliver(9));
        assert_eq!(q.pop().unwrap().time.as_micros(), 200);
        // seq 2 lands in the wheel slot for `t`.
        q.schedule(SimTime::from_micros(t), deliver(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
        assert_eq!(order, vec![0, 2], "far/wheel tie must interleave by seq");
    }

    #[test]
    fn scheduling_at_the_current_instant_fires_after_pending_ties() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(7), deliver(0));
        q.schedule(SimTime::from_micros(7), deliver(1));
        assert_eq!(q.pop().unwrap().seq, 0);
        // The queue is now mid-batch at t=7; a new same-instant event
        // fires after the remaining tie.
        q.schedule(SimTime::from_micros(7), deliver(2));
        assert_eq!(q.pop().unwrap().seq, 1);
        assert_eq!(q.pop().unwrap().seq, 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn events_before_the_cursor_still_pop_first() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(50), deliver(0));
        assert_eq!(q.pop().unwrap().time.as_micros(), 50);
        // Pathological: schedule before the cursor. A stable priority
        // queue must still serve it ahead of later times.
        q.schedule(SimTime::from_micros(10), deliver(1));
        q.schedule(SimTime::from_micros(60), deliver(2));
        assert_eq!(q.pop().unwrap().time.as_micros(), 10);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(60)));
        assert_eq!(q.pop().unwrap().time.as_micros(), 60);
    }

    #[test]
    fn wheel_wraps_across_revolutions() {
        let mut q = EventQueue::new();
        let mut expect = Vec::new();
        // March the cursor through several revolutions with short hops.
        let mut t = 0u64;
        for i in 0..(WHEEL_SLOTS * 3 / 100) {
            t += 100 + (i as u64 % 7);
            q.schedule(SimTime::from_micros(t), deliver(i));
            expect.push(t);
        }
        let got: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.as_micros())
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn wheel_stats_classify_schedules() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(50), deliver(0)); // near
        q.schedule(SimTime::from_micros(WHEEL_SLOTS as u64 + 9), deliver(1)); // far
        assert_eq!(q.pop().unwrap().time.as_micros(), 50);
        q.schedule(SimTime::from_micros(10), deliver(2)); // past (cursor = 50)
        let s = q.wheel_stats();
        assert_eq!((s.sched_near, s.sched_far, s.sched_past), (1, 1, 1));
        assert_eq!((s.far_len, s.past_len), (1, 1));
    }

    /// Reference implementation: the previous `BinaryHeap` scheduler.
    struct RefQueue {
        heap: BinaryHeap<Event<u32, ()>>,
        next_seq: u64,
    }

    impl RefQueue {
        fn new() -> Self {
            RefQueue {
                heap: BinaryHeap::new(),
                next_seq: 0,
            }
        }
        fn schedule(&mut self, time: SimTime, kind: EventKind<u32, ()>) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Event { time, seq, kind });
        }
        fn pop(&mut self) -> Option<Event<u32, ()>> {
            self.heap.pop()
        }
        fn peek_time(&self) -> Option<SimTime> {
            self.heap.peek().map(|e| e.time)
        }
    }

    use proptest::prelude::*;

    /// One step of an interleaved schedule/pop workload. Times mix three
    /// regimes so the wheel, far-heap, merge, and past paths all trigger:
    /// near offsets (wheel), offsets beyond a revolution (far), and
    /// absolute times that may land before the cursor (past).
    #[derive(Debug, Clone)]
    enum Op {
        ScheduleNear(u16),
        ScheduleFar(u32),
        ScheduleAbs(u32),
        Pop,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        // Near schedules and pops are listed repeatedly to bias the
        // (unweighted) union toward the hot wheel path while still
        // exercising far, absolute/past, and drain transitions.
        prop_oneof![
            (0u16..2048).prop_map(Op::ScheduleNear),
            (0u16..2048).prop_map(Op::ScheduleNear),
            (0u16..2048).prop_map(Op::ScheduleNear),
            (0u16..64).prop_map(Op::ScheduleNear),
            (0u32..60_000).prop_map(Op::ScheduleFar),
            (0u32..30_000).prop_map(Op::ScheduleAbs),
            Just(Op::Pop),
            Just(Op::Pop),
            Just(Op::Pop),
        ]
    }

    proptest! {
        /// The wheel queue and the heap reference pop identical
        /// `(time, seq)` streams for arbitrary interleaved workloads,
        /// including same-timestamp bursts.
        #[test]
        fn wheel_matches_heap_reference(ops in proptest::collection::vec(op_strategy(), 1..300)) {
            let mut wheel: EventQueue<u32, ()> = EventQueue::new();
            let mut heap = RefQueue::new();
            let mut now = 0u64; // mirror of the simulation clock
            for (i, op) in ops.iter().enumerate() {
                match *op {
                    Op::ScheduleNear(d) => {
                        let t = SimTime::from_micros(now + d as u64);
                        wheel.schedule(t, deliver(i));
                        heap.schedule(t, deliver(i));
                    }
                    Op::ScheduleFar(d) => {
                        let t = SimTime::from_micros(now + WHEEL_SLOTS as u64 + d as u64);
                        wheel.schedule(t, deliver(i));
                        heap.schedule(t, deliver(i));
                    }
                    Op::ScheduleAbs(t) => {
                        let t = SimTime::from_micros(t as u64);
                        wheel.schedule(t, deliver(i));
                        heap.schedule(t, deliver(i));
                    }
                    Op::Pop => {
                        prop_assert_eq!(wheel.peek_time(), heap.peek_time());
                        let a = wheel.pop();
                        let b = heap.pop();
                        prop_assert_eq!(a.as_ref().map(|e| (e.time, e.seq)),
                                        b.as_ref().map(|e| (e.time, e.seq)));
                        if let Some(e) = a {
                            // The sim clock only moves forward.
                            now = now.max(e.time.as_micros());
                        }
                    }
                }
            }
            // Drain both to the end.
            loop {
                prop_assert_eq!(wheel.peek_time(), heap.peek_time());
                let a = wheel.pop();
                let b = heap.pop();
                prop_assert_eq!(a.as_ref().map(|e| (e.time, e.seq)),
                                b.as_ref().map(|e| (e.time, e.seq)));
                if a.is_none() { break; }
            }
            prop_assert!(wheel.is_empty());
        }

        /// Same-timestamp bursts pop strictly in scheduling order no
        /// matter which internal structure each event landed in.
        #[test]
        fn bursts_stay_fifo(burst in 1usize..64, t in 0u64..20_000) {
            let mut q: EventQueue<u32, ()> = EventQueue::new();
            for i in 0..burst {
                q.schedule(SimTime::from_micros(t), deliver(i));
            }
            let seqs: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
            prop_assert_eq!(seqs, (0..burst as u64).collect::<Vec<_>>());
        }
    }
}
