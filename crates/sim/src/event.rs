//! The simulator's event queue.
//!
//! Events are ordered by `(time, sequence)` where `sequence` is a strictly
//! increasing insertion counter: two events scheduled for the same instant
//! fire in the order they were scheduled. This tie-break is what makes whole
//! simulation runs reproducible bit-for-bit.

use crate::{SimTime, SiteId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What an [`Event`] does when it fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind<M, T> {
    /// Deliver a network message to `to`.
    Deliver {
        /// Originating site.
        from: SiteId,
        /// Destination site.
        to: SiteId,
        /// Application payload.
        msg: M,
    },
    /// Fire a local timer at `at`.
    Timer {
        /// Site whose timer fires.
        at: SiteId,
        /// Application-defined timer tag.
        tag: T,
    },
}

/// A scheduled occurrence in virtual time.
#[derive(Debug, Clone)]
pub struct Event<M, T> {
    /// When the event fires.
    pub time: SimTime,
    /// Insertion sequence number; breaks ties at equal `time`.
    pub seq: u64,
    /// The action to perform.
    pub kind: EventKind<M, T>,
}

impl<M, T> PartialEq for Event<M, T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M, T> Eq for Event<M, T> {}

impl<M, T> PartialOrd for Event<M, T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M, T> Ord for Event<M, T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is on top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A stable min-priority queue of [`Event`]s.
#[derive(Debug)]
pub struct EventQueue<M, T> {
    heap: BinaryHeap<Event<M, T>>,
    next_seq: u64,
}

impl<M, T> Default for EventQueue<M, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M, T> EventQueue<M, T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `cap` events before the
    /// backing heap reallocates. Ordering semantics are identical to
    /// [`EventQueue::new`] — capacity never affects pop order.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedules `kind` to fire at `time`. Events at equal times fire in
    /// scheduling order.
    pub fn schedule(&mut self, time: SimTime, kind: EventKind<M, T>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event<M, T>> {
        self.heap.pop()
    }

    /// Returns the firing time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True iff no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deliver(n: usize) -> EventKind<u32, ()> {
        EventKind::Deliver {
            from: SiteId(0),
            to: SiteId(n),
            msg: n as u32,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), deliver(3));
        q.schedule(SimTime::from_micros(10), deliver(1));
        q.schedule(SimTime::from_micros(20), deliver(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.as_micros())
            .collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(SimTime::from_micros(5), deliver(i));
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Deliver { to, .. } => to.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q: EventQueue<u32, ()> = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_micros(9), deliver(0));
        q.schedule(SimTime::from_micros(4), deliver(1));
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(4)));
    }

    #[test]
    fn len_and_is_empty_track_contents() {
        let mut q: EventQueue<u32, ()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, deliver(0));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn timers_and_messages_interleave_correctly() {
        let mut q: EventQueue<u32, u8> = EventQueue::new();
        q.schedule(
            SimTime::from_micros(2),
            EventKind::Timer {
                at: SiteId(1),
                tag: 7,
            },
        );
        q.schedule(
            SimTime::from_micros(1),
            EventKind::Deliver {
                from: SiteId(0),
                to: SiteId(1),
                msg: 42,
            },
        );
        assert!(matches!(
            q.pop().unwrap().kind,
            EventKind::Deliver { msg: 42, .. }
        ));
        assert!(matches!(
            q.pop().unwrap().kind,
            EventKind::Timer { tag: 7, .. }
        ));
    }
}
