//! Measurement helpers: counters, histograms, and time-series used by the
//! experiment harness to regenerate the paper's tables and figures.

use crate::SimDuration;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;

/// A streaming collection of duration samples with summary statistics.
///
/// Used for commit latencies: each committed transaction contributes one
/// sample, and the harness reports mean / p50 / p95 / p99 / max per series.
///
/// Quantiles take `&self`: the sorted view is computed lazily into an
/// interior cache and invalidated on [`LatencyStats::record`] /
/// [`LatencyStats::merge`], so `Display` and percentile reads never need
/// mutable access or a clone.
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    samples: Vec<u64>,
    sorted: RefCell<Option<Vec<u64>>>,
}

impl LatencyStats {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, d: SimDuration) {
        self.samples.push(d.as_micros());
        self.sorted.get_mut().take();
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True iff no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The raw samples, in recording order, in microseconds.
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// Arithmetic mean, or zero when empty.
    pub fn mean(&self) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        let sum: u128 = self.samples.iter().map(|&s| s as u128).sum();
        SimDuration::from_micros((sum / self.samples.len() as u128) as u64)
    }

    /// The `q`-quantile (0.0..=1.0) by nearest-rank, or zero when empty.
    pub fn quantile(&self, q: f64) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        let mut cache = self.sorted.borrow_mut();
        let sorted = cache.get_or_insert_with(|| {
            let mut v = self.samples.clone();
            v.sort_unstable();
            v
        });
        let q = q.clamp(0.0, 1.0);
        let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        SimDuration::from_micros(sorted[idx])
    }

    /// Median.
    pub fn p50(&self) -> SimDuration {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> SimDuration {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> SimDuration {
        self.quantile(0.99)
    }

    /// Largest sample, or zero when empty.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_micros(self.samples.iter().copied().max().unwrap_or(0))
    }

    /// Merges another collection into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted.get_mut().take();
    }
}

impl fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={} p50={} p95={} max={}",
            self.count(),
            self.mean(),
            self.p50(),
            self.p95(),
            self.max()
        )
    }
}

/// A windowed time series: samples bucketed by fixed virtual-time windows,
/// used for throughput-over-time plots (commits per window, messages per
/// window).
#[derive(Debug, Clone)]
pub struct TimeSeries {
    window: crate::SimDuration,
    buckets: Vec<u64>,
}

impl TimeSeries {
    /// Creates a series with the given bucket width.
    ///
    /// # Panics
    /// Panics if `window` is zero.
    pub fn new(window: crate::SimDuration) -> Self {
        assert!(!window.is_zero(), "time series needs a nonzero window");
        TimeSeries {
            window,
            buckets: Vec::new(),
        }
    }

    /// Records one event at virtual time `at`.
    pub fn record(&mut self, at: crate::SimTime) {
        let idx = (at.as_micros() / self.window.as_micros()) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
    }

    /// The bucket width.
    pub fn window(&self) -> crate::SimDuration {
        self.window
    }

    /// Per-window counts, oldest first (trailing empty windows included up
    /// to the last recorded event).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The busiest window's `(index, count)`, or `None` when empty.
    pub fn peak(&self) -> Option<(usize, u64)> {
        self.buckets
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|&(i, c)| (c, std::cmp::Reverse(i)))
    }

    /// Mean events per window over the recorded span (0 when empty).
    pub fn mean_rate(&self) -> f64 {
        if self.buckets.is_empty() {
            0.0
        } else {
            self.total() as f64 / self.buckets.len() as f64
        }
    }

    /// Merges another series into this one, summing per-window counts.
    ///
    /// # Panics
    /// Panics if the bucket widths differ.
    pub fn merge(&mut self, other: &TimeSeries) {
        assert_eq!(
            self.window, other.window,
            "cannot merge time series with different windows"
        );
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }
}

/// Named monotonically increasing counters (messages sent, aborts, ...).
#[derive(Debug, Clone, Default)]
pub struct Counters {
    values: BTreeMap<String, u64>,
}

impl Counters {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &str, delta: u64) {
        // Look up by `&str` first: the entry API would allocate an owned
        // key on every call, and counter bumps sit on the per-message hot
        // path. The allocation happens once per counter name, not once
        // per increment.
        if let Some(v) = self.values.get_mut(name) {
            *v += delta;
        } else {
            self.values.insert(name.to_owned(), delta);
        }
    }

    /// Increments counter `name` by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of `name` (zero if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.values.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Merges another counter set into this one (summing shared names).
    pub fn merge(&mut self, other: &Counters) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.values.is_empty() {
            return write!(f, "(no counters)");
        }
        let mut first = true;
        for (k, v) in self.iter() {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{k}={v}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_summary() {
        let mut s = LatencyStats::new();
        for i in 1..=100u64 {
            s.record(SimDuration::from_micros(i));
        }
        assert_eq!(s.count(), 100);
        assert_eq!(s.mean().as_micros(), 50); // (5050/100) truncated
                                              // nearest-rank on an even count rounds up: index round(99*0.5)=50.
        assert_eq!(s.p50().as_micros(), 51);
        assert_eq!(s.p95().as_micros(), 95);
        assert_eq!(s.max().as_micros(), 100);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = LatencyStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), SimDuration::ZERO);
        assert_eq!(s.p99(), SimDuration::ZERO);
        assert_eq!(s.max(), SimDuration::ZERO);
    }

    #[test]
    fn quantiles_track_mutation_through_the_cache() {
        let mut s = LatencyStats::new();
        s.record(SimDuration::from_micros(10));
        assert_eq!(s.p50().as_micros(), 10); // populates the sorted cache
        s.record(SimDuration::from_micros(2));
        assert_eq!(s.quantile(0.0).as_micros(), 2, "record invalidates cache");
        let mut other = LatencyStats::new();
        other.record(SimDuration::from_micros(1));
        assert_eq!(s.p50().as_micros(), 10); // repopulate before the merge
        s.merge(&other);
        assert_eq!(s.quantile(0.0).as_micros(), 1, "merge invalidates cache");
        assert_eq!(s.samples(), &[10, 2, 1], "samples stay in record order");
    }

    #[test]
    fn quantile_clamps_range() {
        let mut s = LatencyStats::new();
        s.record(SimDuration::from_micros(7));
        assert_eq!(s.quantile(-1.0).as_micros(), 7);
        assert_eq!(s.quantile(2.0).as_micros(), 7);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = LatencyStats::new();
        let mut b = LatencyStats::new();
        a.record(SimDuration::from_micros(1));
        b.record(SimDuration::from_micros(3));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean().as_micros(), 2);
    }

    #[test]
    fn counters_accumulate_and_merge() {
        let mut c = Counters::new();
        c.incr("aborts");
        c.add("aborts", 2);
        c.incr("commits");
        assert_eq!(c.get("aborts"), 3);
        assert_eq!(c.get("missing"), 0);

        let mut d = Counters::new();
        d.add("aborts", 10);
        c.merge(&d);
        assert_eq!(c.get("aborts"), 13);
        assert_eq!(c.get("commits"), 1);
    }

    #[test]
    fn time_series_buckets_by_window() {
        let mut ts = TimeSeries::new(SimDuration::from_millis(10));
        for t in [0u64, 1_000, 9_999, 10_000, 25_000] {
            ts.record(crate::SimTime::from_micros(t));
        }
        assert_eq!(ts.buckets(), &[3, 1, 1]);
        assert_eq!(ts.total(), 5);
        assert_eq!(ts.peak(), Some((0, 3)));
        assert!((ts.mean_rate() - 5.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn time_series_empty_behaviour() {
        let ts = TimeSeries::new(SimDuration::from_millis(1));
        assert_eq!(ts.total(), 0);
        assert_eq!(ts.peak(), None);
        assert_eq!(ts.mean_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "nonzero window")]
    fn time_series_rejects_zero_window() {
        let _ = TimeSeries::new(SimDuration::ZERO);
    }

    #[test]
    fn time_series_merge_sums_windows() {
        let mut a = TimeSeries::new(SimDuration::from_millis(10));
        let mut b = TimeSeries::new(SimDuration::from_millis(10));
        a.record(crate::SimTime::from_micros(500));
        b.record(crate::SimTime::from_micros(600));
        b.record(crate::SimTime::from_micros(25_000));
        a.merge(&b);
        assert_eq!(a.buckets(), &[2, 0, 1]);
        assert_eq!(a.total(), 3);
    }

    #[test]
    #[should_panic(expected = "different windows")]
    fn time_series_merge_rejects_window_mismatch() {
        let mut a = TimeSeries::new(SimDuration::from_millis(10));
        let b = TimeSeries::new(SimDuration::from_millis(20));
        a.merge(&b);
    }

    #[test]
    fn counters_display_sorted() {
        let mut c = Counters::new();
        c.incr("b");
        c.incr("a");
        assert_eq!(c.to_string(), "a=1 b=1");
    }
}
