//! Structured trace events: typed, per-phase message accounting and
//! transaction lifecycle spans, with pluggable sinks and an offline
//! invariant checker.
//!
//! The experiment harness needs more than flat counters to decompose a
//! protocol's traffic the way the paper does (write dissemination vs.
//! votes vs. acknowledgements vs. decisions). This module defines:
//!
//! - [`Phase`] — the six protocol phases every replica message belongs to,
//! - [`TraceEvent`] — one structured record per message send / delivery /
//!   drop and per transaction lifecycle step (submit → locks → vote →
//!   commit/abort), plus total-order deliveries, view changes, and crashes,
//! - [`TraceSink`] — where events go: a bounded [`RingSink`], a JSON-Lines
//!   [`JsonlSink`], or the streaming [`TraceInvariants`] checker,
//! - [`Tracer`] — a cheap, cloneable handle that is **zero-overhead when
//!   disabled**: [`Tracer::emit`] takes a closure that is never evaluated
//!   unless a sink is attached,
//! - [`PhaseCounts`] — a per-phase message tally for benchmark tables.
//!
//! # Example
//!
//! ```
//! use bcastdb_sim::telemetry::{Phase, RingSink, TraceEvent, Tracer};
//! use bcastdb_sim::{SimTime, SiteId};
//! use std::cell::RefCell;
//! use std::rc::Rc;
//!
//! let ring = Rc::new(RefCell::new(RingSink::new(16)));
//! let tracer = Tracer::new(ring.clone());
//! tracer.emit(|| TraceEvent::Send {
//!     at: SimTime::from_micros(5),
//!     from: SiteId(0),
//!     to: SiteId(1),
//!     phase: Phase::Prepare,
//! });
//! assert_eq!(ring.borrow().len(), 1);
//!
//! // A disabled tracer never evaluates the closure:
//! Tracer::disabled().emit(|| unreachable!());
//! ```

pub use crate::analyze::{
    render_summary, render_timeline, slowest, summarize, CriticalPath, SegmentSummary,
};
pub use crate::spans::{Segment, SegmentBreakdown, SpanBuilder, SpanOutcome, TxnSpan, VoteRecord};

use crate::{SimTime, SiteId};
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::io::Write;
use std::rc::Rc;

// ---------------------------------------------------------------------
// Phases
// ---------------------------------------------------------------------

/// The protocol phase a replica message belongs to.
///
/// Every message any of the four protocols sends falls into exactly one
/// of these buckets, so per-phase totals sum to the flat message count by
/// construction. The mapping (documented per message type in
/// `bcastdb-core`) follows the paper's cost decomposition: disseminating
/// a transaction's effects is *prepare*, deciding its fate is *vote* /
/// *decision*, everything acknowledgement-like is *ack*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Write dissemination and commit requests (including the payload legs
    /// of the atomic broadcast).
    Prepare,
    /// Explicit 2PC votes.
    Vote,
    /// Acknowledgement-shaped traffic: per-operation write acks, negative
    /// acknowledgements, null keep-alives, ISIS priority proposals.
    Ack,
    /// Outcome propagation: abort decisions, sequencer orderings, ISIS
    /// final priorities.
    Decision,
    /// Loss recovery: retransmitted broadcasts and watermark syncs.
    Retransmit,
    /// Membership service heartbeats and view agreement.
    Membership,
}

impl Phase {
    /// All phases, in table-column order.
    pub const ALL: [Phase; 6] = [
        Phase::Prepare,
        Phase::Vote,
        Phase::Ack,
        Phase::Decision,
        Phase::Retransmit,
        Phase::Membership,
    ];

    /// Position of this phase in [`Phase::ALL`] (and in the `Ord` order,
    /// since the variants are declared in table-column order).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short stable name used in benchmark columns and JSON lines.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Prepare => "prepare",
            Phase::Vote => "vote",
            Phase::Ack => "ack",
            Phase::Decision => "decision",
            Phase::Retransmit => "retransmit",
            Phase::Membership => "membership",
        }
    }

    /// Stable counter name (`phase_<name>`) used by the metrics layer.
    pub fn counter(self) -> &'static str {
        match self {
            Phase::Prepare => "phase_prepare",
            Phase::Vote => "phase_vote",
            Phase::Ack => "phase_ack",
            Phase::Decision => "phase_decision",
            Phase::Retransmit => "phase_retransmit",
            Phase::Membership => "phase_membership",
        }
    }

    fn from_name(s: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.name() == s)
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-phase message tally — the structured replacement for a flat
/// "messages sent" number in benchmark tables.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseCounts {
    /// Messages in [`Phase::Prepare`].
    pub prepare: u64,
    /// Messages in [`Phase::Vote`].
    pub vote: u64,
    /// Messages in [`Phase::Ack`].
    pub ack: u64,
    /// Messages in [`Phase::Decision`].
    pub decision: u64,
    /// Messages in [`Phase::Retransmit`].
    pub retransmit: u64,
    /// Messages in [`Phase::Membership`].
    pub membership: u64,
}

impl PhaseCounts {
    /// The count for one phase.
    pub fn get(&self, phase: Phase) -> u64 {
        match phase {
            Phase::Prepare => self.prepare,
            Phase::Vote => self.vote,
            Phase::Ack => self.ack,
            Phase::Decision => self.decision,
            Phase::Retransmit => self.retransmit,
            Phase::Membership => self.membership,
        }
    }

    /// Adds `delta` messages to one phase.
    pub fn add(&mut self, phase: Phase, delta: u64) {
        let slot = match phase {
            Phase::Prepare => &mut self.prepare,
            Phase::Vote => &mut self.vote,
            Phase::Ack => &mut self.ack,
            Phase::Decision => &mut self.decision,
            Phase::Retransmit => &mut self.retransmit,
            Phase::Membership => &mut self.membership,
        };
        *slot += delta;
    }

    /// Sum over all phases — equals the flat per-kind message total.
    pub fn total(&self) -> u64 {
        Phase::ALL.iter().map(|&p| self.get(p)).sum()
    }
}

// ---------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------

/// A transaction reference usable below the database layer: the
/// originating site plus its per-origin sequence number (mirrors
/// `bcastdb-db`'s `TxnId`, which this crate cannot depend on).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnRef {
    /// Originating site.
    pub origin: SiteId,
    /// Per-origin transaction number (1-based).
    pub num: u64,
}

impl fmt::Display for TxnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.origin, self.num)
    }
}

/// One structured trace record.
///
/// Message events (`Send` / `Deliver` / `Drop`) are emitted per
/// point-to-point transmission with the message's [`Phase`]; lifecycle
/// events track each transaction from submission to its termination.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A message was handed to the network.
    Send {
        /// Virtual send time.
        at: SimTime,
        /// Sender.
        from: SiteId,
        /// Receiver.
        to: SiteId,
        /// Protocol phase of the message.
        phase: Phase,
    },
    /// A message was delivered to its receiver.
    Deliver {
        /// Virtual delivery time.
        at: SimTime,
        /// Sender.
        from: SiteId,
        /// Receiver.
        to: SiteId,
        /// Protocol phase of the message.
        phase: Phase,
    },
    /// A message was lost in transit (random loss, crash, or partition).
    Drop {
        /// Virtual send time of the lost message.
        at: SimTime,
        /// Sender.
        from: SiteId,
        /// Intended receiver.
        to: SiteId,
        /// Protocol phase of the message.
        phase: Phase,
    },
    /// The batching layer flushed a batch of coalesced wire messages to
    /// the network as one transmission. Logical `Send` events were already
    /// emitted when each constituent message was enqueued; this event
    /// accounts for the wire-level transmission that carried them.
    BatchFlushed {
        /// Virtual flush time.
        at: SimTime,
        /// Sender.
        from: SiteId,
        /// Receiver.
        to: SiteId,
        /// Number of logical messages coalesced into the batch.
        msgs: u64,
        /// Wire size of the whole batch in bytes (header + payloads).
        bytes: u64,
    },
    /// A client submitted a transaction at its origin site.
    Submit {
        /// Virtual submission time.
        at: SimTime,
        /// The transaction (its origin is the submitting site).
        txn: TxnRef,
        /// True for read-only transactions.
        read_only: bool,
    },
    /// The transaction finished its origin-side read phase (all read
    /// locks held, versions observed).
    LocksAcquired {
        /// Virtual time the last read lock was granted.
        at: SimTime,
        /// The transaction.
        txn: TxnRef,
    },
    /// The origin handed the transaction's commit request — the final leg
    /// of its write dissemination — to the network. Marks the boundary
    /// between the dissemination segment and the ordering/vote wait.
    CommitReqOut {
        /// Virtual time the commit request was sent.
        at: SimTime,
        /// The transaction (emitted at its origin only).
        txn: TxnRef,
    },
    /// A site fixed its verdict on a transaction: an explicit 2PC vote,
    /// a causal NACK (`yes = false`), or a certification outcome.
    Vote {
        /// Virtual time of the verdict.
        at: SimTime,
        /// The judging site.
        site: SiteId,
        /// The judged transaction.
        txn: TxnRef,
        /// `true` = ready to commit.
        yes: bool,
    },
    /// A site fixed a transaction's outcome separately from applying it —
    /// the causal protocol's decision point, reached when its implicit
    /// acknowledgement set completes (the commit may still queue for
    /// locks). Protocols whose decision *is* the application emit only
    /// [`TraceEvent::Commit`] / [`TraceEvent::Abort`].
    Decided {
        /// Virtual time the outcome became known at this site.
        at: SimTime,
        /// The deciding site.
        site: SiteId,
        /// The decided transaction.
        txn: TxnRef,
        /// `true` = will commit.
        commit: bool,
    },
    /// A site applied the transaction's commit.
    Commit {
        /// Virtual commit time at this site.
        at: SimTime,
        /// The applying site.
        site: SiteId,
        /// The committed transaction.
        txn: TxnRef,
    },
    /// A site recorded the transaction's abort.
    Abort {
        /// Virtual abort time at this site.
        at: SimTime,
        /// The recording site.
        site: SiteId,
        /// The aborted transaction.
        txn: TxnRef,
        /// Stable abort-reason counter name (e.g. `abort_wounded`).
        reason: String,
    },
    /// The atomic broadcast delivered a commit request in the agreed
    /// total order at this site.
    TotalOrder {
        /// Virtual delivery time.
        at: SimTime,
        /// The delivering site.
        site: SiteId,
        /// The ordered transaction.
        txn: TxnRef,
        /// Position in the agreed total order.
        gseq: u64,
    },
    /// The membership service installed a new view at this site.
    ViewChange {
        /// Virtual installation time.
        at: SimTime,
        /// The installing site.
        site: SiteId,
        /// The new view's members.
        members: Vec<SiteId>,
    },
    /// A site crash was injected.
    Crash {
        /// Virtual crash time.
        at: SimTime,
        /// The crashed site.
        site: SiteId,
    },
    /// This site's failure detector started suspecting a view member
    /// (silent past the suspicion timeout). Arms the speculative
    /// fast-commit path: votes from suspects are no longer awaited.
    Suspect {
        /// Virtual time the suspicion was raised.
        at: SimTime,
        /// The suspecting site.
        site: SiteId,
        /// The suspected (silent) member.
        suspect: SiteId,
    },
    /// A site decided a transaction speculatively, from a surviving
    /// quorum's votes, without waiting for suspected members. Always
    /// followed by the matching [`TraceEvent::Decided`] /
    /// [`TraceEvent::Commit`] / [`TraceEvent::Abort`].
    FastDecide {
        /// Virtual time of the speculative decision.
        at: SimTime,
        /// The deciding site.
        site: SiteId,
        /// The decided transaction.
        txn: TxnRef,
    },
}

impl TraceEvent {
    /// The virtual time of the event.
    pub fn at(&self) -> SimTime {
        match *self {
            TraceEvent::Send { at, .. }
            | TraceEvent::Deliver { at, .. }
            | TraceEvent::Drop { at, .. }
            | TraceEvent::BatchFlushed { at, .. }
            | TraceEvent::Submit { at, .. }
            | TraceEvent::LocksAcquired { at, .. }
            | TraceEvent::CommitReqOut { at, .. }
            | TraceEvent::Vote { at, .. }
            | TraceEvent::Decided { at, .. }
            | TraceEvent::Commit { at, .. }
            | TraceEvent::Abort { at, .. }
            | TraceEvent::TotalOrder { at, .. }
            | TraceEvent::ViewChange { at, .. }
            | TraceEvent::Crash { at, .. }
            | TraceEvent::Suspect { at, .. }
            | TraceEvent::FastDecide { at, .. } => at,
        }
    }

    /// Serializes the event as one JSON object (no trailing newline).
    ///
    /// The schema is flat: every value is an unsigned integer, a boolean,
    /// a string, or an array of site indices. See `DESIGN.md` for the full
    /// field reference.
    pub fn to_jsonl(&self) -> String {
        fn msg(ev: &str, at: SimTime, from: SiteId, to: SiteId, phase: Phase) -> String {
            format!(
                "{{\"ev\":\"{ev}\",\"at\":{},\"from\":{},\"to\":{},\"phase\":\"{}\"}}",
                at.as_micros(),
                from.0,
                to.0,
                phase.name()
            )
        }
        match self {
            TraceEvent::Send {
                at,
                from,
                to,
                phase,
            } => msg("send", *at, *from, *to, *phase),
            TraceEvent::Deliver {
                at,
                from,
                to,
                phase,
            } => msg("deliver", *at, *from, *to, *phase),
            TraceEvent::Drop {
                at,
                from,
                to,
                phase,
            } => msg("drop", *at, *from, *to, *phase),
            TraceEvent::BatchFlushed {
                at,
                from,
                to,
                msgs,
                bytes,
            } => format!(
                "{{\"ev\":\"batch\",\"at\":{},\"from\":{},\"to\":{},\"msgs\":{},\"bytes\":{}}}",
                at.as_micros(),
                from.0,
                to.0,
                msgs,
                bytes
            ),
            TraceEvent::Submit { at, txn, read_only } => format!(
                "{{\"ev\":\"submit\",\"at\":{},\"origin\":{},\"num\":{},\"ro\":{}}}",
                at.as_micros(),
                txn.origin.0,
                txn.num,
                read_only
            ),
            TraceEvent::LocksAcquired { at, txn } => format!(
                "{{\"ev\":\"locks\",\"at\":{},\"origin\":{},\"num\":{}}}",
                at.as_micros(),
                txn.origin.0,
                txn.num
            ),
            TraceEvent::CommitReqOut { at, txn } => format!(
                "{{\"ev\":\"commit_req\",\"at\":{},\"origin\":{},\"num\":{}}}",
                at.as_micros(),
                txn.origin.0,
                txn.num
            ),
            TraceEvent::Decided {
                at,
                site,
                txn,
                commit,
            } => format!(
                "{{\"ev\":\"decided\",\"at\":{},\"site\":{},\"origin\":{},\"num\":{},\
                 \"commit\":{}}}",
                at.as_micros(),
                site.0,
                txn.origin.0,
                txn.num,
                commit
            ),
            TraceEvent::Vote { at, site, txn, yes } => format!(
                "{{\"ev\":\"vote\",\"at\":{},\"site\":{},\"origin\":{},\"num\":{},\"yes\":{}}}",
                at.as_micros(),
                site.0,
                txn.origin.0,
                txn.num,
                yes
            ),
            TraceEvent::Commit { at, site, txn } => format!(
                "{{\"ev\":\"commit\",\"at\":{},\"site\":{},\"origin\":{},\"num\":{}}}",
                at.as_micros(),
                site.0,
                txn.origin.0,
                txn.num
            ),
            TraceEvent::Abort {
                at,
                site,
                txn,
                reason,
            } => format!(
                "{{\"ev\":\"abort\",\"at\":{},\"site\":{},\"origin\":{},\"num\":{},\
                 \"reason\":\"{}\"}}",
                at.as_micros(),
                site.0,
                txn.origin.0,
                txn.num,
                escape(reason)
            ),
            TraceEvent::TotalOrder {
                at,
                site,
                txn,
                gseq,
            } => format!(
                "{{\"ev\":\"total_order\",\"at\":{},\"site\":{},\"origin\":{},\"num\":{},\
                 \"gseq\":{}}}",
                at.as_micros(),
                site.0,
                txn.origin.0,
                txn.num,
                gseq
            ),
            TraceEvent::ViewChange { at, site, members } => {
                let m: Vec<String> = members.iter().map(|s| s.0.to_string()).collect();
                format!(
                    "{{\"ev\":\"view\",\"at\":{},\"site\":{},\"members\":[{}]}}",
                    at.as_micros(),
                    site.0,
                    m.join(",")
                )
            }
            TraceEvent::Crash { at, site } => format!(
                "{{\"ev\":\"crash\",\"at\":{},\"site\":{}}}",
                at.as_micros(),
                site.0
            ),
            TraceEvent::Suspect { at, site, suspect } => format!(
                "{{\"ev\":\"suspect\",\"at\":{},\"site\":{},\"suspect\":{}}}",
                at.as_micros(),
                site.0,
                suspect.0
            ),
            TraceEvent::FastDecide { at, site, txn } => format!(
                "{{\"ev\":\"fast_decide\",\"at\":{},\"site\":{},\"origin\":{},\"num\":{}}}",
                at.as_micros(),
                site.0,
                txn.origin.0,
                txn.num
            ),
        }
    }

    /// Parses one JSON line produced by [`TraceEvent::to_jsonl`].
    ///
    /// # Errors
    /// Returns a description of the first syntactic or semantic problem.
    pub fn from_jsonl(line: &str) -> Result<TraceEvent, String> {
        let fields = parse_flat_object(line)?;
        let get = |k: &str| fields.get(k).ok_or_else(|| format!("missing field {k:?}"));
        let num = |k: &str| -> Result<u64, String> {
            match get(k)? {
                JsonValue::Num(n) => Ok(*n),
                v => Err(format!("field {k:?}: expected number, got {v:?}")),
            }
        };
        let boolean = |k: &str| -> Result<bool, String> {
            match get(k)? {
                JsonValue::Bool(b) => Ok(*b),
                v => Err(format!("field {k:?}: expected bool, got {v:?}")),
            }
        };
        let string = |k: &str| -> Result<String, String> {
            match get(k)? {
                JsonValue::Str(s) => Ok(s.clone()),
                v => Err(format!("field {k:?}: expected string, got {v:?}")),
            }
        };
        let at = SimTime::from_micros(num("at")?);
        let site = |k: &str| -> Result<SiteId, String> { Ok(SiteId(num(k)? as usize)) };
        let txn = || -> Result<TxnRef, String> {
            Ok(TxnRef {
                origin: site("origin")?,
                num: num("num")?,
            })
        };
        let phase = || -> Result<Phase, String> {
            let s = string("phase")?;
            Phase::from_name(&s).ok_or_else(|| format!("unknown phase {s:?}"))
        };
        match string("ev")?.as_str() {
            "send" => Ok(TraceEvent::Send {
                at,
                from: site("from")?,
                to: site("to")?,
                phase: phase()?,
            }),
            "deliver" => Ok(TraceEvent::Deliver {
                at,
                from: site("from")?,
                to: site("to")?,
                phase: phase()?,
            }),
            "drop" => Ok(TraceEvent::Drop {
                at,
                from: site("from")?,
                to: site("to")?,
                phase: phase()?,
            }),
            "batch" => Ok(TraceEvent::BatchFlushed {
                at,
                from: site("from")?,
                to: site("to")?,
                msgs: num("msgs")?,
                bytes: num("bytes")?,
            }),
            "submit" => Ok(TraceEvent::Submit {
                at,
                txn: txn()?,
                read_only: boolean("ro")?,
            }),
            "locks" => Ok(TraceEvent::LocksAcquired { at, txn: txn()? }),
            "commit_req" => Ok(TraceEvent::CommitReqOut { at, txn: txn()? }),
            "decided" => Ok(TraceEvent::Decided {
                at,
                site: site("site")?,
                txn: txn()?,
                commit: boolean("commit")?,
            }),
            "vote" => Ok(TraceEvent::Vote {
                at,
                site: site("site")?,
                txn: txn()?,
                yes: boolean("yes")?,
            }),
            "commit" => Ok(TraceEvent::Commit {
                at,
                site: site("site")?,
                txn: txn()?,
            }),
            "abort" => Ok(TraceEvent::Abort {
                at,
                site: site("site")?,
                txn: txn()?,
                reason: string("reason")?,
            }),
            "total_order" => Ok(TraceEvent::TotalOrder {
                at,
                site: site("site")?,
                txn: txn()?,
                gseq: num("gseq")?,
            }),
            "view" => {
                let members = match get("members")? {
                    JsonValue::Array(v) => v.iter().map(|&n| SiteId(n as usize)).collect(),
                    v => return Err(format!("field \"members\": expected array, got {v:?}")),
                };
                Ok(TraceEvent::ViewChange {
                    at,
                    site: site("site")?,
                    members,
                })
            }
            "crash" => Ok(TraceEvent::Crash {
                at,
                site: site("site")?,
            }),
            "suspect" => Ok(TraceEvent::Suspect {
                at,
                site: site("site")?,
                suspect: site("suspect")?,
            }),
            "fast_decide" => Ok(TraceEvent::FastDecide {
                at,
                site: site("site")?,
                txn: txn()?,
            }),
            other => Err(format!("unknown event type {other:?}")),
        }
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

// ---------------------------------------------------------------------
// Minimal flat-JSON parsing (for the JSONL round trip; the schema above
// never nests objects)
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Num(u64),
    Bool(bool),
    Str(String),
    Array(Vec<u64>),
}

fn parse_flat_object(line: &str) -> Result<BTreeMap<String, JsonValue>, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut fields = BTreeMap::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.parse_string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.parse_value()?;
            fields.insert(key, value);
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trailing data after object".into());
    }
    Ok(fields)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!("expected {:?}, got {other:?}", want as char)),
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    other => return Err(format!("unsupported escape {other:?}")),
                },
                Some(b) => out.push(b as char),
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn parse_number(&mut self) -> Result<u64, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err("expected a digit".into());
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ASCII")
            .parse()
            .map_err(|e| format!("bad number: {e}"))
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b'0'..=b'9') => Ok(JsonValue::Num(self.parse_number()?)),
            Some(b't') => self.parse_keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_keyword("false", JsonValue::Bool(false)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_number()?);
                    self.skip_ws();
                    match self.next() {
                        Some(b',') => continue,
                        Some(b']') => return Ok(JsonValue::Array(items)),
                        other => return Err(format!("expected ',' or ']', got {other:?}")),
                    }
                }
            }
            other => Err(format!("unexpected value start {other:?}")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected keyword {word:?}"))
        }
    }
}

// ---------------------------------------------------------------------
// Sinks and the tracer handle
// ---------------------------------------------------------------------

/// A destination for trace events.
pub trait TraceSink {
    /// Records one event.
    fn record(&mut self, ev: &TraceEvent);
}

/// A bounded in-memory sink keeping the most recent events.
#[derive(Debug, Default)]
pub struct RingSink {
    capacity: usize,
    buf: VecDeque<TraceEvent>,
    evicted: u64,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` events (the oldest are
    /// evicted beyond that).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            capacity,
            // Pre-size to the full ring: the buffer reaches capacity on
            // every traced run anyway, so allocate once up front instead
            // of growing through the doubling sequence.
            buf: VecDeque::with_capacity(capacity),
            evicted: 0,
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True iff no events are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// How many events were evicted because the ring was full.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The held events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Copies the held events out, oldest first.
    pub fn to_vec(&self) -> Vec<TraceEvent> {
        self.buf.iter().cloned().collect()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, ev: &TraceEvent) {
        if self.capacity == 0 {
            self.evicted += 1;
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.evicted += 1;
        }
        self.buf.push_back(ev.clone());
    }
}

/// A sink writing one JSON object per event to a [`Write`] target
/// (typically a `.jsonl` file or an in-memory buffer).
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    lines: u64,
    error: Option<std::io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Creates a sink writing to `out`.
    pub fn new(out: W) -> Self {
        JsonlSink {
            out,
            lines: 0,
            error: None,
        }
    }

    /// Number of lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// The first I/O error encountered, if any (subsequent events are
    /// dropped once a write fails).
    pub fn error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    /// Returns the first deferred write error, or the flush error.
    pub fn into_inner(mut self) -> std::io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, ev: &TraceEvent) {
        if self.error.is_some() {
            return;
        }
        match writeln!(self.out, "{}", ev.to_jsonl()) {
            Ok(()) => self.lines += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

/// A cheap, cloneable tracing handle. Disabled by default; when disabled,
/// [`Tracer::emit`] never evaluates its closure, so instrumented hot
/// paths pay only a branch on an `Option`.
#[derive(Clone, Default)]
pub struct Tracer {
    sink: Option<Rc<RefCell<dyn TraceSink>>>,
}

impl Tracer {
    /// A tracer that drops everything at zero cost.
    pub fn disabled() -> Self {
        Tracer { sink: None }
    }

    /// A tracer recording into `sink`.
    pub fn new<S: TraceSink + 'static>(sink: Rc<RefCell<S>>) -> Self {
        Tracer { sink: Some(sink) }
    }

    /// True iff a sink is attached.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Records the event produced by `f` — or does nothing (without
    /// calling `f`) when disabled.
    pub fn emit<F: FnOnce() -> TraceEvent>(&self, f: F) {
        if let Some(sink) = &self.sink {
            sink.borrow_mut().record(&f());
        }
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

// ---------------------------------------------------------------------
// Invariant checking
// ---------------------------------------------------------------------

/// A violation found by [`TraceInvariants::check`].
#[derive(Debug, Clone, PartialEq)]
pub enum TraceViolation {
    /// More deliveries than sends on a link/phase — a message was
    /// delivered that was never sent.
    UnsentDelivery {
        /// Sender of the offending link.
        from: SiteId,
        /// Receiver of the offending link.
        to: SiteId,
        /// Phase bucket in which the mismatch occurred.
        phase: Phase,
        /// Deliveries observed.
        delivered: u64,
        /// Sends observed.
        sent: u64,
    },
    /// A transaction terminated more than once at its origin.
    DoubleTermination {
        /// The offending transaction.
        txn: TxnRef,
        /// Origin-side terminations observed.
        times: u32,
    },
    /// A submitted transaction never terminated at its origin (only
    /// reported when no crash was injected).
    MissingTermination {
        /// The unterminated transaction.
        txn: TxnRef,
    },
    /// A transaction terminated at its origin without ever being
    /// submitted.
    PhantomTermination {
        /// The phantom transaction.
        txn: TxnRef,
    },
    /// A site committed totally-ordered transactions out of their agreed
    /// order.
    CommitOrderViolation {
        /// The offending site.
        site: SiteId,
        /// The transaction committed out of order.
        txn: TxnRef,
        /// Its agreed position.
        gseq: u64,
        /// The larger position already committed at that site.
        after_gseq: u64,
    },
}

impl fmt::Display for TraceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceViolation::UnsentDelivery {
                from,
                to,
                phase,
                delivered,
                sent,
            } => write!(
                f,
                "link {from}->{to} phase {phase}: {delivered} deliveries but only {sent} sends"
            ),
            TraceViolation::DoubleTermination { txn, times } => {
                write!(
                    f,
                    "transaction {txn} terminated {times} times at its origin"
                )
            }
            TraceViolation::MissingTermination { txn } => {
                write!(f, "transaction {txn} was submitted but never terminated")
            }
            TraceViolation::PhantomTermination { txn } => {
                write!(f, "transaction {txn} terminated but was never submitted")
            }
            TraceViolation::CommitOrderViolation {
                site,
                txn,
                gseq,
                after_gseq,
            } => write!(
                f,
                "site {site} committed {txn} (gseq {gseq}) after gseq {after_gseq}"
            ),
        }
    }
}

impl std::error::Error for TraceViolation {}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct TxnLife {
    submitted: bool,
    terminations: u32,
}

/// Dense per-(sender, receiver, phase) counters.
///
/// The checker bumps one counter on *every* traced `Send` and `Deliver`,
/// which makes this the hottest data structure in the tracing pipeline. A
/// `BTreeMap<(SiteId, SiteId, Phase), u64>` pays a tree walk per message;
/// this table pays one multiply and one add. The table is square in the
/// largest site id seen (sites × sites × phases `u64`s — a few KiB for any
/// realistic cluster) and grows by re-indexing when a larger id appears.
#[derive(Debug, Default)]
struct LinkPhaseCounts {
    /// Sites per side; `counts.len() == stride * stride * NPHASES`.
    stride: usize,
    counts: Vec<u64>,
}

const NPHASES: usize = Phase::ALL.len();

impl LinkPhaseCounts {
    fn slot(&self, from: SiteId, to: SiteId, phase: Phase) -> usize {
        (from.0 * self.stride + to.0) * NPHASES + phase.index()
    }

    fn bump(&mut self, from: SiteId, to: SiteId, phase: Phase) {
        let needed = from.0.max(to.0) + 1;
        if needed > self.stride {
            self.grow(needed);
        }
        let slot = self.slot(from, to, phase);
        self.counts[slot] += 1;
    }

    fn grow(&mut self, needed: usize) {
        let new_stride = needed.max(self.stride * 2).max(8);
        let mut counts = vec![0u64; new_stride * new_stride * NPHASES];
        for from in 0..self.stride {
            for to in 0..self.stride {
                for p in 0..NPHASES {
                    counts[(from * new_stride + to) * NPHASES + p] =
                        self.counts[(from * self.stride + to) * NPHASES + p];
                }
            }
        }
        self.stride = new_stride;
        self.counts = counts;
    }

    fn get(&self, from: SiteId, to: SiteId, phase: Phase) -> u64 {
        if from.0 >= self.stride || to.0 >= self.stride {
            return 0;
        }
        self.counts[self.slot(from, to, phase)]
    }

    /// Nonzero entries in `(from, to, phase)` lexicographic order — the
    /// same order the former `BTreeMap` iterated in, so the *first*
    /// violation reported by the checker is unchanged.
    fn iter_nonzero(&self) -> impl Iterator<Item = ((SiteId, SiteId, Phase), u64)> + '_ {
        (0..self.stride).flat_map(move |from| {
            (0..self.stride).flat_map(move |to| {
                Phase::ALL.iter().filter_map(move |&phase| {
                    let n = self.counts[(from * self.stride + to) * NPHASES + phase.index()];
                    (n > 0).then_some(((SiteId(from), SiteId(to), phase), n))
                })
            })
        })
    }

    /// Number of (sender, receiver, phase) triples with a nonzero count.
    #[cfg(test)]
    fn distinct(&self) -> usize {
        self.counts.iter().filter(|&&n| n > 0).count()
    }
}

/// Streaming trace-invariant checker.
///
/// Feed it events (it is itself a [`TraceSink`], so it can sit directly
/// behind a [`Tracer`]) and call [`TraceInvariants::check`] at the end.
/// It verifies:
///
/// 1. **Delivered ⊆ sent** — per (sender, receiver, phase), no more
///    deliveries than sends.
/// 2. **Exactly-once termination** — every submitted transaction commits
///    or aborts exactly once at its origin (relaxed to *at most once*
///    when a crash was injected, since a crashed origin loses its
///    in-flight transactions), and nothing terminates without having
///    been submitted.
/// 3. **Commit order respects total order** — at every site, commits of
///    totally-ordered transactions happen in increasing `gseq` order.
///
/// Memory is bounded by the number of links and transactions, not the
/// number of events, so benchmarks can run it over arbitrarily long
/// executions.
#[derive(Debug, Default)]
pub struct TraceInvariants {
    sends: LinkPhaseCounts,
    delivers: LinkPhaseCounts,
    txns: BTreeMap<TxnRef, TxnLife>,
    gseq: BTreeMap<(SiteId, TxnRef), u64>,
    last_gseq_committed: BTreeMap<SiteId, (u64, TxnRef)>,
    crashed: bool,
    events: u64,
    first_violation: Option<TraceViolation>,
}

impl TraceInvariants {
    /// Creates an empty checker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events ingested.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Ingests one event.
    pub fn ingest(&mut self, ev: &TraceEvent) {
        self.events += 1;
        match ev {
            TraceEvent::Send {
                from, to, phase, ..
            } => {
                self.sends.bump(*from, *to, *phase);
            }
            TraceEvent::Deliver {
                from, to, phase, ..
            } => {
                self.delivers.bump(*from, *to, *phase);
            }
            // Wire-level bookkeeping: the logical Send/Deliver events carry
            // the per-link accounting, so batch flushes need no tracking.
            TraceEvent::Drop { .. } | TraceEvent::BatchFlushed { .. } => {}
            TraceEvent::Submit { txn, .. } => {
                self.txns.entry(*txn).or_default().submitted = true;
            }
            TraceEvent::LocksAcquired { .. }
            | TraceEvent::CommitReqOut { .. }
            | TraceEvent::Vote { .. }
            | TraceEvent::Decided { .. } => {}
            TraceEvent::Commit { site, txn, .. } => {
                if *site == txn.origin {
                    self.txns.entry(*txn).or_default().terminations += 1;
                }
                if let Some(&g) = self.gseq.get(&(*site, *txn)) {
                    if let Some(&(last, last_txn)) = self.last_gseq_committed.get(site) {
                        // A duplicate commit of the same transaction is a
                        // termination bug, not an ordering one — leave it to
                        // the exactly-once check.
                        let out_of_order = g < last || (g == last && *txn != last_txn);
                        if out_of_order && self.first_violation.is_none() {
                            self.first_violation = Some(TraceViolation::CommitOrderViolation {
                                site: *site,
                                txn: *txn,
                                gseq: g,
                                after_gseq: last,
                            });
                        }
                    }
                    let entry = self.last_gseq_committed.entry(*site).or_insert((g, *txn));
                    if g >= entry.0 {
                        *entry = (g, *txn);
                    }
                }
            }
            TraceEvent::Abort { site, txn, .. } => {
                if *site == txn.origin {
                    self.txns.entry(*txn).or_default().terminations += 1;
                }
            }
            TraceEvent::TotalOrder {
                site, txn, gseq, ..
            } => {
                self.gseq.insert((*site, *txn), *gseq);
            }
            TraceEvent::ViewChange { .. } => {}
            TraceEvent::Crash { .. } => self.crashed = true,
            // Failure-detector bookkeeping: suspicion and speculative
            // decisions have no cross-event invariant of their own — the
            // Commit/Abort events a fast decision produces are checked
            // like any other termination.
            TraceEvent::Suspect { .. } | TraceEvent::FastDecide { .. } => {}
        }
    }

    /// Checks every invariant over the events ingested so far.
    ///
    /// # Errors
    /// Returns the first violation found.
    pub fn check(&self) -> Result<(), TraceViolation> {
        self.check_inner(false)
    }

    /// Like [`TraceInvariants::check`], but tolerates submitted
    /// transactions that never terminated. For executions that
    /// *deliberately* end with transactions in flight — e.g. measuring the
    /// causal protocol's implicit-acknowledgement starvation with
    /// keep-alives disabled, where wedged commits are the phenomenon under
    /// study. Every other invariant still applies.
    ///
    /// # Errors
    /// Returns the first violation found.
    pub fn check_allowing_pending(&self) -> Result<(), TraceViolation> {
        self.check_inner(true)
    }

    fn check_inner(&self, allow_pending: bool) -> Result<(), TraceViolation> {
        if let Some(v) = &self.first_violation {
            return Err(v.clone());
        }
        for ((from, to, phase), delivered) in self.delivers.iter_nonzero() {
            let sent = self.sends.get(from, to, phase);
            if delivered > sent {
                return Err(TraceViolation::UnsentDelivery {
                    from,
                    to,
                    phase,
                    delivered,
                    sent,
                });
            }
        }
        for (&txn, life) in &self.txns {
            if life.terminations > 1 {
                return Err(TraceViolation::DoubleTermination {
                    txn,
                    times: life.terminations,
                });
            }
            if life.terminations == 1 && !life.submitted {
                return Err(TraceViolation::PhantomTermination { txn });
            }
            if life.submitted && life.terminations == 0 && !self.crashed && !allow_pending {
                return Err(TraceViolation::MissingTermination { txn });
            }
        }
        Ok(())
    }
}

impl TraceSink for TraceInvariants {
    fn record(&mut self, ev: &TraceEvent) {
        self.ingest(ev);
    }
}

/// Checks the trace invariants over a slice of events (convenience
/// wrapper around [`TraceInvariants`]).
///
/// # Errors
/// Returns the first violation found.
pub fn check_trace(events: &[TraceEvent]) -> Result<(), TraceViolation> {
    let mut inv = TraceInvariants::new();
    for ev in events {
        inv.ingest(ev);
    }
    inv.check()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn txn(origin: usize, num: u64) -> TxnRef {
        TxnRef {
            origin: SiteId(origin),
            num,
        }
    }

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Submit {
                at: t(1),
                txn: txn(0, 1),
                read_only: false,
            },
            TraceEvent::LocksAcquired {
                at: t(2),
                txn: txn(0, 1),
            },
            TraceEvent::CommitReqOut {
                at: t(2),
                txn: txn(0, 1),
            },
            TraceEvent::Send {
                at: t(3),
                from: SiteId(0),
                to: SiteId(1),
                phase: Phase::Prepare,
            },
            TraceEvent::Deliver {
                at: t(4),
                from: SiteId(0),
                to: SiteId(1),
                phase: Phase::Prepare,
            },
            TraceEvent::Vote {
                at: t(5),
                site: SiteId(1),
                txn: txn(0, 1),
                yes: true,
            },
            TraceEvent::TotalOrder {
                at: t(6),
                site: SiteId(0),
                txn: txn(0, 1),
                gseq: 1,
            },
            TraceEvent::Decided {
                at: t(6),
                site: SiteId(1),
                txn: txn(0, 1),
                commit: true,
            },
            TraceEvent::Commit {
                at: t(7),
                site: SiteId(0),
                txn: txn(0, 1),
            },
            TraceEvent::Commit {
                at: t(7),
                site: SiteId(1),
                txn: txn(0, 1),
            },
        ]
    }

    #[test]
    fn disabled_tracer_never_evaluates_the_closure() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        tracer.emit(|| panic!("closure must not run when tracing is disabled"));
    }

    #[test]
    fn enabled_tracer_records_into_the_sink() {
        let ring = Rc::new(RefCell::new(RingSink::new(4)));
        let tracer = Tracer::new(ring.clone());
        assert!(tracer.is_enabled());
        tracer.emit(|| TraceEvent::Crash {
            at: t(9),
            site: SiteId(2),
        });
        assert_eq!(
            ring.borrow().to_vec(),
            vec![TraceEvent::Crash {
                at: t(9),
                site: SiteId(2)
            }]
        );
    }

    #[test]
    fn ring_sink_evicts_oldest() {
        let mut ring = RingSink::new(2);
        for i in 0..5 {
            ring.record(&TraceEvent::Crash {
                at: t(i),
                site: SiteId(0),
            });
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.evicted(), 3);
        let kept: Vec<u64> = ring.events().map(|e| e.at().as_micros()).collect();
        assert_eq!(kept, vec![3, 4]);
    }

    #[test]
    fn jsonl_round_trip_preserves_every_variant() {
        let mut all = sample_events();
        all.push(TraceEvent::Drop {
            at: t(8),
            from: SiteId(1),
            to: SiteId(2),
            phase: Phase::Retransmit,
        });
        all.push(TraceEvent::Abort {
            at: t(9),
            site: SiteId(0),
            txn: txn(0, 2),
            reason: "abort_wounded".into(),
        });
        all.push(TraceEvent::ViewChange {
            at: t(10),
            site: SiteId(1),
            members: vec![SiteId(0), SiteId(1)],
        });
        all.push(TraceEvent::Crash {
            at: t(11),
            site: SiteId(2),
        });
        all.push(TraceEvent::BatchFlushed {
            at: t(12),
            from: SiteId(0),
            to: SiteId(1),
            msgs: 3,
            bytes: 200,
        });
        all.push(TraceEvent::Suspect {
            at: t(13),
            site: SiteId(0),
            suspect: SiteId(2),
        });
        all.push(TraceEvent::FastDecide {
            at: t(14),
            site: SiteId(0),
            txn: txn(1, 3),
        });
        let mut sink = JsonlSink::new(Vec::new());
        for ev in &all {
            sink.record(ev);
        }
        assert_eq!(sink.lines(), all.len() as u64);
        let bytes = sink.into_inner().expect("no I/O errors on a Vec");
        let text = String::from_utf8(bytes).expect("utf8");
        let parsed: Vec<TraceEvent> = text
            .lines()
            .map(|l| TraceEvent::from_jsonl(l).expect("parse"))
            .collect();
        assert_eq!(parsed, all);
    }

    #[test]
    fn jsonl_rejects_malformed_lines() {
        assert!(TraceEvent::from_jsonl("not json").is_err());
        assert!(
            TraceEvent::from_jsonl("{\"ev\":\"send\"}").is_err(),
            "missing fields"
        );
        assert!(
            TraceEvent::from_jsonl("{\"ev\":\"warp\",\"at\":1}").is_err(),
            "unknown event type"
        );
        assert!(
            TraceEvent::from_jsonl(
                "{\"ev\":\"send\",\"at\":1,\"from\":0,\"to\":1,\"phase\":\"warp\"}"
            )
            .is_err(),
            "unknown phase"
        );
    }

    #[test]
    fn phase_counts_sum() {
        let mut pc = PhaseCounts::default();
        pc.add(Phase::Prepare, 5);
        pc.add(Phase::Vote, 2);
        pc.add(Phase::Membership, 1);
        assert_eq!(pc.get(Phase::Prepare), 5);
        assert_eq!(pc.get(Phase::Ack), 0);
        assert_eq!(pc.total(), 8);
    }

    #[test]
    fn phase_names_round_trip() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_name(p.name()), Some(p));
            assert!(p.counter().starts_with("phase_"));
        }
        assert_eq!(Phase::from_name("bogus"), None);
    }

    #[test]
    fn clean_trace_passes_the_checker() {
        check_trace(&sample_events()).expect("clean trace");
    }

    #[test]
    fn unsent_delivery_is_rejected() {
        let mut evs = sample_events();
        evs.retain(|e| !matches!(e, TraceEvent::Send { .. }));
        let err = check_trace(&evs).unwrap_err();
        assert!(
            matches!(err, TraceViolation::UnsentDelivery { .. }),
            "{err}"
        );
    }

    #[test]
    fn double_termination_is_rejected() {
        let mut evs = sample_events();
        evs.push(TraceEvent::Commit {
            at: t(8),
            site: SiteId(0),
            txn: txn(0, 1),
        });
        let err = check_trace(&evs).unwrap_err();
        assert!(
            matches!(err, TraceViolation::DoubleTermination { times: 2, .. }),
            "{err}"
        );
    }

    #[test]
    fn missing_termination_is_rejected_without_crashes() {
        let evs = vec![TraceEvent::Submit {
            at: t(1),
            txn: txn(0, 1),
            read_only: false,
        }];
        let err = check_trace(&evs).unwrap_err();
        assert!(
            matches!(err, TraceViolation::MissingTermination { .. }),
            "{err}"
        );
    }

    #[test]
    fn crash_relaxes_missing_termination() {
        let evs = vec![
            TraceEvent::Submit {
                at: t(1),
                txn: txn(0, 1),
                read_only: false,
            },
            TraceEvent::Crash {
                at: t(2),
                site: SiteId(0),
            },
        ];
        check_trace(&evs).expect("crashed origins may lose transactions");
    }

    #[test]
    fn phantom_termination_is_rejected() {
        let evs = vec![TraceEvent::Commit {
            at: t(1),
            site: SiteId(3),
            txn: txn(3, 9),
        }];
        let err = check_trace(&evs).unwrap_err();
        assert!(
            matches!(err, TraceViolation::PhantomTermination { .. }),
            "{err}"
        );
    }

    #[test]
    fn out_of_order_commit_is_rejected() {
        let evs = vec![
            TraceEvent::Submit {
                at: t(0),
                txn: txn(0, 1),
                read_only: false,
            },
            TraceEvent::Submit {
                at: t(0),
                txn: txn(1, 1),
                read_only: false,
            },
            TraceEvent::TotalOrder {
                at: t(1),
                site: SiteId(0),
                txn: txn(0, 1),
                gseq: 1,
            },
            TraceEvent::TotalOrder {
                at: t(1),
                site: SiteId(0),
                txn: txn(1, 1),
                gseq: 2,
            },
            // Site 0 commits gseq 2 before gseq 1:
            TraceEvent::Commit {
                at: t(2),
                site: SiteId(0),
                txn: txn(1, 1),
            },
            TraceEvent::Commit {
                at: t(3),
                site: SiteId(0),
                txn: txn(0, 1),
            },
            TraceEvent::Commit {
                at: t(3),
                site: SiteId(1),
                txn: txn(0, 1),
            },
            TraceEvent::Commit {
                at: t(3),
                site: SiteId(1),
                txn: txn(1, 1),
            },
        ];
        let err = check_trace(&evs).unwrap_err();
        assert!(
            matches!(
                err,
                TraceViolation::CommitOrderViolation {
                    gseq: 1,
                    after_gseq: 2,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn checker_memory_is_bounded_by_links_not_events() {
        let mut inv = TraceInvariants::new();
        for i in 0..100_000u64 {
            inv.ingest(&TraceEvent::Send {
                at: t(i),
                from: SiteId(0),
                to: SiteId(1),
                phase: Phase::Prepare,
            });
        }
        assert_eq!(inv.events(), 100_000);
        assert_eq!(inv.sends.distinct(), 1);
        inv.check().expect("sends alone violate nothing");
    }
}
