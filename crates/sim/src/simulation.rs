//! The simulation driver: owns the nodes, the event queue, and the network,
//! and runs the discrete-event loop.

use crate::event::{EventKind, EventQueue};
use crate::net::{Network, NetworkConfig, Transit};
use crate::stats::{Sample, StatsHandle};
use crate::{DetRng, SimDuration, SimTime, SiteId};

/// A deterministic state machine living at one site of the simulated system.
///
/// Nodes communicate only through [`Ctx::send`] / [`Ctx::send_all`] and
/// receive input through [`Node::on_message`] and [`Node::on_timer`]. All
/// randomness must come from [`Ctx::rng`] so runs stay reproducible.
pub trait Node {
    /// Message type exchanged between nodes.
    type Msg: Clone;
    /// Tag type for local timers.
    type Timer: Clone;

    /// Called when a message from `from` is delivered to this node.
    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Timer>,
        from: SiteId,
        msg: Self::Msg,
    );

    /// Called when a timer previously set with [`Ctx::set_timer`] fires
    /// (or one scheduled externally via [`Simulation::schedule_timer`]).
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Timer>, tag: Self::Timer);

    /// Contributes this node's gauges to a metrics sample. Called by the
    /// driver at each sampling boundary when metrics are enabled (see
    /// [`Simulation::enable_stats`]); the default contributes nothing.
    /// Implementations must only *read* state — sampling must never change
    /// the simulation's behavior.
    fn sample_stats(&self, sample: &mut Sample) {
        let _ = sample;
    }
}

/// Execution context handed to a node while it processes an event.
///
/// Provides the current virtual time, the node's identity, deterministic
/// randomness, and the only legal ways to produce output: sending messages
/// and setting timers.
pub struct Ctx<'a, M, T> {
    now: SimTime,
    me: SiteId,
    n_sites: usize,
    net: &'a mut Network,
    rng: &'a mut DetRng,
    queue: &'a mut EventQueue<M, T>,
    default_msg_size: usize,
}

impl<'a, M: Clone, T: Clone> Ctx<'a, M, T> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The identity of the node processing this event.
    pub fn me(&self) -> SiteId {
        self.me
    }

    /// Total number of sites in the system.
    pub fn n_sites(&self) -> usize {
        self.n_sites
    }

    /// All site identifiers, in index order.
    pub fn all_sites(&self) -> impl Iterator<Item = SiteId> {
        (0..self.n_sites).map(SiteId)
    }

    /// Deterministic random source for this run.
    pub fn rng(&mut self) -> &mut DetRng {
        self.rng
    }

    /// Sends `msg` to `to` over the simulated network (may be lost or
    /// delayed according to the network configuration). Sending to self is
    /// allowed and goes through the network like any other message.
    /// Returns whether the network accepted the message, so callers can
    /// trace losses; most ignore the result.
    pub fn send(&mut self, to: SiteId, msg: M) -> SendOutcome {
        self.send_sized(to, msg, self.default_msg_size)
    }

    /// Like [`Ctx::send`] but records `size` bytes against traffic counters.
    pub fn send_sized(&mut self, to: SiteId, msg: M, size: usize) -> SendOutcome {
        match self.net.transit(self.now, self.me, to, size, self.rng) {
            Transit::DeliverAt(t) | Transit::Delayed(t) => {
                self.queue.schedule(
                    t,
                    EventKind::Deliver {
                        from: self.me,
                        to,
                        msg,
                    },
                );
                SendOutcome::Accepted
            }
            Transit::Duplicated { first, second } => {
                // A duplicated packet is *two* deliveries of one logical
                // message: the receiver's duplicate suppression (not the
                // network) is what keeps semantics exactly-once.
                self.queue.schedule(
                    first,
                    EventKind::Deliver {
                        from: self.me,
                        to,
                        msg: msg.clone(),
                    },
                );
                self.queue.schedule(
                    second,
                    EventKind::Deliver {
                        from: self.me,
                        to,
                        msg,
                    },
                );
                SendOutcome::Duplicated
            }
            Transit::Dropped => SendOutcome::Dropped,
        }
    }

    /// Sends `msg` to every site *including* self. This is the raw
    /// best-effort "network multicast" the broadcast primitives are built
    /// on; it provides no guarantees beyond per-link FIFO.
    pub fn send_all(&mut self, msg: M) {
        for i in 0..self.n_sites {
            self.send(SiteId(i), msg.clone());
        }
    }

    /// Sends `msg` to every site except self.
    pub fn send_others(&mut self, msg: M) {
        for i in 0..self.n_sites {
            if SiteId(i) != self.me {
                self.send(SiteId(i), msg.clone());
            }
        }
    }

    /// Schedules `tag` to fire at this node after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, tag: T) {
        self.queue
            .schedule(self.now + delay, EventKind::Timer { at: self.me, tag });
    }
}

/// What the network did with a message handed to [`Ctx::send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// The message was accepted and will be delivered.
    Accepted,
    /// The message was lost (random loss, crash, or partition).
    Dropped,
    /// A fault-plan `Duplicate` clause fired: the message was accepted
    /// and will be delivered *twice*.
    Duplicated,
}

/// Why a run loop returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained before the deadline.
    Quiesced {
        /// Virtual time of the last processed event.
        at: SimTime,
    },
    /// The deadline was reached with events still pending.
    DeadlineReached,
}

/// A complete simulated system: `n` nodes, a network, and an event queue.
pub struct Simulation<N: Node> {
    nodes: Vec<N>,
    net: Network,
    rng: DetRng,
    queue: EventQueue<N::Msg, N::Timer>,
    now: SimTime,
    events_processed: u64,
    default_msg_size: usize,
    stats: StatsHandle,
    /// Next virtual-time sampling boundary (meaningful only when `stats`
    /// is enabled).
    next_sample_at: SimTime,
}

impl<N: Node> Simulation<N> {
    /// Creates a simulation over the given nodes (site `i` is `nodes[i]`).
    pub fn new(seed: u64, config: NetworkConfig, nodes: Vec<N>) -> Self {
        // Pre-size the event queue for a broadcast-heavy workload: every
        // step of an N-site cluster can fan out O(N) deliveries, and
        // in-flight timers add a few more per site. 64·N slots absorb the
        // steady state of every experiment sweep without a single heap
        // reallocation; capacity never affects ordering.
        let cap = nodes.len().saturating_mul(64).max(256);
        Simulation {
            nodes,
            net: Network::new(config),
            rng: DetRng::new(seed),
            queue: EventQueue::with_capacity(cap),
            now: SimTime::ZERO,
            events_processed: 0,
            default_msg_size: 64,
            stats: StatsHandle::disabled(),
            next_sample_at: SimTime::ZERO,
        }
    }

    /// Attaches a metrics registry and starts the virtual-time sampler.
    ///
    /// The driver takes one sample per registry interval, always *between*
    /// events: before processing the first event at or past a boundary (so
    /// the sample sees the state the boundary was crossed with), and up to
    /// the deadline when a run ends with [`RunOutcome::DeadlineReached`].
    /// Sampling never schedules events, so enabling metrics cannot change
    /// event sequence numbers, delivery order, or any simulation output —
    /// only the sample stream itself. Boundaries are derived from the
    /// attach-time clock: the first sample lands one interval after `now`.
    ///
    /// Samples are only taken inside [`Simulation::run_until`] (and
    /// [`Simulation::run_to_quiescence`]); manual [`Simulation::step`]
    /// loops bypass the sampler.
    ///
    /// # Panics
    /// Panics if `stats` is disabled.
    pub fn enable_stats(&mut self, stats: StatsHandle) {
        let interval = stats
            .interval()
            .expect("enable_stats needs an attached registry");
        self.next_sample_at = self.now + interval;
        self.stats = stats;
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of sites.
    pub fn n_sites(&self) -> usize {
        self.nodes.len()
    }

    /// Immutable access to a node's state (for assertions and metrics).
    ///
    /// # Panics
    /// Panics if `site` is out of range.
    pub fn node(&self, site: SiteId) -> &N {
        &self.nodes[site.0]
    }

    /// Mutable access to a node's state (for test setup).
    ///
    /// # Panics
    /// Panics if `site` is out of range.
    pub fn node_mut(&mut self, site: SiteId) -> &mut N {
        &mut self.nodes[site.0]
    }

    /// Iterates over `(SiteId, &N)` pairs.
    pub fn nodes(&self) -> impl Iterator<Item = (SiteId, &N)> {
        self.nodes.iter().enumerate().map(|(i, n)| (SiteId(i), n))
    }

    /// The network substrate (for failure injection and traffic counters).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Mutable network access (crash/recover/partition).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Injects a message from outside the system (e.g. a client request);
    /// it is delivered through the network like any other message.
    pub fn send_external(&mut self, from: SiteId, to: SiteId, msg: N::Msg) {
        match self
            .net
            .transit(self.now, from, to, self.default_msg_size, &mut self.rng)
        {
            Transit::DeliverAt(t) | Transit::Delayed(t) => {
                self.queue.schedule(t, EventKind::Deliver { from, to, msg });
            }
            Transit::Duplicated { first, second } => {
                self.queue.schedule(
                    first,
                    EventKind::Deliver {
                        from,
                        to,
                        msg: msg.clone(),
                    },
                );
                self.queue
                    .schedule(second, EventKind::Deliver { from, to, msg });
            }
            Transit::Dropped => {}
        }
    }

    /// Schedules a timer to fire at `site` at absolute time `at`. Used by
    /// workload drivers to inject transaction arrivals.
    pub fn schedule_timer(&mut self, at: SimTime, site: SiteId, tag: N::Timer) {
        self.queue.schedule(at, EventKind::Timer { at: site, tag });
    }

    /// Processes the next event if one exists, returning `false` when the
    /// queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.now, "time went backwards");
        self.now = ev.time;
        self.events_processed += 1;
        match ev.kind {
            EventKind::Deliver { from, to, msg } => {
                // A site that crashed after the message was scheduled
                // receives nothing.
                if self.net.is_crashed(to) {
                    return true;
                }
                let mut ctx = Ctx {
                    now: self.now,
                    me: to,
                    n_sites: self.nodes.len(),
                    net: &mut self.net,
                    rng: &mut self.rng,
                    queue: &mut self.queue,
                    default_msg_size: self.default_msg_size,
                };
                self.nodes[to.0].on_message(&mut ctx, from, msg);
            }
            EventKind::Timer { at, tag } => {
                if self.net.is_crashed(at) {
                    return true;
                }
                let mut ctx = Ctx {
                    now: self.now,
                    me: at,
                    n_sites: self.nodes.len(),
                    net: &mut self.net,
                    rng: &mut self.rng,
                    queue: &mut self.queue,
                    default_msg_size: self.default_msg_size,
                };
                self.nodes[at.0].on_timer(&mut ctx, tag);
            }
        }
        true
    }

    /// Runs until the queue drains or virtual time would exceed `deadline`.
    ///
    /// On [`RunOutcome::DeadlineReached`], virtual time is advanced to the
    /// deadline itself, so repeated calls with increasing deadlines make
    /// progress even through quiet periods.
    pub fn run_until(&mut self, deadline: SimTime) -> RunOutcome {
        if self.stats.is_enabled() {
            return self.run_until_sampled(deadline);
        }
        loop {
            match self.queue.peek_time() {
                None => return RunOutcome::Quiesced { at: self.now },
                Some(t) if t > deadline => {
                    self.now = self.now.max(deadline);
                    return RunOutcome::DeadlineReached;
                }
                Some(_) => {
                    self.step();
                }
            }
        }
    }

    /// The metrics-enabled run loop: identical event processing to
    /// [`Simulation::run_until`], plus a sample at every elapsed boundary.
    /// Kept separate so the metrics-off hot loop pays nothing.
    fn run_until_sampled(&mut self, deadline: SimTime) -> RunOutcome {
        let interval = self
            .stats
            .interval()
            .expect("sampled loop needs a registry");
        loop {
            match self.queue.peek_time() {
                None => return RunOutcome::Quiesced { at: self.now },
                Some(t) if t > deadline => {
                    while self.next_sample_at <= deadline {
                        self.take_sample(interval);
                    }
                    self.now = self.now.max(deadline);
                    return RunOutcome::DeadlineReached;
                }
                Some(t) => {
                    while self.next_sample_at <= t {
                        self.take_sample(interval);
                    }
                    self.step();
                }
            }
        }
    }

    /// Takes the sample for the boundary at `next_sample_at` and advances
    /// the boundary by one interval.
    fn take_sample(&mut self, interval: SimDuration) {
        let at = self.next_sample_at;
        let mut sample = Sample::new(at);
        sample.set("queue_depth", self.queue.len() as u64);
        sample.set("events_processed", self.events_processed);
        let ws = self.queue.wheel_stats();
        sample.set("wheel.sched_near", ws.sched_near);
        sample.set("wheel.sched_far", ws.sched_far);
        sample.set("wheel.sched_past", ws.sched_past);
        sample.set("wheel.far_len", ws.far_len as u64);
        sample.set("wheel.past_len", ws.past_len as u64);
        self.net.sample_into(at, &mut sample);
        for node in &self.nodes {
            node.sample_stats(&mut sample);
        }
        self.stats.commit_sample(sample);
        self.next_sample_at = at + interval;
    }

    /// The queue's timing-wheel placement statistics (see
    /// [`crate::WheelStats`]).
    pub fn wheel_stats(&self) -> crate::WheelStats {
        self.queue.wheel_stats()
    }

    /// Runs until the queue drains, but at most `budget` of virtual time
    /// past the current instant (a safety valve against livelock bugs).
    pub fn run_to_quiescence(&mut self, budget: SimDuration) -> RunOutcome {
        let deadline = self.now + budget;
        self.run_until(deadline)
    }

    /// Consumes the simulation and returns its nodes.
    pub fn into_nodes(self) -> Vec<N> {
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Node that counts pings and replies with pongs a fixed number of times.
    struct PingPong {
        pings: usize,
        pongs: usize,
        replies_left: usize,
    }

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Ping,
        Pong,
    }

    impl Node for PingPong {
        type Msg = Msg;
        type Timer = u32;
        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg, u32>, from: SiteId, msg: Msg) {
            match msg {
                Msg::Ping => {
                    self.pings += 1;
                    if self.replies_left > 0 {
                        self.replies_left -= 1;
                        ctx.send(from, Msg::Pong);
                    }
                }
                Msg::Pong => self.pongs += 1,
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg, u32>, tag: u32) {
            // On timer `k`, ping everyone else `k` times.
            for _ in 0..tag {
                ctx.send_others(Msg::Ping);
            }
        }
    }

    fn mk(n: usize) -> Simulation<PingPong> {
        let nodes = (0..n)
            .map(|_| PingPong {
                pings: 0,
                pongs: 0,
                replies_left: 100,
            })
            .collect();
        Simulation::new(
            7,
            NetworkConfig::deterministic(SimDuration::from_millis(1)),
            nodes,
        )
    }

    #[test]
    fn ping_generates_pong() {
        let mut sim = mk(2);
        sim.send_external(SiteId(0), SiteId(1), Msg::Ping);
        let out = sim.run_to_quiescence(SimDuration::from_secs(1));
        assert!(matches!(out, RunOutcome::Quiesced { .. }));
        assert_eq!(sim.node(SiteId(1)).pings, 1);
        assert_eq!(sim.node(SiteId(0)).pongs, 1);
    }

    #[test]
    fn timers_fire_at_scheduled_site() {
        let mut sim = mk(3);
        sim.schedule_timer(SimTime::from_micros(10), SiteId(2), 1);
        sim.run_to_quiescence(SimDuration::from_secs(1));
        // Site 2 pinged sites 0 and 1; both replied.
        assert_eq!(sim.node(SiteId(0)).pings, 1);
        assert_eq!(sim.node(SiteId(1)).pings, 1);
        assert_eq!(sim.node(SiteId(2)).pongs, 2);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut sim = mk(4);
            for i in 0..4 {
                sim.schedule_timer(SimTime::from_micros(i as u64), SiteId(i), 3);
            }
            sim.run_to_quiescence(SimDuration::from_secs(1));
            (
                sim.events_processed(),
                sim.now(),
                sim.network().messages_sent(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn crashed_node_stops_receiving() {
        let mut sim = mk(2);
        sim.network_mut().crash(SiteId(1));
        sim.send_external(SiteId(0), SiteId(1), Msg::Ping);
        sim.run_to_quiescence(SimDuration::from_secs(1));
        assert_eq!(sim.node(SiteId(1)).pings, 0);
    }

    #[test]
    fn crash_after_scheduling_suppresses_delivery() {
        let mut sim = mk(2);
        sim.send_external(SiteId(0), SiteId(1), Msg::Ping);
        // Crash before the event fires (delivery takes 1ms).
        sim.network_mut().crash(SiteId(1));
        sim.run_to_quiescence(SimDuration::from_secs(1));
        assert_eq!(sim.node(SiteId(1)).pings, 0);
    }

    #[test]
    fn deadline_stops_the_loop() {
        let mut sim = mk(2);
        sim.schedule_timer(SimTime::from_micros(5_000_000), SiteId(0), 1);
        let out = sim.run_until(SimTime::from_micros(100));
        assert_eq!(out, RunOutcome::DeadlineReached);
        assert_eq!(sim.events_processed(), 0);
    }

    #[test]
    fn sampler_does_not_perturb_the_run() {
        use crate::stats::StatsRegistry;
        use std::cell::RefCell;
        use std::rc::Rc;

        let run = |sampled: bool| {
            let mut sim = mk(4);
            let reg = Rc::new(RefCell::new(StatsRegistry::new(SimDuration::from_millis(
                1,
            ))));
            if sampled {
                sim.enable_stats(StatsHandle::new(reg.clone()));
            }
            for i in 0..4 {
                sim.schedule_timer(SimTime::from_micros(i as u64), SiteId(i), 3);
            }
            sim.run_to_quiescence(SimDuration::from_secs(1));
            let samples = reg.borrow().samples().to_vec();
            (
                sim.events_processed(),
                sim.now(),
                sim.network().messages_sent(),
                samples,
            )
        };
        let (ev_off, now_off, sent_off, samples_off) = run(false);
        let (ev_on, now_on, sent_on, samples_on) = run(true);
        // Sampling must be an observer: identical run, plus samples.
        assert_eq!((ev_off, now_off, sent_off), (ev_on, now_on, sent_on));
        assert!(samples_off.is_empty());
        assert!(!samples_on.is_empty(), "sampled run produced no samples");
        // Boundaries are exact multiples of the interval.
        for (i, s) in samples_on.iter().enumerate() {
            assert_eq!(s.at.as_micros(), (i as u64 + 1) * 1_000);
            assert!(s.values.contains_key("queue_depth"));
            assert!(s.values.contains_key("net.msgs_sent"));
        }
        // And the stream itself is deterministic.
        let (_, _, _, samples_again) = run(true);
        assert_eq!(samples_on, samples_again);
    }

    #[test]
    fn deadline_flushes_samples_up_to_the_deadline() {
        use crate::stats::StatsRegistry;
        use std::cell::RefCell;
        use std::rc::Rc;

        let mut sim = mk(2);
        let reg = Rc::new(RefCell::new(StatsRegistry::new(SimDuration::from_millis(
            1,
        ))));
        sim.enable_stats(StatsHandle::new(reg));
        // One far-future event keeps the queue non-empty past the deadline.
        sim.schedule_timer(SimTime::from_micros(10_000_000), SiteId(0), 1);
        let out = sim.run_until(SimTime::from_micros(5_500));
        assert_eq!(out, RunOutcome::DeadlineReached);
        let samples = sim.stats.samples();
        let ats: Vec<u64> = samples.iter().map(|s| s.at.as_micros()).collect();
        assert_eq!(ats, vec![1_000, 2_000, 3_000, 4_000, 5_000]);
    }

    #[test]
    fn virtual_time_advances_monotonically() {
        let mut sim = mk(3);
        for i in 0..3 {
            sim.schedule_timer(SimTime::from_micros(i as u64 * 7), SiteId(i), 2);
        }
        let mut last = SimTime::ZERO;
        while sim.step() {
            assert!(sim.now() >= last);
            last = sim.now();
        }
    }
}
