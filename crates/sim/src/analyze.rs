//! Trace analysis over reconstructed [`TxnSpan`]s: per-segment latency
//! summaries, critical-path reports, and ASCII renderings used by the
//! `bcast-trace` CLI and the `t3_latency_breakdown` experiment.

use crate::spans::{Segment, SegmentBreakdown, TxnSpan};
use crate::trace::LatencyStats;
use crate::SimDuration;
use std::fmt::Write as _;

/// Aggregated per-segment latency statistics over a set of committed
/// transactions. `end_to_end` and the per-segment stats draw from the same
/// spans, so `sum(segment means) == end_to_end mean` up to integer
/// truncation.
#[derive(Debug, Clone, Default)]
pub struct SegmentSummary {
    /// End-to-end commit latencies.
    pub end_to_end: LatencyStats,
    per_segment: [LatencyStats; 5],
    clamped_spans: usize,
    clamp_events: u64,
}

impl SegmentSummary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one committed span's breakdown in.
    pub fn add(&mut self, breakdown: &SegmentBreakdown) {
        self.end_to_end.record(breakdown.total());
        for (i, seg) in Segment::ALL.iter().enumerate() {
            self.per_segment[i].record(breakdown.get(*seg));
        }
        if breakdown.clamped > 0 {
            self.clamped_spans += 1;
            self.clamp_events += u64::from(breakdown.clamped);
        }
    }

    /// Stats for one segment.
    pub fn segment(&self, seg: Segment) -> &LatencyStats {
        let idx = Segment::ALL.iter().position(|&s| s == seg).expect("in ALL");
        &self.per_segment[idx]
    }

    /// Number of committed transactions folded in.
    pub fn count(&self) -> usize {
        self.end_to_end.count()
    }

    /// Spans whose raw milestones were non-monotonic (at least one
    /// milestone was clamped to make the decomposition telescope).
    pub fn clamped_spans(&self) -> usize {
        self.clamped_spans
    }

    /// Total clamped milestones across all folded-in spans.
    pub fn clamp_events(&self) -> u64 {
        self.clamp_events
    }
}

/// Summarizes the committed update transactions among `spans`.
/// Read-only, aborted, and still-pending spans are skipped.
pub fn summarize<'a, I>(spans: I) -> SegmentSummary
where
    I: IntoIterator<Item = &'a TxnSpan>,
{
    let mut out = SegmentSummary::new();
    for span in spans {
        if span.read_only {
            continue;
        }
        if let Some(b) = span.decompose() {
            out.add(&b);
        }
    }
    out
}

/// One entry in a critical-path report: a slow commit and where its time
/// went.
#[derive(Debug, Clone)]
pub struct CriticalPath<'a> {
    /// The slow transaction.
    pub span: &'a TxnSpan,
    /// Its end-to-end latency.
    pub latency: SimDuration,
    /// Its segment decomposition.
    pub breakdown: SegmentBreakdown,
    /// The segment that dominates the latency.
    pub dominant: Segment,
}

/// The `k` slowest committed update transactions, slowest first.
pub fn slowest<'a, I>(spans: I, k: usize) -> Vec<CriticalPath<'a>>
where
    I: IntoIterator<Item = &'a TxnSpan>,
{
    let mut paths: Vec<CriticalPath<'a>> = spans
        .into_iter()
        .filter(|s| !s.read_only)
        .filter_map(|span| {
            let breakdown = span.decompose()?;
            Some(CriticalPath {
                span,
                latency: breakdown.total(),
                breakdown,
                dominant: breakdown.dominant(),
            })
        })
        .collect();
    paths.sort_by(|a, b| {
        b.latency
            .cmp(&a.latency)
            .then_with(|| a.span.txn.cmp(&b.span.txn))
    });
    paths.truncate(k);
    paths
}

/// Renders a per-segment summary as an aligned text table.
pub fn render_summary(summary: &SegmentSummary) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "committed update txns: {}", summary.count());
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>10} {:>10} {:>10} {:>7}",
        "segment", "mean", "p50", "p95", "p99", "share"
    );
    let total_mean = summary.end_to_end.mean().as_micros();
    for seg in Segment::ALL {
        let st = summary.segment(seg);
        let share = if total_mean == 0 {
            0.0
        } else {
            100.0 * st.mean().as_micros() as f64 / total_mean as f64
        };
        let _ = writeln!(
            out,
            "{:<12} {:>10} {:>10} {:>10} {:>10} {:>6.1}%",
            seg.name(),
            st.mean().to_string(),
            st.p50().to_string(),
            st.p95().to_string(),
            st.p99().to_string(),
            share
        );
    }
    let e = &summary.end_to_end;
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>10} {:>10} {:>10} {:>6.1}%",
        "end_to_end",
        e.mean().to_string(),
        e.p50().to_string(),
        e.p95().to_string(),
        e.p99().to_string(),
        100.0
    );
    if summary.clamped_spans() > 0 {
        let _ = writeln!(
            out,
            "non-monotonic spans: {} ({} clamped milestones)",
            summary.clamped_spans(),
            summary.clamp_events()
        );
    }
    out
}

/// Renders one transaction's timeline: a proportional segment bar,
/// milestone table, and per-site commit times with skew.
pub fn render_timeline(span: &TxnSpan) -> String {
    const BAR: usize = 60;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "txn {}:{} ({})",
        span.txn.origin.0,
        span.txn.num,
        if span.read_only {
            "read-only"
        } else {
            "update"
        }
    );
    match (span.submit, span.end()) {
        (Some(submit), Some(end)) => {
            let _ = writeln!(
                out,
                "  submitted {submit}, ended {end}, latency {}",
                end.saturating_since(submit)
            );
        }
        (Some(submit), None) => {
            let _ = writeln!(out, "  submitted {submit}, still pending");
        }
        _ => {
            let _ = writeln!(out, "  (submission not traced)");
        }
    }
    if let Some(b) = span.decompose() {
        let total = b.total().as_micros();
        if total > 0 {
            let mut bar = String::new();
            let mut used = 0usize;
            for (i, seg) in Segment::ALL.iter().enumerate() {
                let w = if i + 1 == Segment::ALL.len() {
                    BAR - used
                } else {
                    (b.get(*seg).as_micros() as usize * BAR) / total as usize
                };
                used += w;
                for _ in 0..w {
                    bar.push(seg.letter());
                }
            }
            let _ = writeln!(out, "  [{bar}]");
        }
        for seg in Segment::ALL {
            let d = b.get(seg);
            if !d.is_zero() {
                let _ = writeln!(out, "    {:<12} {}", seg.name(), d);
            }
        }
    } else if let Some(crate::spans::SpanOutcome::Aborted { reason, .. }) = &span.outcome {
        let _ = writeln!(out, "  aborted: {reason}");
    }
    let _ = writeln!(out, "  milestones:");
    if let Some(t) = span.submit {
        let _ = writeln!(out, "    submit          {t}");
    }
    if let Some(t) = span.locks {
        let _ = writeln!(out, "    locks acquired  {t}");
    }
    if let Some(t) = span.commit_req_out {
        let _ = writeln!(out, "    commit req out  {t}");
    }
    for (site, (t, gseq)) in &span.total_order {
        let _ = writeln!(out, "    total order     {t}  site {} gseq {gseq}", site.0);
    }
    for v in &span.votes {
        let _ = writeln!(
            out,
            "    vote {:<11} {}  site {}",
            if v.yes { "yes" } else { "no" },
            v.at,
            v.site.0
        );
    }
    for (site, (t, commit)) in &span.decided {
        let _ = writeln!(
            out,
            "    decided {:<8} {t}  site {}",
            if *commit { "commit" } else { "abort" },
            site.0
        );
    }
    if !span.commits.is_empty() {
        let _ = writeln!(out, "  commits per site:");
        for (site, t) in &span.commits {
            let origin = if *site == span.txn.origin {
                " (origin)"
            } else {
                ""
            };
            let _ = writeln!(out, "    site {:<3} {t}{origin}", site.0);
        }
        if let Some(skew) = span.commit_skew() {
            let _ = writeln!(out, "  commit skew: {skew}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spans::SpanBuilder;
    use crate::telemetry::{TraceEvent, TxnRef};
    use crate::{SimTime, SiteId};

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn committed_span(origin: usize, num: u64, submit: u64, end: u64) -> SpanBuilder {
        let tx = TxnRef {
            origin: SiteId(origin),
            num,
        };
        let mut b = SpanBuilder::new();
        b.ingest(&TraceEvent::Submit {
            at: t(submit),
            txn: tx,
            read_only: false,
        });
        b.ingest(&TraceEvent::LocksAcquired {
            at: t(submit + 10),
            txn: tx,
        });
        b.ingest(&TraceEvent::Commit {
            at: t(end),
            site: SiteId(origin),
            txn: tx,
        });
        b
    }

    #[test]
    fn summarize_sums_to_end_to_end() {
        let mut spans = Vec::new();
        for (num, (s, e)) in [(0u64, 100u64), (50, 400), (75, 300)].iter().enumerate() {
            let b = committed_span(0, num as u64 + 1, *s, *e);
            spans.extend(b.into_spans().into_values());
        }
        let summary = summarize(spans.iter());
        assert_eq!(summary.count(), 3);
        let seg_mean_sum: u64 = Segment::ALL
            .iter()
            .map(|&s| summary.segment(s).mean().as_micros())
            .sum();
        // Means of exact per-span sums: equal up to truncation, and here
        // exactly because samples divide evenly per segment.
        assert!(seg_mean_sum <= summary.end_to_end.mean().as_micros());
        assert!(summary.end_to_end.mean().as_micros() - seg_mean_sum < 5);
    }

    #[test]
    fn slowest_orders_and_truncates() {
        let mut spans = Vec::new();
        for (num, (s, e)) in [(1u64, (0u64, 100u64)), (2, (0, 900)), (3, (0, 500))] {
            spans.extend(committed_span(0, num, s, e).into_spans().into_values());
        }
        let top = slowest(spans.iter(), 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].span.txn.num, 2);
        assert_eq!(top[0].latency.as_micros(), 900);
        assert_eq!(top[1].span.txn.num, 3);
    }

    #[test]
    fn renderings_contain_key_facts() {
        let b = committed_span(0, 1, 0, 200);
        let span = b.get(TxnRef {
            origin: SiteId(0),
            num: 1,
        });
        let span = span.unwrap();
        let text = render_timeline(span);
        assert!(text.contains("txn 0:1"));
        assert!(text.contains("locks acquired"));
        assert!(text.contains("commit skew"));

        let summary = summarize(std::iter::once(span));
        let table = render_summary(&summary);
        assert!(table.contains("end_to_end"));
        assert!(table.contains("read"));
        assert!(table.contains("100.0%"));
    }
}
