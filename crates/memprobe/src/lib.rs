//! # bcastdb-memprobe
//!
//! A counting [`GlobalAlloc`] wrapper around the system allocator, used by
//! the experiment harness to audit heap traffic on the simulator hot path.
//!
//! Wall-clock time on a shared machine is noisy; **allocation counts in a
//! deterministic simulator are exact**. The same experiment binary performs
//! the same number of heap allocations on every run, so `allocs/event` is a
//! reproducible cost metric: it ratchets monotonically downward as hot-path
//! allocations are eliminated, and any regression is visible as an exact
//! integer diff rather than a wall-clock blip. `PERFORMANCE.md` tracks this
//! number alongside `events_per_sec`.
//!
//! The counter is a single relaxed atomic increment per allocation —
//! negligible next to the allocation itself — so the probe stays enabled in
//! every build of the harness.
//!
//! Attribution of counts to *sites* is done offline with delta
//! measurements (run a workload slice, diff [`allocation_count`] around
//! it), not by capturing backtraces in the allocator: a
//! `std::backtrace::Backtrace` capture from inside [`GlobalAlloc::alloc`]
//! deadlocks — the capture machinery takes locks and allocates while the
//! allocator call is still in flight. See the alloc-audit test in
//! `crates/bench/tests/` for the working pattern.
//!
//! # Example
//!
//! ```
//! use bcastdb_memprobe::CountingAllocator;
//!
//! // In a binary: #[global_allocator] static A: CountingAllocator = CountingAllocator;
//! let before = bcastdb_memprobe::allocation_count();
//! let v = vec![1u8, 2, 3];
//! drop(v);
//! // Counts only move forward (deallocations are not subtracted).
//! assert!(bcastdb_memprobe::allocation_count() >= before);
//! ```

#![deny(missing_docs)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// A pass-through allocator that counts allocations and allocated bytes.
///
/// Install it in a binary with
/// `#[global_allocator] static A: CountingAllocator = CountingAllocator;`
/// and read the totals via [`allocation_count`] / [`allocated_bytes`].
pub struct CountingAllocator;

// SAFETY: pure pass-through to `System`; the counters never influence the
// returned pointers or layouts.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Total heap allocations (including reallocations) since process start.
///
/// Returns 0 unless the program installed [`CountingAllocator`] as its
/// global allocator.
pub fn allocation_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Total bytes requested from the allocator since process start.
///
/// Returns 0 unless the program installed [`CountingAllocator`] as its
/// global allocator.
pub fn allocated_bytes() -> u64 {
    BYTES.load(Ordering::Relaxed)
}
