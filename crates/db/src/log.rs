//! Redo logging and crash recovery.
//!
//! Each site appends a record when a transaction's write set is applied.
//! After a crash, replaying the log onto a fresh store reproduces the
//! committed state — the durability half of strict 2PL's "commit applies
//! all writes atomically".

use crate::storage::Store;
use crate::types::{TxnId, WriteOp};

/// A checkpoint: a materialized store plus the log position it covers.
/// Recovery = load the checkpoint, replay the log suffix.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Committed state at the checkpoint.
    pub store: Store,
    /// Number of log records folded into the checkpoint.
    pub covered: usize,
}

/// One entry in a site's redo log.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum LogRecord {
    /// `txn` committed with this write set (empty for read-only commits,
    /// which are logged only if the caller chooses to).
    Commit {
        /// The committed transaction.
        txn: TxnId,
        /// Its full write set.
        writes: Vec<WriteOp>,
    },
    /// `txn` aborted (recorded for audit; replay ignores it).
    Abort {
        /// The aborted transaction.
        txn: TxnId,
    },
}

/// An append-only redo log.
#[derive(Debug, Clone, Default)]
pub struct RedoLog {
    records: Vec<LogRecord>,
}

impl RedoLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a commit record.
    pub fn log_commit(&mut self, txn: TxnId, writes: Vec<WriteOp>) {
        self.records.push(LogRecord::Commit { txn, writes });
    }

    /// Appends an abort record.
    pub fn log_abort(&mut self, txn: TxnId) {
        self.records.push(LogRecord::Abort { txn });
    }

    /// All records, oldest first.
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True iff nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Truncates the log to its first `n` records — simulates losing the
    /// tail in a crash before it reached stable storage.
    pub fn truncate(&mut self, n: usize) {
        self.records.truncate(n);
    }

    /// Replays every commit record onto a fresh store, reproducing the
    /// committed state at the time of the crash.
    pub fn replay(&self) -> Store {
        let mut store = Store::new();
        for rec in &self.records {
            if let LogRecord::Commit { txn, writes } = rec {
                store.apply(*txn, writes);
            }
        }
        store
    }

    /// Takes a checkpoint: materializes the current committed state and
    /// records how much of the log it covers. Pair with
    /// [`RedoLog::truncate_before`] to bound log growth.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            store: self.replay(),
            covered: self.records.len(),
        }
    }

    /// Drops the `n` oldest records (they are covered by a checkpoint).
    /// Replaying the remainder on top of that checkpoint reproduces the
    /// full state.
    pub fn truncate_before(&mut self, n: usize) {
        self.records.drain(..n.min(self.records.len()));
    }

    /// Recovers the full committed state from a checkpoint plus this log's
    /// remaining records (which must start where the checkpoint ends).
    pub fn recover_from(&self, cp: &Checkpoint) -> Store {
        let mut store = cp.store.clone();
        for rec in &self.records {
            if let LogRecord::Commit { txn, writes } = rec {
                store.apply(*txn, writes);
            }
        }
        store
    }

    /// Ids of all committed transactions, in commit order.
    pub fn committed(&self) -> Vec<TxnId> {
        self.records
            .iter()
            .filter_map(|r| match r {
                LogRecord::Commit { txn, .. } => Some(*txn),
                LogRecord::Abort { .. } => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Key;
    use bcastdb_sim::SiteId;

    fn t(n: u64) -> TxnId {
        TxnId::new(SiteId(0), n)
    }

    fn w(key: &str, v: i64) -> WriteOp {
        WriteOp {
            key: Key::new(key),
            value: v,
        }
    }

    #[test]
    fn replay_reproduces_committed_state() {
        let mut log = RedoLog::new();
        let mut live = Store::new();

        log.log_commit(t(1), vec![w("x", 1), w("y", 2)]);
        live.apply(t(1), &[w("x", 1), w("y", 2)]);
        log.log_commit(t(2), vec![w("x", 10)]);
        live.apply(t(2), &[w("x", 10)]);
        log.log_abort(t(3));

        let recovered = log.replay();
        assert!(recovered.converged_with(&live));
        assert_eq!(recovered.value(&Key::new("x")), 10);
    }

    #[test]
    fn aborts_do_not_affect_replay() {
        let mut log = RedoLog::new();
        log.log_abort(t(1));
        log.log_abort(t(2));
        let s = log.replay();
        assert!(s.is_empty());
        assert_eq!(log.committed(), vec![]);
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn truncation_loses_the_tail_only() {
        let mut log = RedoLog::new();
        log.log_commit(t(1), vec![w("x", 1)]);
        log.log_commit(t(2), vec![w("x", 2)]);
        log.truncate(1);
        let s = log.replay();
        assert_eq!(s.value(&Key::new("x")), 1);
        assert_eq!(log.committed(), vec![t(1)]);
    }

    #[test]
    fn committed_preserves_commit_order() {
        let mut log = RedoLog::new();
        log.log_commit(t(5), vec![]);
        log.log_abort(t(6));
        log.log_commit(t(2), vec![]);
        assert_eq!(log.committed(), vec![t(5), t(2)]);
    }

    #[test]
    fn checkpoint_plus_suffix_equals_full_replay() {
        let mut log = RedoLog::new();
        log.log_commit(t(1), vec![w("x", 1)]);
        log.log_commit(t(2), vec![w("y", 2)]);
        let full_before = log.replay();
        let cp = log.checkpoint();
        assert_eq!(cp.covered, 2);
        assert!(cp.store.converged_with(&full_before));
        // More activity after the checkpoint; then truncate the prefix.
        log.log_commit(t(3), vec![w("x", 3)]);
        log.log_abort(t(4));
        let full = log.replay();
        log.truncate_before(cp.covered);
        assert_eq!(log.len(), 2, "only the suffix remains");
        let recovered = log.recover_from(&cp);
        assert!(
            recovered.converged_with(&full),
            "checkpoint + suffix = full state"
        );
        assert_eq!(recovered.value(&Key::new("x")), 3);
    }

    #[test]
    fn truncate_before_clamps_to_length() {
        let mut log = RedoLog::new();
        log.log_commit(t(1), vec![w("x", 1)]);
        log.truncate_before(10);
        assert!(log.is_empty());
    }

    #[test]
    fn checkpoint_of_empty_log_is_empty() {
        let log = RedoLog::new();
        let cp = log.checkpoint();
        assert_eq!(cp.covered, 0);
        assert!(cp.store.is_empty());
    }

    #[test]
    fn empty_log_replays_to_empty_store() {
        let log = RedoLog::new();
        assert!(log.is_empty());
        assert!(log.replay().is_empty());
    }
}
