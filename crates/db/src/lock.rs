//! Strict two-phase locking.
//!
//! The paper assumes "concurrency control is locally enforced by strict
//! two-phase locking at all database sites" — transactions hold all locks
//! until termination. This lock manager supports shared/exclusive modes,
//! lock upgrade, FIFO wait queues, and exposes the waits-for graph so the
//! point-to-point baseline can detect the distributed deadlocks that the
//! broadcast protocols prevent by construction.
//!
//! Conflict *policy* is deliberately left to the caller: [`LockManager::request`]
//! reports a conflict without queueing, so each replication protocol can
//! apply its own rule (wound-wait in the reliable protocol, deterministic
//! priorities in the causal protocol, certification in the atomic one).

use crate::graph::DiGraph;
use crate::types::{Key, TxnId};
use std::collections::BTreeMap;

/// Lock modes of strict 2PL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LockMode {
    /// Shared (read) lock; compatible with other shared locks.
    Shared,
    /// Exclusive (write) lock; compatible with nothing.
    Exclusive,
}

impl LockMode {
    /// True iff a holder in `self` mode permits another lock in `other`.
    pub fn compatible(self, other: LockMode) -> bool {
        matches!((self, other), (LockMode::Shared, LockMode::Shared))
    }
}

/// Result of a lock request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestOutcome {
    /// The lock was granted (or was already held in a sufficient mode).
    Granted,
    /// The lock conflicts with the listed holders; nothing was queued.
    Conflict {
        /// Transactions currently holding an incompatible lock.
        holders: Vec<TxnId>,
    },
}

/// A lock newly granted from a wait queue after a release.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrantedFromQueue {
    /// The transaction whose queued request was granted.
    pub txn: TxnId,
    /// The locked object.
    pub key: Key,
    /// The granted mode.
    pub mode: LockMode,
}

/// A queued request: priority rank (smaller = older = granted first),
/// requester, and mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Waiter {
    rank: u64,
    txn: TxnId,
    mode: LockMode,
}

#[derive(Debug, Default)]
struct Entry {
    holders: Vec<(TxnId, LockMode)>,
    /// Sorted by `(rank, txn)`: the oldest waiter is granted first. This is
    /// what lets the priority-based deadlock-prevention schemes compose with
    /// queueing — a younger transaction can never be promoted over an older
    /// waiter and then block it.
    queue: Vec<Waiter>,
}

impl Entry {
    fn held_by(&self, txn: TxnId) -> Option<LockMode> {
        self.holders
            .iter()
            .find(|(t, _)| *t == txn)
            .map(|&(_, m)| m)
    }

    /// Holders that are incompatible with `txn` acquiring `mode`.
    fn blockers(&self, txn: TxnId, mode: LockMode) -> Vec<TxnId> {
        self.holders
            .iter()
            .filter(|(t, m)| *t != txn && !m.compatible(mode))
            .map(|&(t, _)| t)
            .collect()
    }

    fn is_unused(&self) -> bool {
        self.holders.is_empty() && self.queue.is_empty()
    }
}

/// A per-site lock table.
#[derive(Debug, Default)]
pub struct LockManager {
    table: BTreeMap<Key, Entry>,
}

impl LockManager {
    /// Creates an empty lock table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests `key` in `mode` for `txn` without queueing on conflict.
    ///
    /// Grants are immediate when the request is compatible with all current
    /// holders (re-entrant requests and shared→exclusive upgrades by a sole
    /// holder included). On conflict the blocking holders are returned and
    /// the table is left unchanged — the caller decides whether to
    /// [`enqueue`](Self::enqueue), wound a holder, or abort.
    pub fn request(&mut self, txn: TxnId, key: &Key, mode: LockMode) -> RequestOutcome {
        let entry = self.table.entry(key.clone()).or_default();
        match entry.held_by(txn) {
            Some(LockMode::Exclusive) => return RequestOutcome::Granted,
            Some(LockMode::Shared) if mode == LockMode::Shared => return RequestOutcome::Granted,
            Some(LockMode::Shared) => {
                // Upgrade: allowed iff sole holder.
                let blockers = entry.blockers(txn, mode);
                if blockers.is_empty() {
                    for h in entry.holders.iter_mut() {
                        if h.0 == txn {
                            h.1 = LockMode::Exclusive;
                        }
                    }
                    return RequestOutcome::Granted;
                }
                return RequestOutcome::Conflict { holders: blockers };
            }
            None => {}
        }
        let blockers = entry.blockers(txn, mode);
        if blockers.is_empty() && entry.queue.is_empty() {
            entry.holders.push((txn, mode));
            RequestOutcome::Granted
        } else if blockers.is_empty() {
            // Compatible with holders but others are queued ahead: treat as
            // a conflict with the queued transactions to preserve FIFO
            // fairness (prevents writer starvation by a read stream).
            RequestOutcome::Conflict {
                holders: entry.queue.iter().map(|w| w.txn).collect(),
            }
        } else {
            RequestOutcome::Conflict { holders: blockers }
        }
    }

    /// Adds `txn` to the wait queue for `key` with priority `rank`
    /// (smaller = older = served first; ties broken by transaction id).
    ///
    /// The caller should only enqueue after a [`RequestOutcome::Conflict`];
    /// duplicate queue entries for the same `(txn, mode)` are ignored.
    pub fn enqueue(&mut self, txn: TxnId, key: &Key, mode: LockMode, rank: u64) {
        let entry = self.table.entry(key.clone()).or_default();
        if entry.queue.iter().any(|w| w.txn == txn && w.mode == mode) {
            return;
        }
        let w = Waiter { rank, txn, mode };
        let pos = entry
            .queue
            .partition_point(|q| (q.rank, q.txn) <= (rank, txn));
        entry.queue.insert(pos, w);
    }

    /// True iff `txn` currently holds `key` in a mode covering `mode`.
    pub fn holds(&self, txn: TxnId, key: &Key, mode: LockMode) -> bool {
        self.table
            .get(key)
            .and_then(|e| e.held_by(txn))
            .is_some_and(|held| held == LockMode::Exclusive || held == mode)
    }

    /// Current holders of `key` with their modes.
    pub fn holders(&self, key: &Key) -> Vec<(TxnId, LockMode)> {
        self.table
            .get(key)
            .map(|e| e.holders.clone())
            .unwrap_or_default()
    }

    /// Transactions queued on `key`, highest priority (oldest) first.
    pub fn queued(&self, key: &Key) -> Vec<(TxnId, LockMode)> {
        self.table
            .get(key)
            .map(|e| e.queue.iter().map(|w| (w.txn, w.mode)).collect())
            .unwrap_or_default()
    }

    /// Releases every lock and queued request of `txn` (commit or abort —
    /// strict 2PL releases everything at termination), granting queued
    /// requests that become compatible. Grants are returned so the caller
    /// can resume the waiting transactions.
    pub fn release_all(&mut self, txn: TxnId) -> Vec<GrantedFromQueue> {
        let mut granted = Vec::new();
        let mut empty_keys = Vec::new();
        for (key, entry) in self.table.iter_mut() {
            entry.holders.retain(|(t, _)| *t != txn);
            entry.queue.retain(|w| w.txn != txn);
            Self::drain_queue(key, entry, &mut granted);
            if entry.is_unused() {
                empty_keys.push(key.clone());
            }
        }
        for k in empty_keys {
            self.table.remove(&k);
        }
        granted
    }

    /// Grants compatible queued requests on `key` in priority order (a
    /// batch of shared requests is granted together, an exclusive request
    /// only alone).
    fn drain_queue(key: &Key, entry: &mut Entry, granted: &mut Vec<GrantedFromQueue>) {
        while let Some(&Waiter { txn, mode, .. }) = entry.queue.first() {
            // Upgrade-in-queue: the txn may already hold Shared.
            let others_block = entry
                .holders
                .iter()
                .any(|(t, m)| *t != txn && !m.compatible(mode));
            if others_block {
                break;
            }
            entry.queue.remove(0);
            match entry.held_by(txn) {
                Some(LockMode::Shared) if mode == LockMode::Exclusive => {
                    for h in entry.holders.iter_mut() {
                        if h.0 == txn {
                            h.1 = LockMode::Exclusive;
                        }
                    }
                }
                Some(_) => {}
                None => entry.holders.push((txn, mode)),
            }
            granted.push(GrantedFromQueue {
                txn,
                key: key.clone(),
                mode,
            });
            if mode == LockMode::Exclusive {
                break;
            }
        }
    }

    /// All keys on which `txn` holds a lock.
    pub fn locks_of(&self, txn: TxnId) -> Vec<(Key, LockMode)> {
        let mut v: Vec<(Key, LockMode)> = self
            .table
            .iter()
            .filter_map(|(k, e)| e.held_by(txn).map(|m| (k.clone(), m)))
            .collect();
        v.sort();
        v
    }

    /// Builds the waits-for graph: an edge `A → B` means queued transaction
    /// `A` waits for holder (or earlier-queued) transaction `B`.
    pub fn waits_for(&self) -> DiGraph<TxnId> {
        let mut g = DiGraph::new();
        for entry in self.table.values() {
            for (qi, w) in entry.queue.iter().enumerate() {
                for &(holder, hmode) in &entry.holders {
                    if holder != w.txn && !hmode.compatible(w.mode) {
                        g.add_edge(w.txn, holder);
                    }
                }
                for ahead in entry.queue.iter().take(qi) {
                    if ahead.txn != w.txn
                        && !(ahead.mode.compatible(w.mode) && w.mode.compatible(ahead.mode))
                    {
                        g.add_edge(w.txn, ahead.txn);
                    }
                }
            }
        }
        g
    }

    /// Detects a deadlock cycle among waiting transactions, if any.
    pub fn find_deadlock(&self) -> Option<Vec<TxnId>> {
        self.waits_for().find_cycle()
    }

    /// Number of keys with active lock state (for tests and metrics).
    pub fn active_keys(&self) -> usize {
        self.table.len()
    }

    /// Total queued (waiting) lock requests across all keys — a direct
    /// gauge of lock contention for the metrics subsystem.
    pub fn waiting_count(&self) -> usize {
        self.table.values().map(|e| e.queue.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcastdb_sim::SiteId;

    fn t(n: u64) -> TxnId {
        TxnId::new(SiteId(0), n)
    }

    fn k(s: &str) -> Key {
        Key::new(s)
    }

    #[test]
    fn shared_locks_coexist() {
        let mut lm = LockManager::new();
        assert_eq!(
            lm.request(t(1), &k("x"), LockMode::Shared),
            RequestOutcome::Granted
        );
        assert_eq!(
            lm.request(t(2), &k("x"), LockMode::Shared),
            RequestOutcome::Granted
        );
        assert!(lm.holds(t(1), &k("x"), LockMode::Shared));
        assert!(lm.holds(t(2), &k("x"), LockMode::Shared));
    }

    #[test]
    fn exclusive_conflicts_with_shared() {
        let mut lm = LockManager::new();
        lm.request(t(1), &k("x"), LockMode::Shared);
        match lm.request(t(2), &k("x"), LockMode::Exclusive) {
            RequestOutcome::Conflict { holders } => assert_eq!(holders, vec![t(1)]),
            other => panic!("expected conflict, got {other:?}"),
        }
        assert!(!lm.holds(t(2), &k("x"), LockMode::Exclusive));
    }

    #[test]
    fn exclusive_conflicts_with_exclusive() {
        let mut lm = LockManager::new();
        lm.request(t(1), &k("x"), LockMode::Exclusive);
        assert!(matches!(
            lm.request(t(2), &k("x"), LockMode::Exclusive),
            RequestOutcome::Conflict { .. }
        ));
    }

    #[test]
    fn reentrant_requests_are_granted() {
        let mut lm = LockManager::new();
        lm.request(t(1), &k("x"), LockMode::Exclusive);
        assert_eq!(
            lm.request(t(1), &k("x"), LockMode::Exclusive),
            RequestOutcome::Granted
        );
        assert_eq!(
            lm.request(t(1), &k("x"), LockMode::Shared),
            RequestOutcome::Granted,
            "exclusive covers shared"
        );
    }

    #[test]
    fn sole_holder_upgrades_shared_to_exclusive() {
        let mut lm = LockManager::new();
        lm.request(t(1), &k("x"), LockMode::Shared);
        assert_eq!(
            lm.request(t(1), &k("x"), LockMode::Exclusive),
            RequestOutcome::Granted
        );
        assert!(lm.holds(t(1), &k("x"), LockMode::Exclusive));
    }

    #[test]
    fn upgrade_blocked_by_other_reader() {
        let mut lm = LockManager::new();
        lm.request(t(1), &k("x"), LockMode::Shared);
        lm.request(t(2), &k("x"), LockMode::Shared);
        match lm.request(t(1), &k("x"), LockMode::Exclusive) {
            RequestOutcome::Conflict { holders } => assert_eq!(holders, vec![t(2)]),
            other => panic!("expected conflict, got {other:?}"),
        }
        // Still holds its shared lock.
        assert!(lm.holds(t(1), &k("x"), LockMode::Shared));
    }

    #[test]
    fn release_grants_queued_exclusive() {
        let mut lm = LockManager::new();
        lm.request(t(1), &k("x"), LockMode::Exclusive);
        lm.enqueue(t(2), &k("x"), LockMode::Exclusive, 2);
        let granted = lm.release_all(t(1));
        assert_eq!(
            granted,
            vec![GrantedFromQueue {
                txn: t(2),
                key: k("x"),
                mode: LockMode::Exclusive
            }]
        );
        assert!(lm.holds(t(2), &k("x"), LockMode::Exclusive));
    }

    #[test]
    fn release_grants_shared_batch_but_stops_at_exclusive() {
        let mut lm = LockManager::new();
        lm.request(t(1), &k("x"), LockMode::Exclusive);
        lm.enqueue(t(2), &k("x"), LockMode::Shared, 2);
        lm.enqueue(t(3), &k("x"), LockMode::Shared, 3);
        lm.enqueue(t(4), &k("x"), LockMode::Exclusive, 4);
        let granted = lm.release_all(t(1));
        let txns: Vec<TxnId> = granted.iter().map(|g| g.txn).collect();
        assert_eq!(txns, vec![t(2), t(3)], "shared batch granted, X waits");
        assert_eq!(lm.queued(&k("x")), vec![(t(4), LockMode::Exclusive)]);
    }

    #[test]
    fn fifo_fairness_blocks_shared_behind_queued_exclusive() {
        let mut lm = LockManager::new();
        lm.request(t(1), &k("x"), LockMode::Shared);
        lm.enqueue(t(2), &k("x"), LockMode::Exclusive, 2);
        // A new shared request must not jump the queued writer.
        match lm.request(t(3), &k("x"), LockMode::Shared) {
            RequestOutcome::Conflict { holders } => assert_eq!(holders, vec![t(2)]),
            other => panic!("expected conflict, got {other:?}"),
        }
    }

    #[test]
    fn queued_upgrade_applies_on_release() {
        let mut lm = LockManager::new();
        lm.request(t(1), &k("x"), LockMode::Shared);
        lm.request(t(2), &k("x"), LockMode::Shared);
        // t1 wants to upgrade but t2 blocks; t1 queues the upgrade.
        lm.enqueue(t(1), &k("x"), LockMode::Exclusive, 1);
        let granted = lm.release_all(t(2));
        assert_eq!(granted.len(), 1);
        assert_eq!(granted[0].txn, t(1));
        assert!(lm.holds(t(1), &k("x"), LockMode::Exclusive));
    }

    #[test]
    fn release_removes_queued_requests_of_aborted_txn() {
        let mut lm = LockManager::new();
        lm.request(t(1), &k("x"), LockMode::Exclusive);
        lm.enqueue(t(2), &k("x"), LockMode::Exclusive, 2);
        lm.release_all(t(2)); // t2 aborts while queued
        let granted = lm.release_all(t(1));
        assert!(granted.is_empty());
        assert_eq!(lm.active_keys(), 0, "table fully cleaned");
    }

    #[test]
    fn locks_of_lists_all_keys() {
        let mut lm = LockManager::new();
        lm.request(t(1), &k("a"), LockMode::Shared);
        lm.request(t(1), &k("b"), LockMode::Exclusive);
        lm.request(t(2), &k("c"), LockMode::Shared);
        let locks = lm.locks_of(t(1));
        assert_eq!(
            locks,
            vec![(k("a"), LockMode::Shared), (k("b"), LockMode::Exclusive)]
        );
    }

    #[test]
    fn waits_for_edges_point_at_blockers() {
        let mut lm = LockManager::new();
        lm.request(t(1), &k("x"), LockMode::Exclusive);
        lm.enqueue(t(2), &k("x"), LockMode::Exclusive, 2);
        let g = lm.waits_for();
        assert!(g.has_edge(&t(2), &t(1)));
        assert!(!g.has_edge(&t(1), &t(2)));
        assert!(lm.find_deadlock().is_none());
    }

    #[test]
    fn classic_two_txn_deadlock_is_detected() {
        let mut lm = LockManager::new();
        lm.request(t(1), &k("x"), LockMode::Exclusive);
        lm.request(t(2), &k("y"), LockMode::Exclusive);
        lm.enqueue(t(1), &k("y"), LockMode::Exclusive, 1);
        lm.enqueue(t(2), &k("x"), LockMode::Exclusive, 2);
        let cycle = lm.find_deadlock().expect("deadlock exists");
        assert_eq!(cycle.len(), 2);
        assert!(cycle.contains(&t(1)) && cycle.contains(&t(2)));
    }

    #[test]
    fn read_write_deadlock_through_upgrade() {
        let mut lm = LockManager::new();
        // Both read x, both try to upgrade: each waits for the other.
        lm.request(t(1), &k("x"), LockMode::Shared);
        lm.request(t(2), &k("x"), LockMode::Shared);
        lm.enqueue(t(1), &k("x"), LockMode::Exclusive, 1);
        lm.enqueue(t(2), &k("x"), LockMode::Exclusive, 2);
        let cycle = lm.find_deadlock().expect("upgrade deadlock");
        assert_eq!(cycle.len(), 2);
    }

    #[test]
    fn queue_edge_between_waiting_writers() {
        let mut lm = LockManager::new();
        lm.request(t(1), &k("x"), LockMode::Exclusive);
        lm.enqueue(t(2), &k("x"), LockMode::Exclusive, 2);
        lm.enqueue(t(3), &k("x"), LockMode::Exclusive, 3);
        let g = lm.waits_for();
        assert!(g.has_edge(&t(3), &t(2)), "later waiter waits on earlier");
    }

    #[test]
    fn duplicate_enqueue_is_ignored() {
        let mut lm = LockManager::new();
        lm.request(t(1), &k("x"), LockMode::Exclusive);
        lm.enqueue(t(2), &k("x"), LockMode::Exclusive, 2);
        lm.enqueue(t(2), &k("x"), LockMode::Exclusive, 2);
        assert_eq!(lm.queued(&k("x")).len(), 1);
    }

    #[test]
    fn strict_2pl_scenario_end_to_end() {
        // T1 reads a, writes b; T2 reads b, must wait for T1's X on b.
        let mut lm = LockManager::new();
        assert_eq!(
            lm.request(t(1), &k("a"), LockMode::Shared),
            RequestOutcome::Granted
        );
        assert_eq!(
            lm.request(t(1), &k("b"), LockMode::Exclusive),
            RequestOutcome::Granted
        );
        assert!(matches!(
            lm.request(t(2), &k("b"), LockMode::Shared),
            RequestOutcome::Conflict { .. }
        ));
        lm.enqueue(t(2), &k("b"), LockMode::Shared, 2);
        // T1 commits: everything released, T2 resumes.
        let granted = lm.release_all(t(1));
        assert_eq!(granted.len(), 1);
        assert_eq!(granted[0].txn, t(2));
        assert!(lm.holds(t(2), &k("b"), LockMode::Shared));
        assert!(lm.locks_of(t(1)).is_empty());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use bcastdb_sim::SiteId;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Request(u64, u8, bool),      // txn, key, exclusive?
        Enqueue(u64, u8, bool, u64), // txn, key, exclusive?, rank
        Release(u64),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u64..8, 0u8..4, any::<bool>()).prop_map(|(t, k, x)| Op::Request(t, k, x)),
            (0u64..8, 0u8..4, any::<bool>(), 0u64..100)
                .prop_map(|(t, k, x, r)| Op::Enqueue(t, k, x, r)),
            (0u64..8).prop_map(Op::Release),
        ]
    }

    fn tid(t: u64) -> TxnId {
        TxnId::new(SiteId(0), t)
    }

    fn key(k: u8) -> Key {
        Key::new(format!("k{k}"))
    }

    fn mode(x: bool) -> LockMode {
        if x {
            LockMode::Exclusive
        } else {
            LockMode::Shared
        }
    }

    /// Invariant: the holders of any key are mutually compatible — either
    /// one exclusive holder or any number of shared holders.
    fn holders_compatible(lm: &LockManager, keys: u8) -> bool {
        (0..keys).all(|k| {
            let hs = lm.holders(&key(k));
            hs.len() <= 1 || hs.iter().all(|&(_, m)| m == LockMode::Shared)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

        /// After any operation sequence: holders stay compatible, released
        /// transactions hold nothing, and queue grants never violate
        /// compatibility.
        #[test]
        fn lock_table_invariants_hold(ops in proptest::collection::vec(op_strategy(), 0..120)) {
            let mut lm = LockManager::new();
            let mut released: Vec<u64> = Vec::new();
            for op in &ops {
                match *op {
                    Op::Request(t, k, x) => {
                        let _ = lm.request(tid(t), &key(k), mode(x));
                        released.retain(|&r| r != t);
                    }
                    Op::Enqueue(t, k, x, r) => {
                        lm.enqueue(tid(t), &key(k), mode(x), r);
                        released.retain(|&rr| rr != t);
                    }
                    Op::Release(t) => {
                        let granted = lm.release_all(tid(t));
                        // Whatever was granted from queues must now be held.
                        for g in &granted {
                            prop_assert!(lm.holds(g.txn, &g.key, g.mode));
                        }
                        released.push(t);
                    }
                }
                prop_assert!(holders_compatible(&lm, 4));
            }
            for &t in &released {
                prop_assert!(lm.locks_of(tid(t)).is_empty(),
                    "released transaction {t} still holds locks");
            }
        }

        /// Releasing every transaction empties the table completely.
        #[test]
        fn full_release_drains_table(ops in proptest::collection::vec(op_strategy(), 0..120)) {
            let mut lm = LockManager::new();
            for op in &ops {
                match *op {
                    Op::Request(t, k, x) => { let _ = lm.request(tid(t), &key(k), mode(x)); }
                    Op::Enqueue(t, k, x, r) => lm.enqueue(tid(t), &key(k), mode(x), r),
                    Op::Release(t) => { lm.release_all(tid(t)); }
                }
            }
            for t in 0..8 {
                lm.release_all(tid(t));
            }
            prop_assert_eq!(lm.active_keys(), 0);
        }

        /// Queue grants respect rank order among exclusive waiters.
        #[test]
        fn exclusive_grants_follow_rank(ranks in proptest::collection::vec(0u64..1000, 2..10)) {
            let mut lm = LockManager::new();
            let k = key(0);
            lm.request(tid(100), &k, LockMode::Exclusive);
            for (i, &r) in ranks.iter().enumerate() {
                lm.enqueue(tid(i as u64), &k, LockMode::Exclusive, r);
            }
            let mut expected: Vec<(u64, u64)> = ranks.iter().enumerate()
                .map(|(i, &r)| (r, i as u64)).collect();
            expected.sort();
            let mut got = Vec::new();
            let mut current = tid(100);
            loop {
                let granted = lm.release_all(current);
                match granted.first() {
                    Some(g) => { got.push(g.txn.num); current = g.txn; }
                    None => break,
                }
            }
            let want: Vec<u64> = expected.iter().map(|&(_, i)| i).collect();
            prop_assert_eq!(got, want);
        }
    }
}
