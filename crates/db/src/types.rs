//! Core database types: keys, values, transaction identity and
//! specifications.

use bcastdb_sim::SiteId;
use std::fmt;
use std::sync::Arc;

/// The name of a database object.
///
/// Cheap to clone (reference-counted), hashable, orderable. The paper's
/// model is a set of named objects fully replicated at every site.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key(Arc<str>);

impl Key {
    /// Creates a key from anything string-like.
    pub fn new(s: impl AsRef<str>) -> Self {
        Key(Arc::from(s.as_ref()))
    }

    /// The key's textual form.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Key {
    fn from(s: &str) -> Self {
        Key::new(s)
    }
}

impl From<String> for Key {
    fn from(s: String) -> Self {
        Key::new(s)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl serde::Serialize for Key {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(&self.0)
    }
}

impl<'de> serde::Deserialize<'de> for Key {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let s = String::deserialize(d)?;
        Ok(Key::new(s))
    }
}

/// The value of a database object. Integer values keep experiment
/// workloads compact while still exposing lost-update anomalies (values
/// are compared across replicas by the serializability checker).
pub type Value = i64;

/// Globally unique transaction identifier: the site where the transaction
/// originated plus a per-site counter.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct TxnId {
    /// Site that initiated the transaction.
    pub origin: SiteId,
    /// Per-origin transaction number, starting at 1.
    pub num: u64,
}

impl TxnId {
    /// Creates a transaction id.
    pub fn new(origin: SiteId, num: u64) -> Self {
        TxnId { origin, num }
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}.{}", self.origin.0, self.num)
    }
}

/// One write operation: assign `value` to `key`.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WriteOp {
    /// Target object.
    pub key: Key,
    /// New value.
    pub value: Value,
}

/// A transaction specification in the paper's model: all reads precede all
/// writes ("a transaction performs all its read operations before
/// initiating any write operations").
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TxnSpec {
    reads: Vec<Key>,
    writes: Vec<WriteOp>,
}

impl TxnSpec {
    /// Creates an empty transaction.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a read of `key` (builder style).
    pub fn read(mut self, key: impl Into<Key>) -> Self {
        self.reads.push(key.into());
        self
    }

    /// Adds a write of `value` to `key` (builder style).
    pub fn write(mut self, key: impl Into<Key>, value: Value) -> Self {
        self.writes.push(WriteOp {
            key: key.into(),
            value,
        });
        self
    }

    /// The read set, in program order.
    pub fn reads(&self) -> &[Key] {
        &self.reads
    }

    /// The write set, in program order.
    pub fn writes(&self) -> &[WriteOp] {
        &self.writes
    }

    /// True iff the transaction performs no writes. Read-only transactions
    /// get special treatment in the paper: they execute entirely locally
    /// and never broadcast a commit decision.
    pub fn is_read_only(&self) -> bool {
        self.writes.is_empty()
    }

    /// True iff the transaction touches no objects at all.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty()
    }

    /// True iff this transaction's write set conflicts (shares a key) with
    /// another write set.
    pub fn ww_conflicts_with(&self, other: &TxnSpec) -> bool {
        self.writes
            .iter()
            .any(|w| other.writes.iter().any(|o| o.key == w.key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_round_trips_and_displays() {
        let k = Key::new("account-7");
        assert_eq!(k.as_str(), "account-7");
        assert_eq!(k.to_string(), "account-7");
        assert_eq!(Key::from("x"), Key::new("x"));
        assert_eq!(Key::from(String::from("x")), Key::new("x"));
    }

    #[test]
    fn key_clone_is_cheap_and_equal() {
        let k = Key::new("k");
        let k2 = k.clone();
        assert_eq!(k, k2);
    }

    #[test]
    fn txn_id_display_and_order() {
        let a = TxnId::new(SiteId(0), 3);
        let b = TxnId::new(SiteId(1), 1);
        assert_eq!(a.to_string(), "T0.3");
        assert!(a < b, "ordered by origin first");
    }

    #[test]
    fn spec_builder_preserves_order() {
        let t = TxnSpec::new()
            .read("a")
            .read("b")
            .write("c", 1)
            .write("a", 2);
        assert_eq!(t.reads().len(), 2);
        assert_eq!(t.writes().len(), 2);
        assert_eq!(t.reads()[0], Key::new("a"));
        assert_eq!(t.writes()[1].key, Key::new("a"));
        assert!(!t.is_read_only());
        assert!(!t.is_empty());
    }

    #[test]
    fn read_only_detection() {
        assert!(TxnSpec::new().read("x").is_read_only());
        assert!(TxnSpec::new().is_read_only());
        assert!(TxnSpec::new().is_empty());
        assert!(!TxnSpec::new().write("x", 1).is_read_only());
    }

    #[test]
    fn ww_conflict_detection() {
        let t1 = TxnSpec::new().write("x", 1).write("y", 2);
        let t2 = TxnSpec::new().write("y", 9);
        let t3 = TxnSpec::new().write("z", 9).read("x");
        assert!(t1.ww_conflicts_with(&t2));
        assert!(!t1.ww_conflicts_with(&t3), "read-write overlap is not ww");
    }

    #[test]
    fn key_serde_round_trip() {
        // serde is exercised via the serde_test-style manual check: the
        // Serialize impl writes the plain string.
        #[derive(serde::Serialize)]
        struct Probe {
            k: Key,
        }
        // Serialization goes through serde's data model; a JSON-style
        // serializer is unavailable offline, so exercise via bincode-less
        // round trip through the Deserialize impl using serde_value is not
        // possible either. Equality of freshly built keys suffices here.
        let p = Probe { k: Key::new("x") };
        assert_eq!(p.k.as_str(), "x");
    }
}
