//! A minimal directed graph with cycle detection.
//!
//! Backs both the waits-for-graph deadlock detector and the one-copy
//! serialization-graph test (the paper proves correctness via acyclicity of
//! the latter; we check it on every simulated history).

use std::collections::{HashMap, HashSet};
use std::hash::Hash;

/// A directed graph over nodes of type `N`.
#[derive(Debug, Clone)]
pub struct DiGraph<N> {
    edges: HashMap<N, HashSet<N>>,
}

impl<N: Eq + Hash + Clone + Ord> Default for DiGraph<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N: Eq + Hash + Clone + Ord> DiGraph<N> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DiGraph {
            edges: HashMap::new(),
        }
    }

    /// Ensures `n` exists as a node.
    pub fn add_node(&mut self, n: N) {
        self.edges.entry(n).or_default();
    }

    /// Adds the edge `from → to` (self-loops allowed; they count as
    /// cycles). Both endpoints are created if absent.
    pub fn add_edge(&mut self, from: N, to: N) {
        self.edges.entry(to.clone()).or_default();
        self.edges.entry(from).or_default().insert(to);
    }

    /// True iff the edge exists.
    pub fn has_edge(&self, from: &N, to: &N) -> bool {
        self.edges.get(from).is_some_and(|s| s.contains(to))
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(HashSet::len).sum()
    }

    /// Finds a cycle, returning its nodes in order (first node repeated
    /// implicitly), or `None` if the graph is acyclic.
    ///
    /// Deterministic: neighbours are visited in sorted order, so the same
    /// graph always yields the same cycle.
    pub fn find_cycle(&self) -> Option<Vec<N>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let neighbours_of = |n: &N| -> Vec<N> {
            let mut v: Vec<N> = self.edges[n].iter().cloned().collect();
            // Reverse-sorted so pop() visits in ascending order.
            v.sort_by(|a, b| b.cmp(a));
            v
        };
        let mut color: HashMap<N, Color> = self
            .edges
            .keys()
            .map(|n| (n.clone(), Color::White))
            .collect();
        let mut nodes: Vec<N> = self.edges.keys().cloned().collect();
        nodes.sort();

        // Iterative DFS keeping the gray path for cycle extraction.
        for start in nodes {
            if color[&start] != Color::White {
                continue;
            }
            let mut stack: Vec<(N, Vec<N>)> = Vec::new();
            let mut path: Vec<N> = Vec::new();
            color.insert(start.clone(), Color::Gray);
            path.push(start.clone());
            stack.push((start.clone(), neighbours_of(&start)));
            while !stack.is_empty() {
                let next = stack.last_mut().expect("non-empty").1.pop();
                match next {
                    Some(next) => match color[&next] {
                        Color::White => {
                            color.insert(next.clone(), Color::Gray);
                            path.push(next.clone());
                            let nb = neighbours_of(&next);
                            stack.push((next, nb));
                        }
                        Color::Gray => {
                            // Back edge: extract the cycle from the gray path.
                            let pos = path
                                .iter()
                                .position(|p| *p == next)
                                .expect("gray node is on the path");
                            return Some(path[pos..].to_vec());
                        }
                        Color::Black => {}
                    },
                    None => {
                        let (node, _) = stack.pop().expect("non-empty");
                        color.insert(node, Color::Black);
                        path.pop();
                    }
                }
            }
        }
        None
    }

    /// True iff the graph contains no directed cycle.
    pub fn is_acyclic(&self) -> bool {
        self.find_cycle().is_none()
    }

    /// A topological order of the nodes, or `None` if cyclic.
    pub fn topo_order(&self) -> Option<Vec<N>> {
        let mut indegree: HashMap<&N, usize> = self.edges.keys().map(|n| (n, 0)).collect();
        for tos in self.edges.values() {
            for to in tos {
                *indegree.get_mut(to).expect("endpoint exists") += 1;
            }
        }
        let mut ready: Vec<&N> = indegree
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&n, _)| n)
            .collect();
        ready.sort();
        let mut order = Vec::with_capacity(self.edges.len());
        while let Some(n) = ready.pop() {
            order.push(n.clone());
            let mut next: Vec<&N> = Vec::new();
            for to in &self.edges[n] {
                let d = indegree.get_mut(to).expect("endpoint exists");
                *d -= 1;
                if *d == 0 {
                    next.push(to);
                }
            }
            next.sort();
            ready.extend(next);
            ready.sort();
        }
        if order.len() == self.edges.len() {
            Some(order)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_graph_is_acyclic() {
        let g: DiGraph<u32> = DiGraph::new();
        assert!(g.is_acyclic());
        assert_eq!(g.node_count(), 0);
    }

    #[test]
    fn chain_is_acyclic() {
        let mut g = DiGraph::new();
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 4);
        assert!(g.is_acyclic());
        assert_eq!(g.topo_order().unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn triangle_cycle_is_found() {
        let mut g = DiGraph::new();
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 1);
        let cycle = g.find_cycle().expect("cycle exists");
        assert_eq!(cycle.len(), 3);
        assert!(g.topo_order().is_none());
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut g = DiGraph::new();
        g.add_edge(5, 5);
        assert_eq!(g.find_cycle(), Some(vec![5]));
    }

    #[test]
    fn two_node_cycle() {
        let mut g = DiGraph::new();
        g.add_edge(1, 2);
        g.add_edge(2, 1);
        let c = g.find_cycle().unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn diamond_is_acyclic() {
        let mut g = DiGraph::new();
        g.add_edge(1, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 4);
        g.add_edge(3, 4);
        assert!(g.is_acyclic());
        let topo = g.topo_order().unwrap();
        let pos = |x: u32| topo.iter().position(|&n| n == x).unwrap();
        assert!(pos(1) < pos(2) && pos(1) < pos(3));
        assert!(pos(2) < pos(4) && pos(3) < pos(4));
    }

    #[test]
    fn has_edge_and_counts() {
        let mut g = DiGraph::new();
        g.add_edge("a", "b");
        g.add_edge("a", "b"); // duplicate ignored
        g.add_node("c");
        assert!(g.has_edge(&"a", &"b"));
        assert!(!g.has_edge(&"b", &"a"));
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn cycle_in_larger_graph_with_acyclic_parts() {
        let mut g = DiGraph::new();
        // acyclic component
        g.add_edge(10, 11);
        g.add_edge(11, 12);
        // cyclic component
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 2);
        let c = g.find_cycle().unwrap();
        assert!(c.contains(&2) && c.contains(&3));
    }

    proptest! {
        /// Edges only from smaller to larger numbers can never form a cycle.
        #[test]
        fn forward_edges_are_acyclic(edges in proptest::collection::vec((0u32..50, 0u32..50), 0..200)) {
            let mut g = DiGraph::new();
            for (a, b) in edges {
                let (lo, hi) = (a.min(b), a.max(b));
                if lo != hi {
                    g.add_edge(lo, hi);
                }
            }
            prop_assert!(g.is_acyclic());
            prop_assert!(g.topo_order().is_some());
        }

        /// Adding a back edge over a path creates a detectable cycle.
        #[test]
        fn back_edge_creates_cycle(len in 2usize..20) {
            let mut g = DiGraph::new();
            for i in 0..len - 1 {
                g.add_edge(i, i + 1);
            }
            g.add_edge(len - 1, 0);
            prop_assert!(!g.is_acyclic());
            let c = g.find_cycle().unwrap();
            prop_assert_eq!(c.len(), len);
        }

        /// topo_order, when it exists, respects every edge.
        #[test]
        fn topo_order_respects_edges(edges in proptest::collection::vec((0u32..30, 0u32..30), 0..100)) {
            let mut g = DiGraph::new();
            for (a, b) in &edges {
                let (lo, hi) = (a.min(b), a.max(b));
                if lo != hi {
                    g.add_edge(*lo, *hi);
                }
            }
            let topo = g.topo_order().expect("forward graph is acyclic");
            let pos: std::collections::HashMap<u32, usize> =
                topo.iter().enumerate().map(|(i, &n)| (n, i)).collect();
            for (a, b) in &edges {
                let (lo, hi) = (a.min(b), a.max(b));
                if lo != hi {
                    prop_assert!(pos[lo] < pos[hi]);
                }
            }
        }
    }
}
