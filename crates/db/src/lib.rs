//! # bcastdb-db
//!
//! The single-site database substrate for `bcastdb`, the reproduction of
//! *"Using Broadcast Primitives in Replicated Databases"* (Stanoi, Agrawal,
//! El Abbadi — ICDCS 1998).
//!
//! The paper assumes each site runs a conventional database kernel:
//! a store holding a full copy of every object, **strict two-phase
//! locking** for local concurrency control, and a redo log for durability.
//! This crate provides exactly that substrate, plus the machinery the
//! paper uses in its *proofs* — serialization graphs — turned into a
//! *checker* ([`sg::HistoryRecorder`]) that validates one-copy
//! serializability of every simulated execution:
//!
//! - [`types`] — keys, values, transaction identifiers and specifications;
//! - [`storage`] — the versioned key-value store (each committed write
//!   records its writer, giving the reads-from relation for free);
//! - [`lock`] — a strict-2PL lock manager with shared/exclusive modes,
//!   upgrade, FIFO wait queues, and a waits-for-graph deadlock detector
//!   (used by the point-to-point baseline; the broadcast protocols prevent
//!   deadlock by construction);
//! - [`log`] — a redo log with crash-recovery replay;
//! - [`graph`] — a small directed graph with cycle detection;
//! - [`sg`] — history recording and the one-copy serialization-graph test.
//!
//! # Example: strict 2PL + the serializability checker
//!
//! ```
//! use bcastdb_db::{HistoryRecorder, Key, LockManager, LockMode, Store, TxnId, WriteOp};
//! use bcastdb_db::lock::RequestOutcome;
//! use bcastdb_sim::SiteId;
//!
//! let t1 = TxnId::new(SiteId(0), 1);
//! let t2 = TxnId::new(SiteId(1), 1);
//!
//! // Strict 2PL: t2's write waits for t1's read lock.
//! let mut locks = LockManager::new();
//! assert_eq!(locks.request(t1, &Key::new("x"), LockMode::Shared), RequestOutcome::Granted);
//! assert!(matches!(
//!     locks.request(t2, &Key::new("x"), LockMode::Exclusive),
//!     RequestOutcome::Conflict { .. }
//! ));
//!
//! // A serial history passes the one-copy serialization-graph check.
//! let mut store = Store::new();
//! let w = WriteOp { key: Key::new("x"), value: 7 };
//! store.apply(t2, &[w.clone()]);
//! let mut h = HistoryRecorder::new();
//! h.record_commit(t1, vec![(Key::new("x"), None)], vec![]);
//! h.record_commit(t2, vec![], vec![w]);
//! h.record_site_order(SiteId(0), &store);
//! assert!(h.check().is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod lock;
pub mod log;
pub mod sg;
pub mod storage;
pub mod types;

pub use lock::{LockManager, LockMode, RequestOutcome};
pub use log::{Checkpoint, LogRecord, RedoLog};
pub use sg::{HistoryRecorder, SgViolation};
pub use storage::Store;
pub use types::{Key, TxnId, TxnSpec, Value, WriteOp};
