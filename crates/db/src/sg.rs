//! One-copy serializability checking.
//!
//! The paper proves its protocols correct by showing the **one-copy
//! serialization graph** of every execution is acyclic [BG87, BHG87]. This
//! module turns that proof technique into a runtime checker: the simulation
//! records every committed transaction's reads (with the version each read
//! observed) and writes, plus each replica's per-key write install order,
//! and [`HistoryRecorder::check`] verifies
//!
//! 1. **replica agreement** — all sites installed the writes of each key in
//!    the same order (one-copy equivalence), and
//! 2. **acyclicity** of the serialization graph built from
//!    write-write (install order), write-read (reads-from) and read-write
//!    (anti-dependency) edges.
//!
//! Any violation is reported with a witness, which makes protocol bugs in
//! the replication layer loudly visible in tests.

use crate::graph::DiGraph;
use crate::storage::Store;
use crate::types::{Key, TxnId, WriteOp};
use bcastdb_sim::SiteId;
use std::collections::HashMap;
use std::fmt;

/// A read observation: which committed version (by writer) a read saw.
/// `None` is the initial (unwritten) version.
pub type ObservedVersion = Option<TxnId>;

#[derive(Debug, Clone)]
struct CommittedTxn {
    reads: Vec<(Key, ObservedVersion)>,
    writes: Vec<WriteOp>,
}

/// Why a history is not one-copy serializable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SgViolation {
    /// Two sites installed the writes of `key` in different orders.
    DivergentInstallOrder {
        /// The disagreeing object.
        key: Key,
        /// First site and its order.
        site_a: (SiteId, Vec<TxnId>),
        /// Second site and its order.
        site_b: (SiteId, Vec<TxnId>),
    },
    /// A committed transaction read a version written by a transaction that
    /// never committed.
    ReadFromUncommitted {
        /// The reader.
        reader: TxnId,
        /// The object read.
        key: Key,
        /// The phantom writer.
        writer: TxnId,
    },
    /// A committed transaction's write never appeared in any replica's
    /// install order (the commit was decided but not applied).
    CommittedWriteNotInstalled {
        /// The committed writer.
        writer: TxnId,
        /// The object whose write is missing.
        key: Key,
    },
    /// The one-copy serialization graph has a cycle.
    Cycle(Vec<TxnId>),
}

impl fmt::Display for SgViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SgViolation::DivergentInstallOrder {
                key,
                site_a,
                site_b,
            } => write!(
                f,
                "replicas diverge on {key}: {} installed {:?}, {} installed {:?}",
                site_a.0, site_a.1, site_b.0, site_b.1
            ),
            SgViolation::ReadFromUncommitted {
                reader,
                key,
                writer,
            } => {
                write!(f, "{reader} read {key} from uncommitted {writer}")
            }
            SgViolation::CommittedWriteNotInstalled { writer, key } => {
                write!(
                    f,
                    "{writer} committed a write of {key} that no replica installed"
                )
            }
            SgViolation::Cycle(c) => {
                write!(f, "serialization graph cycle:")?;
                for t in c {
                    write!(f, " {t}")?;
                }
                Ok(())
            }
        }
    }
}

/// Records a replicated execution and checks it for one-copy
/// serializability.
#[derive(Debug, Clone, Default)]
pub struct HistoryRecorder {
    committed: HashMap<TxnId, CommittedTxn>,
    /// Per-site, per-key install order of committed writers.
    site_orders: HashMap<SiteId, HashMap<Key, Vec<TxnId>>>,
}

impl HistoryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a committed transaction (update or read-only) with the
    /// versions its reads observed.
    pub fn record_commit(
        &mut self,
        txn: TxnId,
        reads: Vec<(Key, ObservedVersion)>,
        writes: Vec<WriteOp>,
    ) {
        self.committed.insert(txn, CommittedTxn { reads, writes });
    }

    /// Captures a replica's per-key install order from its store after the
    /// run quiesces.
    pub fn record_site_order(&mut self, site: SiteId, store: &Store) {
        let mut per_key = HashMap::new();
        let keys: Vec<Key> = store.iter().map(|(k, _)| k.clone()).collect();
        for key in keys {
            let order = store.install_order(&key).to_vec();
            if !order.is_empty() {
                per_key.insert(key, order);
            }
        }
        self.site_orders.insert(site, per_key);
    }

    /// Number of committed transactions recorded.
    pub fn committed_count(&self) -> usize {
        self.committed.len()
    }

    /// Produces an equivalent *serial* order of the committed transactions
    /// — a topological order of the one-copy serialization graph. This is
    /// the constructive form of the correctness proof: the returned order
    /// executed serially would produce the same reads and final state.
    ///
    /// # Errors
    /// Returns the violation if the history is not one-copy serializable.
    pub fn serialization_order(&self) -> Result<Vec<TxnId>, SgViolation> {
        self.check()?;
        let canonical = self.check_replica_agreement()?;
        let graph = self.build_graph(&canonical)?;
        graph
            .topo_order()
            .ok_or_else(|| SgViolation::Cycle(graph.find_cycle().unwrap_or_default()))
    }

    /// Renders the one-copy serialization graph in Graphviz `dot` format
    /// (committed transactions as nodes, conflict edges as arrows) — handy
    /// for inspecting small histories.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph sg {\n  rankdir=LR;\n");
        let canonical = match self.check_replica_agreement() {
            Ok(c) => c,
            Err(_) => return out + "}\n",
        };
        let Ok(graph) = self.build_graph(&canonical) else {
            return out + "}\n";
        };
        let mut txns: Vec<&TxnId> = self.committed.keys().collect();
        txns.sort();
        for t in &txns {
            out.push_str(&format!("  \"{t}\";\n"));
        }
        for a in &txns {
            for b in &txns {
                if graph.has_edge(a, b) {
                    out.push_str(&format!("  \"{a}\" -> \"{b}\";\n"));
                }
            }
        }
        out.push_str("}\n");
        out
    }

    /// Verifies the recorded history, returning the first violation found
    /// (deterministically) or `Ok(())`.
    ///
    /// # Errors
    /// Returns an [`SgViolation`] describing the witness when the history is
    /// not one-copy serializable.
    pub fn check(&self) -> Result<(), SgViolation> {
        let canonical = self.check_replica_agreement()?;
        // Every committed write must actually have been installed somewhere
        // (only checked when replica orders were recorded at all).
        if !self.site_orders.is_empty() {
            let mut txns: Vec<&TxnId> = self.committed.keys().collect();
            txns.sort();
            for &txn in txns {
                for wop in &self.committed[&txn].writes {
                    let installed = canonical
                        .get(&wop.key)
                        .is_some_and(|order| order.contains(&txn));
                    if !installed {
                        return Err(SgViolation::CommittedWriteNotInstalled {
                            writer: txn,
                            key: wop.key.clone(),
                        });
                    }
                }
            }
        }
        let graph = self.build_graph(&canonical)?;
        match graph.find_cycle() {
            Some(c) => Err(SgViolation::Cycle(c)),
            None => Ok(()),
        }
    }

    /// Step 1: all sites must agree on each key's install order. Returns
    /// the canonical per-key order (the union over sites; sites that never
    /// saw a key contribute nothing).
    fn check_replica_agreement(&self) -> Result<HashMap<Key, Vec<TxnId>>, SgViolation> {
        let mut canonical: HashMap<Key, (SiteId, Vec<TxnId>)> = HashMap::new();
        let mut sites: Vec<&SiteId> = self.site_orders.keys().collect();
        sites.sort();
        for &site in sites {
            let mut keys: Vec<&Key> = self.site_orders[&site].keys().collect();
            keys.sort();
            for key in keys {
                let order = &self.site_orders[&site][key];
                match canonical.get(key) {
                    None => {
                        canonical.insert(key.clone(), (site, order.clone()));
                    }
                    Some((first_site, first_order)) => {
                        if first_order != order {
                            return Err(SgViolation::DivergentInstallOrder {
                                key: key.clone(),
                                site_a: (*first_site, first_order.clone()),
                                site_b: (site, order.clone()),
                            });
                        }
                    }
                }
            }
        }
        Ok(canonical.into_iter().map(|(k, (_, o))| (k, o)).collect())
    }

    /// Step 2: build the one-copy serialization graph.
    fn build_graph(
        &self,
        install: &HashMap<Key, Vec<TxnId>>,
    ) -> Result<DiGraph<TxnId>, SgViolation> {
        let mut g = DiGraph::new();
        for &txn in self.committed.keys() {
            g.add_node(txn);
        }
        // ww edges: consecutive writers in install order.
        for order in install.values() {
            for pair in order.windows(2) {
                g.add_edge(pair[0], pair[1]);
            }
        }
        // wr and rw edges from read observations.
        for (&reader, info) in &self.committed {
            for (key, observed) in &info.reads {
                let order = install.get(key).map(Vec::as_slice).unwrap_or(&[]);
                match observed {
                    Some(writer) => {
                        if !self.committed.contains_key(writer) {
                            return Err(SgViolation::ReadFromUncommitted {
                                reader,
                                key: key.clone(),
                                writer: *writer,
                            });
                        }
                        if *writer != reader {
                            g.add_edge(*writer, reader); // wr
                        }
                        // rw: reader precedes the writer of the NEXT version.
                        if let Some(pos) = order.iter().position(|t| t == writer) {
                            if let Some(&next) = order.get(pos + 1) {
                                if next != reader {
                                    g.add_edge(reader, next);
                                }
                            }
                        }
                    }
                    None => {
                        // Read the initial version: precedes the first writer.
                        if let Some(&first) = order.first() {
                            if first != reader {
                                g.add_edge(reader, first);
                            }
                        }
                    }
                }
            }
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(site: usize, n: u64) -> TxnId {
        TxnId::new(SiteId(site), n)
    }

    fn k(s: &str) -> Key {
        Key::new(s)
    }

    fn w(key: &str, v: i64) -> WriteOp {
        WriteOp {
            key: k(key),
            value: v,
        }
    }

    /// Builds stores for `sites` replicas all applying the same sequence.
    fn uniform_stores(sites: usize, seq: &[(TxnId, Vec<WriteOp>)]) -> Vec<Store> {
        (0..sites)
            .map(|_| {
                let mut s = Store::new();
                for (txn, writes) in seq {
                    s.apply(*txn, writes);
                }
                s
            })
            .collect()
    }

    #[test]
    fn empty_history_is_serializable() {
        let h = HistoryRecorder::new();
        assert_eq!(h.check(), Ok(()));
    }

    #[test]
    fn serial_execution_passes() {
        let mut h = HistoryRecorder::new();
        let t1 = t(0, 1);
        let t2 = t(1, 1);
        // t1 writes x; t2 reads t1's x and writes y.
        h.record_commit(t1, vec![], vec![w("x", 1)]);
        h.record_commit(t2, vec![(k("x"), Some(t1))], vec![w("y", 2)]);
        let seq = vec![(t1, vec![w("x", 1)]), (t2, vec![w("y", 2)])];
        for (i, s) in uniform_stores(3, &seq).iter().enumerate() {
            h.record_site_order(SiteId(i), s);
        }
        assert_eq!(h.check(), Ok(()));
    }

    #[test]
    fn divergent_install_order_is_caught() {
        let mut h = HistoryRecorder::new();
        let t1 = t(0, 1);
        let t2 = t(1, 1);
        h.record_commit(t1, vec![], vec![w("x", 1)]);
        h.record_commit(t2, vec![], vec![w("x", 2)]);
        let mut s0 = Store::new();
        s0.apply(t1, &[w("x", 1)]);
        s0.apply(t2, &[w("x", 2)]);
        let mut s1 = Store::new();
        s1.apply(t2, &[w("x", 2)]);
        s1.apply(t1, &[w("x", 1)]);
        h.record_site_order(SiteId(0), &s0);
        h.record_site_order(SiteId(1), &s1);
        assert!(matches!(
            h.check(),
            Err(SgViolation::DivergentInstallOrder { .. })
        ));
    }

    #[test]
    fn lost_update_cycle_is_caught() {
        // Classic lost update: both read initial x, both write x.
        // rw edges: t1 → t2 and t2 → t1 ... with install order t1,t2 the
        // edges are t1→t2 (ww), t2→t1 (rw from t2's read of initial before
        // t1's write) — a cycle.
        let mut h = HistoryRecorder::new();
        let t1 = t(0, 1);
        let t2 = t(1, 1);
        h.record_commit(t1, vec![(k("x"), None)], vec![w("x", 1)]);
        h.record_commit(t2, vec![(k("x"), None)], vec![w("x", 2)]);
        let seq = vec![(t1, vec![w("x", 1)]), (t2, vec![w("x", 2)])];
        for (i, s) in uniform_stores(2, &seq).iter().enumerate() {
            h.record_site_order(SiteId(i), s);
        }
        match h.check() {
            Err(SgViolation::Cycle(c)) => assert_eq!(c.len(), 2),
            other => panic!("expected cycle, got {other:?}"),
        }
    }

    #[test]
    fn write_skew_cycle_is_caught() {
        // t1 reads y (initial), writes x; t2 reads x (initial), writes y.
        let mut h = HistoryRecorder::new();
        let t1 = t(0, 1);
        let t2 = t(1, 1);
        h.record_commit(t1, vec![(k("y"), None)], vec![w("x", 1)]);
        h.record_commit(t2, vec![(k("x"), None)], vec![w("y", 1)]);
        let seq = vec![(t1, vec![w("x", 1)]), (t2, vec![w("y", 1)])];
        for (i, s) in uniform_stores(2, &seq).iter().enumerate() {
            h.record_site_order(SiteId(i), s);
        }
        match h.check() {
            Err(SgViolation::Cycle(c)) => assert_eq!(c.len(), 2),
            other => panic!("expected cycle, got {other:?}"),
        }
    }

    #[test]
    fn read_from_uncommitted_is_caught() {
        let mut h = HistoryRecorder::new();
        let t1 = t(0, 1);
        let ghost = t(9, 9);
        h.record_commit(t1, vec![(k("x"), Some(ghost))], vec![]);
        assert!(matches!(
            h.check(),
            Err(SgViolation::ReadFromUncommitted { .. })
        ));
    }

    #[test]
    fn read_only_transactions_join_the_graph() {
        // Serializable: reader sees t1's write, then t2 overwrites.
        let mut h = HistoryRecorder::new();
        let t1 = t(0, 1);
        let t2 = t(1, 1);
        let ro = t(2, 1);
        h.record_commit(t1, vec![], vec![w("x", 1)]);
        h.record_commit(t2, vec![], vec![w("x", 2)]);
        h.record_commit(ro, vec![(k("x"), Some(t1))], vec![]);
        let seq = vec![(t1, vec![w("x", 1)]), (t2, vec![w("x", 2)])];
        for (i, s) in uniform_stores(2, &seq).iter().enumerate() {
            h.record_site_order(SiteId(i), s);
        }
        assert_eq!(h.check(), Ok(()));
    }

    #[test]
    fn read_only_anomaly_is_caught() {
        // ro reads x from t2 but y initial, while t2 wrote both x and y:
        // wr: t2→ro (x); rw: ro→t2 (y initial before t2's write) — cycle.
        let mut h = HistoryRecorder::new();
        let t2 = t(1, 1);
        let ro = t(2, 1);
        h.record_commit(t2, vec![], vec![w("x", 2), w("y", 2)]);
        h.record_commit(ro, vec![(k("x"), Some(t2)), (k("y"), None)], vec![]);
        let seq = vec![(t2, vec![w("x", 2), w("y", 2)])];
        for (i, s) in uniform_stores(2, &seq).iter().enumerate() {
            h.record_site_order(SiteId(i), s);
        }
        match h.check() {
            Err(SgViolation::Cycle(c)) => assert_eq!(c.len(), 2),
            other => panic!("expected cycle, got {other:?}"),
        }
    }

    #[test]
    fn long_serial_chain_passes() {
        let mut h = HistoryRecorder::new();
        let mut seq = Vec::new();
        let mut prev: Option<TxnId> = None;
        for i in 1..=20 {
            let ti = t(0, i);
            let reads = vec![(k("x"), prev)];
            h.record_commit(ti, reads, vec![w("x", i as i64)]);
            seq.push((ti, vec![w("x", i as i64)]));
            prev = Some(ti);
        }
        for (i, s) in uniform_stores(3, &seq).iter().enumerate() {
            h.record_site_order(SiteId(i), s);
        }
        assert_eq!(h.check(), Ok(()));
        assert_eq!(h.committed_count(), 20);
    }

    #[test]
    fn committed_but_uninstalled_write_is_caught() {
        let mut h = HistoryRecorder::new();
        let t1 = t(0, 1);
        let t2 = t(0, 2);
        h.record_commit(t1, vec![], vec![w("x", 1)]);
        h.record_commit(t2, vec![], vec![w("x", 2), w("y", 2)]);
        // Replicas only ever installed t1 and t2's x — t2's y went missing.
        let mut s = Store::new();
        s.apply(t1, &[w("x", 1)]);
        s.apply(t2, &[w("x", 2)]);
        h.record_site_order(SiteId(0), &s);
        assert_eq!(
            h.check(),
            Err(SgViolation::CommittedWriteNotInstalled {
                writer: t2,
                key: k("y"),
            })
        );
    }

    #[test]
    fn serialization_order_respects_dependencies() {
        let mut h = HistoryRecorder::new();
        let t1 = t(0, 1);
        let t2 = t(1, 1);
        let ro = t(2, 1);
        h.record_commit(t1, vec![], vec![w("x", 1)]);
        h.record_commit(t2, vec![(k("x"), Some(t1))], vec![w("y", 2)]);
        h.record_commit(ro, vec![(k("y"), Some(t2))], vec![]);
        let seq = vec![(t1, vec![w("x", 1)]), (t2, vec![w("y", 2)])];
        for (i, s) in uniform_stores(2, &seq).iter().enumerate() {
            h.record_site_order(SiteId(i), s);
        }
        let order = h.serialization_order().expect("serializable");
        let pos = |x: TxnId| order.iter().position(|&n| n == x).unwrap();
        assert!(pos(t1) < pos(t2), "wr dependency respected");
        assert!(pos(t2) < pos(ro), "reader after its writer");
    }

    #[test]
    fn serialization_order_fails_on_cycle() {
        let mut h = HistoryRecorder::new();
        let t1 = t(0, 1);
        let t2 = t(1, 1);
        h.record_commit(t1, vec![(k("x"), None)], vec![w("x", 1)]);
        h.record_commit(t2, vec![(k("x"), None)], vec![w("x", 2)]);
        let seq = vec![(t1, vec![w("x", 1)]), (t2, vec![w("x", 2)])];
        for (i, s) in uniform_stores(2, &seq).iter().enumerate() {
            h.record_site_order(SiteId(i), s);
        }
        assert!(h.serialization_order().is_err());
    }

    #[test]
    fn dot_export_contains_nodes_and_edges() {
        let mut h = HistoryRecorder::new();
        let t1 = t(0, 1);
        let t2 = t(1, 1);
        h.record_commit(t1, vec![], vec![w("x", 1)]);
        h.record_commit(t2, vec![(k("x"), Some(t1))], vec![]);
        let seq = vec![(t1, vec![w("x", 1)])];
        for (i, s) in uniform_stores(2, &seq).iter().enumerate() {
            h.record_site_order(SiteId(i), s);
        }
        let dot = h.to_dot();
        assert!(dot.contains("digraph sg"));
        assert!(dot.contains("\"T0.1\""));
        assert!(dot.contains("\"T0.1\" -> \"T1.1\""));
    }

    #[test]
    fn violation_display_is_informative() {
        let v = SgViolation::Cycle(vec![t(0, 1), t(1, 1)]);
        let s = v.to_string();
        assert!(s.contains("cycle"));
        assert!(s.contains("T0.1"));
    }
}
