//! The versioned key-value store.
//!
//! Each site holds a full copy of every object (the paper assumes full
//! replication). Every committed write records its writer transaction, so
//! a read returns both the value and the identity of the version it
//! observed — exactly the *reads-from* information the one-copy
//! serialization-graph checker needs.

use crate::types::{Key, TxnId, Value, WriteOp};
use std::collections::HashMap;

/// The committed version of one object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Version {
    /// Current value.
    pub value: Value,
    /// Transaction that installed it; `None` for the initial version.
    pub writer: Option<TxnId>,
}

/// A full replica of the database at one site.
#[derive(Debug, Clone, Default)]
pub struct Store {
    current: HashMap<Key, Version>,
    /// Per-key install order of committed writers (the ww order at this
    /// site), used by the serializability checker.
    install_order: HashMap<Key, Vec<TxnId>>,
    applied_writes: u64,
}

impl Store {
    /// Creates an empty store; absent keys read as the initial version
    /// (value 0, no writer).
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the current committed version of `key`.
    pub fn read(&self, key: &Key) -> Version {
        self.current.get(key).copied().unwrap_or(Version {
            value: 0,
            writer: None,
        })
    }

    /// Convenience: the current committed value of `key` (0 if never
    /// written).
    pub fn value(&self, key: &Key) -> Value {
        self.read(key).value
    }

    /// Installs the write set of committed transaction `txn`.
    pub fn apply(&mut self, txn: TxnId, writes: &[WriteOp]) {
        for w in writes {
            self.current.insert(
                w.key.clone(),
                Version {
                    value: w.value,
                    writer: Some(txn),
                },
            );
            self.install_order
                .entry(w.key.clone())
                .or_default()
                .push(txn);
            self.applied_writes += 1;
        }
    }

    /// Pre-loads an initial value without recording a writer (database
    /// population before the measured run).
    pub fn seed(&mut self, key: impl Into<Key>, value: Value) {
        self.current.insert(
            key.into(),
            Version {
                value,
                writer: None,
            },
        );
    }

    /// The per-key sequence of committed writers at this site.
    pub fn install_order(&self, key: &Key) -> &[TxnId] {
        self.install_order
            .get(key)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Iterates over `(key, version)` pairs of every object ever written
    /// or seeded.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &Version)> {
        self.current.iter()
    }

    /// Number of distinct keys present.
    pub fn len(&self) -> usize {
        self.current.len()
    }

    /// True iff no key has ever been written or seeded.
    pub fn is_empty(&self) -> bool {
        self.current.is_empty()
    }

    /// Total committed write operations applied.
    pub fn applied_writes(&self) -> u64 {
        self.applied_writes
    }

    /// True iff `self` and `other` hold identical current versions for the
    /// union of their keys — the *one-copy equivalence* check applied across
    /// replicas after a run quiesces.
    pub fn converged_with(&self, other: &Store) -> bool {
        let keys = self.current.keys().chain(other.current.keys());
        for k in keys {
            if self.read(k) != other.read(k) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcastdb_sim::SiteId;

    fn t(n: u64) -> TxnId {
        TxnId::new(SiteId(0), n)
    }

    fn w(key: &str, v: Value) -> WriteOp {
        WriteOp {
            key: Key::new(key),
            value: v,
        }
    }

    #[test]
    fn absent_key_reads_initial_version() {
        let s = Store::new();
        let v = s.read(&Key::new("nope"));
        assert_eq!(v.value, 0);
        assert_eq!(v.writer, None);
        assert!(s.is_empty());
    }

    #[test]
    fn apply_installs_value_and_writer() {
        let mut s = Store::new();
        s.apply(t(1), &[w("x", 42)]);
        let v = s.read(&Key::new("x"));
        assert_eq!(v.value, 42);
        assert_eq!(v.writer, Some(t(1)));
        assert_eq!(s.len(), 1);
        assert_eq!(s.applied_writes(), 1);
    }

    #[test]
    fn later_write_overwrites_and_appends_order() {
        let mut s = Store::new();
        s.apply(t(1), &[w("x", 1)]);
        s.apply(t(2), &[w("x", 2)]);
        assert_eq!(s.value(&Key::new("x")), 2);
        assert_eq!(s.install_order(&Key::new("x")), &[t(1), t(2)]);
    }

    #[test]
    fn seed_does_not_record_writer() {
        let mut s = Store::new();
        s.seed("x", 7);
        assert_eq!(s.read(&Key::new("x")).writer, None);
        assert!(s.install_order(&Key::new("x")).is_empty());
    }

    #[test]
    fn convergence_check_compares_union_of_keys() {
        let mut a = Store::new();
        let mut b = Store::new();
        assert!(a.converged_with(&b));
        a.apply(t(1), &[w("x", 1)]);
        assert!(!a.converged_with(&b), "missing key in b");
        b.apply(t(1), &[w("x", 1)]);
        assert!(a.converged_with(&b));
        b.apply(t(2), &[w("y", 5)]);
        assert!(!a.converged_with(&b), "extra key in b");
    }

    #[test]
    fn convergence_requires_same_writer_not_just_value() {
        let mut a = Store::new();
        let mut b = Store::new();
        a.apply(t(1), &[w("x", 1)]);
        b.apply(t(2), &[w("x", 1)]);
        assert!(
            !a.converged_with(&b),
            "same value from different writers is not one-copy equivalent"
        );
    }

    #[test]
    fn multi_key_write_set_applies_atomically() {
        let mut s = Store::new();
        s.apply(t(3), &[w("a", 1), w("b", 2), w("c", 3)]);
        assert_eq!(s.value(&Key::new("a")), 1);
        assert_eq!(s.value(&Key::new("b")), 2);
        assert_eq!(s.value(&Key::new("c")), 3);
        assert_eq!(s.applied_writes(), 3);
    }
}
