//! Common message plumbing shared by the broadcast engines.

use bcastdb_sim::SiteId;
use std::fmt;

/// Globally unique identifier of a broadcast message: the originating site
/// plus a per-origin sequence number.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct MsgId {
    /// Site that initiated the broadcast.
    pub origin: SiteId,
    /// Per-origin broadcast sequence number, starting at 1.
    pub seq: u64,
}

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.origin, self.seq)
    }
}

/// Where an [`Outbound`] wire message should be sent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dest {
    /// Every site, including the caller.
    All,
    /// Every site except the caller.
    Others,
    /// One specific site.
    Site(SiteId),
}

/// A wire message the engine wants the transport to carry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outbound<W> {
    /// Destination selector.
    pub dest: Dest,
    /// The wire payload.
    pub wire: W,
}

impl<W> Outbound<W> {
    /// Convenience constructor for a message to everyone (incl. self).
    pub fn all(wire: W) -> Self {
        Outbound {
            dest: Dest::All,
            wire,
        }
    }

    /// Convenience constructor for a message to everyone else.
    pub fn others(wire: W) -> Self {
        Outbound {
            dest: Dest::Others,
            wire,
        }
    }

    /// Convenience constructor for a unicast.
    pub fn to(site: SiteId, wire: W) -> Self {
        Outbound {
            dest: Dest::Site(site),
            wire,
        }
    }
}

/// Non-allocating iterator over the concrete destinations of a [`Dest`];
/// see [`dest_iter`].
#[derive(Debug, Clone)]
pub struct DestIter {
    next: usize,
    end: usize,
    /// Site index to skip (`usize::MAX` when nothing is skipped).
    skip: usize,
}

impl Iterator for DestIter {
    type Item = SiteId;

    fn next(&mut self) -> Option<SiteId> {
        while self.next < self.end {
            let i = self.next;
            self.next += 1;
            if i != self.skip {
                return Some(SiteId(i));
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let span = self.end - self.next;
        let n = span - usize::from(self.skip >= self.next && self.skip < self.end);
        (n, Some(n))
    }
}

impl ExactSizeIterator for DestIter {}

/// Iterates the concrete site ids a [`Dest`] names in a system of `n`
/// sites with the caller at `me`, in ascending site order — the
/// allocation-free form of [`expand_dest`], used on the per-send fan-out
/// hot path.
pub fn dest_iter(dest: Dest, me: SiteId, n: usize) -> DestIter {
    match dest {
        Dest::All => DestIter {
            next: 0,
            end: n,
            skip: usize::MAX,
        },
        Dest::Others => DestIter {
            next: 0,
            end: n,
            skip: me.0,
        },
        Dest::Site(s) => DestIter {
            next: s.0,
            end: s.0 + 1,
            skip: usize::MAX,
        },
    }
}

/// Expands a [`Dest`] into concrete site ids for a system of `n` sites with
/// the caller at `me`. Allocates; prefer [`dest_iter`] on hot paths.
pub fn expand_dest(dest: Dest, me: SiteId, n: usize) -> Vec<SiteId> {
    dest_iter(dest, me, n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_id_orders_by_origin_then_seq() {
        let a = MsgId {
            origin: SiteId(0),
            seq: 9,
        };
        let b = MsgId {
            origin: SiteId(1),
            seq: 1,
        };
        assert!(a < b);
        assert_eq!(a.to_string(), "s0#9");
    }

    #[test]
    fn expand_all_includes_me() {
        assert_eq!(
            expand_dest(Dest::All, SiteId(1), 3),
            vec![SiteId(0), SiteId(1), SiteId(2)]
        );
    }

    #[test]
    fn expand_others_excludes_me() {
        assert_eq!(
            expand_dest(Dest::Others, SiteId(1), 3),
            vec![SiteId(0), SiteId(2)]
        );
    }

    #[test]
    fn expand_site_is_singleton() {
        assert_eq!(
            expand_dest(Dest::Site(SiteId(2)), SiteId(0), 5),
            vec![SiteId(2)]
        );
    }

    #[test]
    fn dest_iter_matches_expand_dest() {
        for n in 1..6 {
            for me in 0..n {
                for dest in [Dest::All, Dest::Others, Dest::Site(SiteId(n - 1))] {
                    let it = dest_iter(dest, SiteId(me), n);
                    assert_eq!(it.len(), expand_dest(dest, SiteId(me), n).len());
                    assert_eq!(
                        it.collect::<Vec<_>>(),
                        expand_dest(dest, SiteId(me), n),
                        "dest={dest:?} me={me} n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn outbound_constructors() {
        assert_eq!(Outbound::all(7u8).dest, Dest::All);
        assert_eq!(Outbound::others(7u8).dest, Dest::Others);
        assert_eq!(Outbound::to(SiteId(3), 7u8).dest, Dest::Site(SiteId(3)));
    }
}
