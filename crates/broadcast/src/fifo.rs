//! FIFO broadcast.
//!
//! The intermediate rung of the ordering hierarchy the paper builds on:
//!
//! > reliable ⊂ **FIFO** ⊂ causal ⊂ causal+atomic
//!
//! FIFO broadcast is reliable broadcast plus per-origin order: if a process
//! broadcasts `m1` before `m2`, no process delivers `m2` before `m1`. The
//! paper assumes FIFO links throughout ("due to the FIFO assumption about
//! the communication links, if a process atomically (or for that matter
//! reliably or causally) broadcasts a message m1 before message m2 then all
//! processes receive m1 before m2").
//!
//! [`FifoBcast`] packages that guarantee explicitly. It is a thin,
//! documented façade over [`ReliableBcast`]
//! — which already enforces per-origin delivery order via its holdback
//! queue — so the hierarchy is visible in the API, and code that needs
//! *exactly* FIFO semantics can say so.

use crate::msg::{MsgId, Outbound};
use crate::reliable::{self, ReliableBcast};
use bcastdb_sim::SiteId;

/// Wire format (identical to the reliable layer's — including its
/// [`crate::batch::WireSize`] impl, so FIFO traffic batches like reliable
/// traffic under [`crate::batch::Batcher`]).
pub type Wire<P> = reliable::Wire<P>;

/// Delivery record (identical to the reliable layer's).
pub type Delivery<P> = reliable::Delivery<P>;

/// Output bundle (identical to the reliable layer's).
pub type Output<P> = reliable::Output<P>;

/// A sans-IO FIFO broadcast engine for one site.
#[derive(Debug)]
pub struct FifoBcast<P> {
    inner: ReliableBcast<P>,
}

impl<P: Clone> FifoBcast<P> {
    /// Creates an engine for site `me` of an `n`-site system.
    ///
    /// # Panics
    /// Panics if `me` is not a valid site of an `n`-site system.
    pub fn new(me: SiteId, n: usize) -> Self {
        FifoBcast {
            inner: ReliableBcast::new(me, n),
        }
    }

    /// Enables eager relaying (agreement despite origin crash / loss).
    pub fn with_relay(mut self) -> Self {
        self.inner = self.inner.with_relay();
        self
    }

    /// This engine's site.
    pub fn me(&self) -> SiteId {
        self.inner.me()
    }

    /// Broadcasts `payload`; own messages are self-delivered immediately
    /// and in order.
    pub fn broadcast(&mut self, payload: P) -> (MsgId, Output<P>) {
        self.inner.broadcast(payload)
    }

    /// Handles an incoming wire message; deliveries respect per-origin
    /// broadcast order.
    pub fn on_wire(&mut self, from: SiteId, wire: Wire<P>) -> Output<P> {
        self.inner.on_wire(from, wire)
    }

    /// Number of messages delivered from `origin` so far.
    pub fn delivered_from(&self, origin: SiteId) -> u64 {
        self.inner.delivered_from(origin)
    }

    /// Messages held back awaiting their per-origin predecessors.
    pub fn holdback_len(&self) -> usize {
        self.inner.holdback_len()
    }
}

/// Re-expose an outbound bundle's destinations unchanged (convenience for
/// transports generic over the layer).
pub fn outbound_of<P>(out: &Output<P>) -> impl Iterator<Item = &Outbound<Wire<P>>> {
    out.outbound.iter()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_enforced_per_origin() {
        let mut sender = FifoBcast::new(SiteId(0), 3);
        let mut receiver = FifoBcast::new(SiteId(1), 3);
        let (_, o1) = sender.broadcast("m1");
        let (_, o2) = sender.broadcast("m2");
        let w1 = o1.outbound[0].wire.clone();
        let w2 = o2.outbound[0].wire.clone();
        // Reversed arrival (possible with relaying): held back.
        assert!(receiver.on_wire(SiteId(0), w2).deliveries.is_empty());
        assert_eq!(receiver.holdback_len(), 1);
        let out = receiver.on_wire(SiteId(0), w1);
        let got: Vec<_> = out.deliveries.iter().map(|d| d.payload).collect();
        assert_eq!(got, vec!["m1", "m2"]);
    }

    #[test]
    fn cross_origin_order_is_not_constrained() {
        let mut a = FifoBcast::new(SiteId(0), 3);
        let mut b = FifoBcast::new(SiteId(1), 3);
        let mut r = FifoBcast::new(SiteId(2), 3);
        let (_, oa) = a.broadcast(1);
        let (_, ob) = b.broadcast(2);
        // Either arrival order delivers immediately: FIFO is per origin.
        assert_eq!(
            r.on_wire(SiteId(1), ob.outbound[0].wire.clone())
                .deliveries
                .len(),
            1
        );
        assert_eq!(
            r.on_wire(SiteId(0), oa.outbound[0].wire.clone())
                .deliveries
                .len(),
            1
        );
    }

    #[test]
    fn relay_mode_composes() {
        let mut r = FifoBcast::<u8>::new(SiteId(1), 3).with_relay();
        let mut s = FifoBcast::<u8>::new(SiteId(0), 3);
        let (_, o) = s.broadcast(9);
        let out = r.on_wire(SiteId(0), o.outbound[0].wire.clone());
        assert_eq!(out.outbound.len(), 1, "first copy relayed");
        assert_eq!(out.deliveries.len(), 1);
    }

    #[test]
    fn self_delivery_is_immediate_and_ordered() {
        let mut e = FifoBcast::new(SiteId(2), 3);
        let (id1, o1) = e.broadcast("a");
        let (id2, o2) = e.broadcast("b");
        assert_eq!(id1.seq, 1);
        assert_eq!(id2.seq, 2);
        assert_eq!(o1.deliveries[0].payload, "a");
        assert_eq!(o2.deliveries[0].payload, "b");
        assert_eq!(e.delivered_from(SiteId(2)), 2);
    }
}
