//! Reliable broadcast.
//!
//! The simplest primitive in the paper (§3), per the \[HT93\] specification:
//!
//! 1. **Validity** — if a correct process broadcasts `m`, all correct
//!    processes eventually deliver `m`;
//! 2. **Agreement** — if a correct process delivers `m`, all correct
//!    processes eventually deliver `m`;
//! 3. **Integrity** — every process delivers `m` at most once, and only if
//!    it was broadcast.
//!
//! Because the paper assumes FIFO links, this implementation additionally
//! guarantees **per-origin FIFO delivery**: messages from the same origin
//! are delivered in broadcast order (a commit request broadcast after a
//! write operation is delivered after it everywhere).
//!
//! Two dissemination modes:
//!
//! - *direct* (default): the origin sends one copy to every other site —
//!   `N-1` messages per broadcast. Sufficient on a lossless network while
//!   the origin stays up.
//! - *relay* ([`ReliableBcast::with_relay`]): every site eagerly re-forwards
//!   the first copy it receives — `O(N²)` messages, but agreement holds even
//!   if the origin crashes mid-broadcast or individual copies are lost.

use crate::msg::{Dest, MsgId, Outbound};
use bcastdb_sim::inline::InlineVec;
use bcastdb_sim::SiteId;
use std::collections::{BTreeMap, HashSet};

/// Wire format of the reliable broadcast engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Wire<P> {
    /// Message identity (origin + per-origin sequence).
    pub id: MsgId,
    /// Application payload.
    pub payload: P,
}

impl<P: crate::batch::WireSize> crate::batch::WireSize for Wire<P> {
    fn wire_size(&self) -> usize {
        self.id.wire_size() + self.payload.wire_size()
    }
}

/// An application-level delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery<P> {
    /// Message identity.
    pub id: MsgId,
    /// Application payload.
    pub payload: P,
}

/// Result of feeding the engine one input.
///
/// Both lists use inline storage: a broadcast or delivery step almost
/// always yields at most one outbound bundle and a couple of deliveries,
/// so the common case constructs no heap allocation at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Output<P> {
    /// Messages now deliverable to the application, in delivery order.
    pub deliveries: InlineVec<Delivery<P>, 2>,
    /// Wire messages to hand to the transport.
    pub outbound: InlineVec<Outbound<Wire<P>>, 1>,
}

impl<P> Output<P> {
    fn empty() -> Self {
        Output {
            deliveries: InlineVec::new(),
            outbound: InlineVec::new(),
        }
    }
}

/// A sans-IO reliable broadcast engine for one site.
#[derive(Debug)]
pub struct ReliableBcast<P> {
    me: SiteId,
    relay: bool,
    next_seq: u64,
    /// Highest contiguously delivered sequence per origin.
    delivered_seq: Vec<u64>,
    /// Out-of-order messages awaiting their FIFO predecessors.
    holdback: BTreeMap<(SiteId, u64), P>,
    /// Every payload ever seen (sent or received), retained for
    /// retransmission to peers that lost their copies.
    archive: BTreeMap<(SiteId, u64), P>,
    /// Everything ever received (for relay dedup); identical to
    /// `delivered + holdback` keys plus in-flight duplicates.
    seen: HashSet<MsgId>,
    /// Whether the archive is populated. Retransmissions are only ever
    /// requested via sync rounds, which exist in relay mode; a non-relay
    /// engine skips the per-message archive insert.
    archive_enabled: bool,
}

impl<P: Clone> ReliableBcast<P> {
    /// Creates an engine for site `me` of an `n`-site system, in direct
    /// dissemination mode.
    ///
    /// # Panics
    /// Panics if `me` is not a valid site of an `n`-site system.
    pub fn new(me: SiteId, n: usize) -> Self {
        assert!(me.0 < n, "site {me} out of range for {n} sites");
        ReliableBcast {
            me,
            relay: false,
            next_seq: 0,
            delivered_seq: vec![0; n],
            holdback: BTreeMap::new(),
            archive: BTreeMap::new(),
            seen: HashSet::new(),
            archive_enabled: true,
        }
    }

    /// Disables the retransmission archive. Correct whenever nothing will
    /// ever call [`ReliableBcast::retransmissions_for`] on this engine —
    /// i.e. outside loss-recovery (relay) deployments.
    pub fn without_archive(mut self) -> Self {
        self.archive_enabled = false;
        self.archive.clear();
        self
    }

    /// Enables eager relaying (agreement despite origin crash / loss).
    pub fn with_relay(mut self) -> Self {
        self.relay = true;
        self
    }

    /// This engine's site.
    pub fn me(&self) -> SiteId {
        self.me
    }

    /// Broadcasts `payload`; the local delivery is returned immediately
    /// (FIFO trivially holds for one's own messages).
    pub fn broadcast(&mut self, payload: P) -> (MsgId, Output<P>) {
        self.next_seq += 1;
        let id = MsgId {
            origin: self.me,
            seq: self.next_seq,
        };
        self.seen.insert(id);
        self.delivered_seq[self.me.0] = id.seq;
        if self.archive_enabled {
            self.archive.insert((self.me, id.seq), payload.clone());
        }
        let out = Output {
            deliveries: InlineVec::one(Delivery {
                id,
                payload: payload.clone(),
            }),
            outbound: InlineVec::one(Outbound {
                dest: Dest::Others,
                wire: Wire { id, payload },
            }),
        };
        (id, out)
    }

    /// Handles an incoming wire message.
    pub fn on_wire(&mut self, _from: SiteId, wire: Wire<P>) -> Output<P> {
        if !self.seen.insert(wire.id) {
            return Output::empty(); // duplicate
        }
        let mut out = Output::empty();
        if self.relay {
            out.outbound.push(Outbound {
                dest: Dest::Others,
                wire: wire.clone(),
            });
        }
        let origin = wire.id.origin;
        if self.archive_enabled {
            self.archive
                .insert((origin, wire.id.seq), wire.payload.clone());
        }
        self.holdback.insert((origin, wire.id.seq), wire.payload);
        // Drain the FIFO-contiguous prefix for this origin.
        loop {
            let next = self.delivered_seq[origin.0] + 1;
            match self.holdback.remove(&(origin, next)) {
                Some(payload) => {
                    self.delivered_seq[origin.0] = next;
                    out.deliveries.push(Delivery {
                        id: MsgId { origin, seq: next },
                        payload,
                    });
                }
                None => break,
            }
        }
        out
    }

    /// Number of messages delivered from `origin` so far.
    pub fn delivered_from(&self, origin: SiteId) -> u64 {
        self.delivered_seq[origin.0]
    }

    /// Snapshot of per-origin delivery watermarks (for state transfer).
    pub fn watermarks(&self) -> Vec<u64> {
        self.delivered_seq.clone()
    }

    /// Resumes a recovered engine from a donor's watermarks: deliveries the
    /// donor has seen are treated as already delivered here (their payloads
    /// arrive via state transfer, not re-broadcast). The own-origin counter
    /// also continues from the watermark so future broadcasts keep their
    /// FIFO numbering.
    ///
    /// # Panics
    /// Panics if the watermark vector has the wrong width.
    pub fn resume_from(&mut self, watermarks: &[u64]) {
        assert_eq!(watermarks.len(), self.delivered_seq.len(), "width mismatch");
        for (mine, &donor) in self.delivered_seq.iter_mut().zip(watermarks) {
            *mine = (*mine).max(donor);
        }
        self.next_seq = self.next_seq.max(self.delivered_seq[self.me.0]);
        self.holdback.clear();
    }

    /// Number of messages currently held back waiting for predecessors.
    pub fn holdback_len(&self) -> usize {
        self.holdback.len()
    }

    /// Archived messages a peer at the given delivery watermarks is
    /// missing, at most `cap` in total. The cap is spread round-robin
    /// across origins (one message per origin per pass, gap-first within
    /// each origin) so a long gap from one origin cannot starve the
    /// others out of every retransmission round. The peer's duplicate
    /// suppression makes over-sending harmless.
    pub fn retransmissions_for(&self, watermarks: &[u64], cap: usize) -> Vec<Wire<P>> {
        // One cursor per origin with at least one archived successor.
        let mut cursors: Vec<(SiteId, u64)> = watermarks
            .iter()
            .enumerate()
            .take(self.delivered_seq.len())
            .map(|(origin, &wm)| (SiteId(origin), wm + 1))
            .filter(|&(origin, next)| self.archive.contains_key(&(origin, next)))
            .collect();
        let mut out = Vec::new();
        while out.len() < cap && !cursors.is_empty() {
            cursors.retain_mut(|(origin, next)| {
                if out.len() >= cap {
                    return false;
                }
                match self.archive.get(&(*origin, *next)) {
                    Some(p) => {
                        out.push(Wire {
                            id: MsgId {
                                origin: *origin,
                                seq: *next,
                            },
                            payload: p.clone(),
                        });
                        *next += 1;
                        true
                    }
                    None => false, // we do not have it (or no gap)
                }
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wire(origin: usize, seq: u64, p: &str) -> Wire<String> {
        Wire {
            id: MsgId {
                origin: SiteId(origin),
                seq,
            },
            payload: p.to_owned(),
        }
    }

    #[test]
    fn broadcast_delivers_locally_and_sends_to_others() {
        let mut rb = ReliableBcast::new(SiteId(0), 3);
        let (id, out) = rb.broadcast("a".to_owned());
        assert_eq!(id.seq, 1);
        assert_eq!(out.deliveries.len(), 1);
        assert_eq!(out.deliveries[0].payload, "a");
        assert_eq!(out.outbound.len(), 1);
        assert_eq!(out.outbound[0].dest, Dest::Others);
    }

    #[test]
    fn in_order_wire_messages_deliver_immediately() {
        let mut rb = ReliableBcast::new(SiteId(1), 3);
        let o1 = rb.on_wire(SiteId(0), wire(0, 1, "a"));
        assert_eq!(o1.deliveries.len(), 1);
        let o2 = rb.on_wire(SiteId(0), wire(0, 2, "b"));
        assert_eq!(o2.deliveries.len(), 1);
        assert_eq!(rb.delivered_from(SiteId(0)), 2);
    }

    #[test]
    fn out_of_order_messages_are_held_back() {
        let mut rb = ReliableBcast::new(SiteId(1), 3);
        let o2 = rb.on_wire(SiteId(0), wire(0, 2, "b"));
        assert!(o2.deliveries.is_empty());
        assert_eq!(rb.holdback_len(), 1);
        let o1 = rb.on_wire(SiteId(0), wire(0, 1, "a"));
        let got: Vec<_> = o1.deliveries.iter().map(|d| d.payload.as_str()).collect();
        assert_eq!(got, vec!["a", "b"]);
        assert_eq!(rb.holdback_len(), 0);
    }

    #[test]
    fn duplicates_are_suppressed() {
        let mut rb = ReliableBcast::new(SiteId(1), 3);
        assert_eq!(rb.on_wire(SiteId(0), wire(0, 1, "a")).deliveries.len(), 1);
        assert!(rb.on_wire(SiteId(0), wire(0, 1, "a")).deliveries.is_empty());
        assert!(rb.on_wire(SiteId(2), wire(0, 1, "a")).deliveries.is_empty());
    }

    #[test]
    fn fifo_is_per_origin_not_global() {
        let mut rb = ReliableBcast::new(SiteId(2), 3);
        // Origin 1's first message is deliverable even though origin 0's
        // first message is missing.
        assert!(rb.on_wire(SiteId(0), wire(0, 2, "x")).deliveries.is_empty());
        assert_eq!(rb.on_wire(SiteId(1), wire(1, 1, "y")).deliveries.len(), 1);
    }

    #[test]
    fn relay_forwards_first_copy_only() {
        let mut rb = ReliableBcast::new(SiteId(1), 3).with_relay();
        let o1 = rb.on_wire(SiteId(0), wire(0, 1, "a"));
        assert_eq!(o1.outbound.len(), 1, "first copy is relayed");
        let o2 = rb.on_wire(SiteId(2), wire(0, 1, "a"));
        assert!(o2.outbound.is_empty(), "duplicate is not re-relayed");
    }

    #[test]
    fn direct_mode_never_relays() {
        let mut rb = ReliableBcast::new(SiteId(1), 3);
        let o = rb.on_wire(SiteId(0), wire(0, 1, "a"));
        assert!(o.outbound.is_empty());
    }

    #[test]
    fn own_sequence_counts_toward_fifo() {
        let mut rb = ReliableBcast::new(SiteId(0), 2);
        rb.broadcast("a".to_owned());
        rb.broadcast("b".to_owned());
        assert_eq!(rb.delivered_from(SiteId(0)), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn constructor_validates_site() {
        let _ = ReliableBcast::<u8>::new(SiteId(5), 3);
    }

    #[test]
    fn interleaved_origins_each_keep_fifo() {
        let mut rb = ReliableBcast::new(SiteId(2), 4);
        let mut delivered = Vec::new();
        for w in [
            wire(0, 2, "a2"),
            wire(1, 1, "b1"),
            wire(0, 1, "a1"),
            wire(1, 3, "b3"),
            wire(1, 2, "b2"),
        ] {
            for d in rb.on_wire(w.id.origin, w).deliveries {
                delivered.push(d.payload);
            }
        }
        // Per-origin order holds.
        let a: Vec<_> = delivered.iter().filter(|p| p.starts_with('a')).collect();
        let b: Vec<_> = delivered.iter().filter(|p| p.starts_with('b')).collect();
        assert_eq!(a, ["a1", "a2"]);
        assert_eq!(b, ["b1", "b2", "b3"]);
    }

    /// Regression: a peer behind on *two* origins must get retransmissions
    /// for both, even under a cap smaller than either gap. The old
    /// implementation exhausted the whole cap on the lowest-numbered origin,
    /// starving every later origin across sync rounds.
    #[test]
    fn retransmission_cap_is_shared_fairly_across_origins() {
        let mut rb = ReliableBcast::new(SiteId(2), 3);
        // Archive three messages from each of origins 0 and 1.
        for seq in 1..=3u64 {
            rb.on_wire(SiteId(0), wire(0, seq, &format!("a{seq}")));
            rb.on_wire(SiteId(1), wire(1, seq, &format!("b{seq}")));
        }
        // A peer that has delivered nothing syncs with cap 2: it must get
        // the first message of EACH gapped origin, not two from origin 0.
        let out = rb.retransmissions_for(&[0, 0, 0], 2);
        assert_eq!(out.len(), 2);
        let origins: Vec<SiteId> = out.iter().map(|w| w.id.origin).collect();
        assert!(
            origins.contains(&SiteId(0)) && origins.contains(&SiteId(1)),
            "cap must be split across gapped origins, got {origins:?}"
        );
        assert!(
            out.iter().all(|w| w.id.seq == 1),
            "each origin's retransmission starts at its gap"
        );
        // A larger cap round-robins: 2 from each origin before any third.
        let out = rb.retransmissions_for(&[0, 0, 0], 4);
        let from = |s: usize| out.iter().filter(|w| w.id.origin == SiteId(s)).count();
        assert_eq!((from(0), from(1)), (2, 2));
        // Uncapped, everything archived comes back, gap-first per origin.
        let out = rb.retransmissions_for(&[0, 0, 0], 64);
        assert_eq!(out.len(), 6);
        for s in [0usize, 1] {
            let seqs: Vec<u64> = out
                .iter()
                .filter(|w| w.id.origin == SiteId(s))
                .map(|w| w.id.seq)
                .collect();
            assert_eq!(seqs, vec![1, 2, 3]);
        }
    }

    /// Companion to the fairness test for the backed-off solicitation
    /// cadence: sync rounds arrive *rarely* (each round is one solicited
    /// answer), so every round must advance every gapped origin — a peer
    /// behind on many origins converges in rounds proportional to the
    /// deepest gap, not the sum of all gaps.
    #[test]
    fn capped_sync_rounds_advance_every_origin_each_round() {
        let mut rb = ReliableBcast::new(SiteId(3), 4);
        // Origins 0..=2 each archived four messages.
        for origin in 0..3usize {
            for seq in 1..=4u64 {
                rb.on_wire(
                    SiteId(origin),
                    wire(origin, seq, &format!("m{origin}-{seq}")),
                );
            }
        }
        // A fully-lagging peer applies each capped round to its
        // watermarks, as the backoff-spaced sync exchange does.
        let mut peer = ReliableBcast::<String>::new(SiteId(0), 4);
        let mut rounds = 0;
        while peer.watermarks()[..3] != [4, 4, 4] {
            rounds += 1;
            assert!(rounds <= 4, "convergence must take ≤ max-gap rounds");
            let mut batch = rb.retransmissions_for(&peer.watermarks(), 3);
            // Cap 3 split over three origins: exactly one each.
            let mut origins: Vec<usize> = batch.iter().map(|w| w.id.origin.index()).collect();
            origins.sort_unstable();
            assert_eq!(origins, vec![0, 1, 2], "round {rounds} skipped an origin");
            for w in batch.drain(..) {
                peer.on_wire(w.id.origin, w);
            }
        }
        assert_eq!(rounds, 4);
    }
}
