//! Vector clocks.
//!
//! The causal replication protocol of the paper *requires* that "the
//! communication layer must expose the mechanism used for determining causal
//! relationships among messages, e.g., the vector clocks associated with the
//! messages" — both to detect concurrent conflicting operations early and to
//! recognise implicit acknowledgements. [`VectorClock`] is that mechanism.

use bcastdb_sim::SiteId;
use std::cmp::Ordering;
use std::fmt;

/// The causal relationship between two events, per their vector clocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CausalRelation {
    /// `a` happened-before `b`.
    Before,
    /// `b` happened-before `a`.
    After,
    /// Identical clocks.
    Equal,
    /// Neither happened-before the other.
    Concurrent,
}

/// A fixed-width vector clock over the sites of the system.
///
/// Component `i` counts the broadcast events of site `i` known to the
/// clock's owner.
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct VectorClock {
    counts: Vec<u64>,
}

impl VectorClock {
    /// The all-zero clock for a system of `n` sites.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "vector clock needs at least one site");
        VectorClock { counts: vec![0; n] }
    }

    /// Number of sites this clock covers.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True iff the clock covers zero sites (never constructible; kept for
    /// API completeness).
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// The component for `site`.
    ///
    /// # Panics
    /// Panics if `site` is out of range.
    pub fn get(&self, site: SiteId) -> u64 {
        self.counts[site.0]
    }

    /// Sets the component for `site`.
    ///
    /// # Panics
    /// Panics if `site` is out of range.
    pub fn set(&mut self, site: SiteId, value: u64) {
        self.counts[site.0] = value;
    }

    /// Overwrites this clock with `other`, reusing the existing buffer —
    /// the allocation-free alternative to `clone` for per-broadcast
    /// snapshots on the hot path.
    pub fn copy_from(&mut self, other: &VectorClock) {
        self.counts.clone_from(&other.counts);
    }

    /// Increments the component for `site`, returning the new value.
    ///
    /// # Panics
    /// Panics if `site` is out of range.
    pub fn increment(&mut self, site: SiteId) -> u64 {
        self.counts[site.0] += 1;
        self.counts[site.0]
    }

    /// Component-wise maximum with `other`.
    ///
    /// # Panics
    /// Panics if the clocks have different widths.
    pub fn merge(&mut self, other: &VectorClock) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "clock width mismatch"
        );
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// True iff every component of `self` is `<=` the corresponding
    /// component of `other` (i.e. `self` causally precedes or equals).
    pub fn dominated_by(&self, other: &VectorClock) -> bool {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "clock width mismatch"
        );
        self.counts.iter().zip(&other.counts).all(|(a, b)| a <= b)
    }

    /// Classifies the causal relationship between the events stamped with
    /// `self` and `other`.
    ///
    /// # Panics
    /// Panics if the clocks have different widths.
    pub fn relation(&self, other: &VectorClock) -> CausalRelation {
        let le = self.dominated_by(other);
        let ge = other.dominated_by(self);
        match (le, ge) {
            (true, true) => CausalRelation::Equal,
            (true, false) => CausalRelation::Before,
            (false, true) => CausalRelation::After,
            (false, false) => CausalRelation::Concurrent,
        }
    }

    /// True iff the two clocks are causally concurrent (neither dominates).
    pub fn concurrent_with(&self, other: &VectorClock) -> bool {
        self.relation(other) == CausalRelation::Concurrent
    }

    /// Iterates over `(SiteId, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SiteId, u64)> + '_ {
        self.counts.iter().enumerate().map(|(i, &c)| (SiteId(i), c))
    }
}

impl PartialOrd for VectorClock {
    /// Partial order by causality; `None` for concurrent clocks.
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        match self.relation(other) {
            CausalRelation::Before => Some(Ordering::Less),
            CausalRelation::After => Some(Ordering::Greater),
            CausalRelation::Equal => Some(Ordering::Equal),
            CausalRelation::Concurrent => None,
        }
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, c) in self.counts.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn vc(v: &[u64]) -> VectorClock {
        let mut c = VectorClock::new(v.len());
        for (i, &x) in v.iter().enumerate() {
            c.set(SiteId(i), x);
        }
        c
    }

    #[test]
    fn new_is_all_zero() {
        let c = VectorClock::new(3);
        assert_eq!(c.len(), 3);
        for (_, v) in c.iter() {
            assert_eq!(v, 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn zero_width_panics() {
        let _ = VectorClock::new(0);
    }

    #[test]
    fn increment_bumps_only_that_site() {
        let mut c = VectorClock::new(3);
        assert_eq!(c.increment(SiteId(1)), 1);
        assert_eq!(c.get(SiteId(0)), 0);
        assert_eq!(c.get(SiteId(1)), 1);
        assert_eq!(c.get(SiteId(2)), 0);
    }

    #[test]
    fn merge_is_componentwise_max() {
        let mut a = vc(&[1, 5, 0]);
        a.merge(&vc(&[3, 2, 0]));
        assert_eq!(a, vc(&[3, 5, 0]));
    }

    #[test]
    fn relation_classifies_all_cases() {
        assert_eq!(vc(&[1, 0]).relation(&vc(&[1, 1])), CausalRelation::Before);
        assert_eq!(vc(&[2, 1]).relation(&vc(&[1, 1])), CausalRelation::After);
        assert_eq!(vc(&[1, 1]).relation(&vc(&[1, 1])), CausalRelation::Equal);
        assert_eq!(
            vc(&[1, 0]).relation(&vc(&[0, 1])),
            CausalRelation::Concurrent
        );
    }

    #[test]
    fn partial_ord_matches_relation() {
        assert!(vc(&[1, 0]) < vc(&[1, 1]));
        assert!(vc(&[2, 2]) > vc(&[1, 1]));
        assert_eq!(vc(&[1, 0]).partial_cmp(&vc(&[0, 1])), None);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mismatched_widths_panic() {
        let _ = vc(&[1]).relation(&vc(&[1, 2]));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(vc(&[1, 2, 3]).to_string(), "[1,2,3]");
    }

    proptest! {
        #[test]
        fn merge_dominates_both(a in proptest::collection::vec(0u64..50, 4),
                                b in proptest::collection::vec(0u64..50, 4)) {
            let ca = vc(&a);
            let cb = vc(&b);
            let mut m = ca.clone();
            m.merge(&cb);
            prop_assert!(ca.dominated_by(&m));
            prop_assert!(cb.dominated_by(&m));
        }

        #[test]
        fn relation_is_antisymmetric(a in proptest::collection::vec(0u64..10, 3),
                                     b in proptest::collection::vec(0u64..10, 3)) {
            let ca = vc(&a);
            let cb = vc(&b);
            let fwd = ca.relation(&cb);
            let bwd = cb.relation(&ca);
            let expected = match fwd {
                CausalRelation::Before => CausalRelation::After,
                CausalRelation::After => CausalRelation::Before,
                CausalRelation::Equal => CausalRelation::Equal,
                CausalRelation::Concurrent => CausalRelation::Concurrent,
            };
            prop_assert_eq!(bwd, expected);
        }

        #[test]
        fn domination_is_transitive(a in proptest::collection::vec(0u64..10, 3),
                                    b in proptest::collection::vec(0u64..10, 3),
                                    c in proptest::collection::vec(0u64..10, 3)) {
            let (ca, cb, cc) = (vc(&a), vc(&b), vc(&c));
            if ca.dominated_by(&cb) && cb.dominated_by(&cc) {
                prop_assert!(ca.dominated_by(&cc));
            }
        }

        #[test]
        fn merge_is_commutative(a in proptest::collection::vec(0u64..50, 5),
                                b in proptest::collection::vec(0u64..50, 5)) {
            let mut ab = vc(&a);
            ab.merge(&vc(&b));
            let mut ba = vc(&b);
            ba.merge(&vc(&a));
            prop_assert_eq!(ab, ba);
        }

        #[test]
        fn merge_is_idempotent(a in proptest::collection::vec(0u64..50, 5)) {
            let ca = vc(&a);
            let mut m = ca.clone();
            m.merge(&ca);
            prop_assert_eq!(m, ca);
        }
    }
}
