//! Group membership with majority-quorum views.
//!
//! The paper delegates fault tolerance to the communication layer: "the
//! communication layer maintains a view of the current system configuration.
//! As site failures and recovery occur, the view is dynamically restructured
//! using the notion of majority quorums. As long as the view has majority
//! membership, the system remains operational" [Bv94, SS94].
//!
//! [`ViewManager`] is a heartbeat-based implementation of that service:
//! every site periodically broadcasts a heartbeat; a site silent for longer
//! than the suspicion timeout is suspected; a suspicion triggers a view
//! proposal (the unsuspected members, with a higher view id), and sites
//! adopt the highest-id proposal that (a) includes them and (b) contains a
//! **majority of the full site set**. A site finding itself outside every
//! majority view knows it is partitioned away and must block.
//!
//! This is deliberately simpler than full virtual synchrony (no flush
//! protocol / message stability exchange); the replication protocols in
//! `bcastdb-core` re-evaluate in-flight transactions on view change, which
//! makes the weaker service sufficient for the paper's experiments.

use crate::msg::Outbound;
use bcastdb_sim::{SimDuration, SimTime, SiteId};
use std::collections::BTreeSet;

/// A system configuration: a numbered set of live members.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct View {
    /// Monotonically increasing view number.
    pub id: u64,
    /// Members of the view, sorted.
    pub members: BTreeSet<SiteId>,
}

impl View {
    /// The initial view containing all `n` sites.
    pub fn initial(n: usize) -> Self {
        View {
            id: 0,
            members: (0..n).map(SiteId).collect(),
        }
    }

    /// True iff `site` belongs to the view.
    pub fn contains(&self, site: SiteId) -> bool {
        self.members.contains(&site)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True iff the view has no members (never produced by the manager).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// True iff the view holds a strict majority of a system of `n` sites.
    pub fn has_majority_of(&self, n: usize) -> bool {
        2 * self.members.len() > n
    }

    /// The lowest-numbered member — used as the deterministic coordinator
    /// (e.g. the atomic-broadcast sequencer) within a view.
    pub fn coordinator(&self) -> Option<SiteId> {
        self.members.iter().next().copied()
    }
}

/// Wire messages of the membership service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemberWire {
    /// Periodic liveness beacon.
    Heartbeat,
    /// Proposal to install a new view.
    Propose(View),
}

impl crate::batch::WireSize for MemberWire {
    fn wire_size(&self) -> usize {
        match self {
            MemberWire::Heartbeat => 1,
            // tag + view id + one site id per member.
            MemberWire::Propose(v) => 1 + 8 + 8 * v.members.len(),
        }
    }
}

/// Events the membership service reports to its embedding node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemberEvent {
    /// A new view was installed locally.
    ViewInstalled(View),
    /// This site is not in any majority view and must block.
    Isolated,
}

/// A sans-IO heartbeat failure detector plus view installer for one site.
#[derive(Debug)]
pub struct ViewManager {
    me: SiteId,
    n: usize,
    view: View,
    heartbeat_every: SimDuration,
    suspect_after: SimDuration,
    last_heard: Vec<SimTime>,
    last_beat: SimTime,
    operational: bool,
}

impl ViewManager {
    /// Creates a manager for site `me` of an `n`-site system.
    ///
    /// `heartbeat_every` is the beacon period; a site silent for
    /// `suspect_after` is suspected. `suspect_after` should be a small
    /// multiple of `heartbeat_every` plus the worst-case network delay.
    ///
    /// # Panics
    /// Panics if `me` is out of range or the timeouts are zero.
    pub fn new(
        me: SiteId,
        n: usize,
        heartbeat_every: SimDuration,
        suspect_after: SimDuration,
    ) -> Self {
        assert!(me.0 < n, "site {me} out of range for {n} sites");
        assert!(!heartbeat_every.is_zero() && !suspect_after.is_zero());
        ViewManager {
            me,
            n,
            view: View::initial(n),
            heartbeat_every,
            suspect_after,
            last_heard: vec![SimTime::ZERO; n],
            last_beat: SimTime::ZERO,
            operational: true,
        }
    }

    /// The currently installed view.
    pub fn view(&self) -> &View {
        &self.view
    }

    /// True while this site belongs to a majority view.
    pub fn is_operational(&self) -> bool {
        self.operational
    }

    /// Advances local time: emits a heartbeat when due and runs suspicion
    /// checks. Call this from a periodic timer.
    pub fn tick(&mut self, now: SimTime) -> (Vec<MemberEvent>, Vec<Outbound<MemberWire>>) {
        let mut outbound = Vec::new();
        let mut events = Vec::new();
        if now.saturating_since(self.last_beat) >= self.heartbeat_every {
            self.last_beat = now;
            outbound.push(Outbound::others(MemberWire::Heartbeat));
        }
        let alive: BTreeSet<SiteId> = (0..self.n)
            .map(SiteId)
            .filter(|&s| {
                s == self.me || now.saturating_since(self.last_heard[s.0]) < self.suspect_after
            })
            .collect();
        let current: BTreeSet<SiteId> = self.view.members.clone();
        if alive != current {
            let proposal = View {
                id: self.view.id + 1,
                members: alive,
            };
            outbound.push(Outbound::others(MemberWire::Propose(proposal.clone())));
            self.try_install(proposal, now, &mut events);
        }
        (events, outbound)
    }

    /// The view members this site's failure detector currently suspects:
    /// in the installed view, but silent for longer than the suspicion
    /// timeout.
    pub fn suspected(&self, now: SimTime) -> BTreeSet<SiteId> {
        self.suspected_within(now, self.suspect_after)
    }

    /// Like [`ViewManager::suspected`], but with an explicit silence
    /// `window`. The speculative fast-commit path probes with a window
    /// *shorter* than the eviction timeout (a two-level failure detector):
    /// silence past the short window is enough to exclude a site from a
    /// vote quorum speculatively, while eviction — which tears the view —
    /// still waits for the full timeout. Both windows must dwarf the
    /// worst-case link latency for the speculation to be safe.
    pub fn suspected_within(&self, now: SimTime, window: SimDuration) -> BTreeSet<SiteId> {
        self.view
            .members
            .iter()
            .copied()
            .filter(|&s| s != self.me && now.saturating_since(self.last_heard[s.0]) >= window)
            .collect()
    }

    /// Handles an incoming membership wire message.
    pub fn on_wire(
        &mut self,
        from: SiteId,
        wire: MemberWire,
        now: SimTime,
    ) -> (Vec<MemberEvent>, Vec<Outbound<MemberWire>>) {
        self.last_heard[from.0] = now;
        let mut events = Vec::new();
        match wire {
            MemberWire::Heartbeat => {}
            MemberWire::Propose(v) => {
                self.try_install(v, now, &mut events);
            }
        }
        (events, Vec::new())
    }

    /// Records direct evidence of liveness (any application message counts
    /// as a heartbeat).
    pub fn heard_from(&mut self, site: SiteId, now: SimTime) {
        self.last_heard[site.0] = now;
    }

    /// Re-initialises a recovered site from a donor's view (state
    /// transfer): adopts the view, marks every member freshly heard so the
    /// detector does not immediately suspect the whole world, and restores
    /// operation if the view holds a majority.
    pub fn resume(&mut self, view: View, now: SimTime) {
        self.operational = view.contains(self.me) && view.has_majority_of(self.n);
        self.view = view;
        for t in self.last_heard.iter_mut() {
            *t = now;
        }
        self.last_beat = now;
    }

    fn try_install(&mut self, v: View, now: SimTime, events: &mut Vec<MemberEvent>) {
        if v.id <= self.view.id {
            return;
        }
        if !v.contains(self.me) {
            // Someone evicted us: we are on the wrong side of a partition.
            self.operational = false;
            events.push(MemberEvent::Isolated);
            return;
        }
        if !v.has_majority_of(self.n) {
            self.operational = false;
            events.push(MemberEvent::Isolated);
            return;
        }
        // Installing a view is liveness evidence for every member it
        // re-admits: the proposal quotes someone who heard them. Without
        // this refresh a rejoining member this site has not yet heard
        // directly would be re-suspected on the very next tick — before
        // its first heartbeat lands — and the view would flap.
        for &s in &v.members {
            if !self.view.contains(s) && self.last_heard[s.0] < now {
                self.last_heard[s.0] = now;
            }
        }
        self.view = v;
        self.operational = true;
        events.push(MemberEvent::ViewInstalled(self.view.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    fn t(x: u64) -> SimTime {
        SimTime::from_micros(x * 1000)
    }

    #[test]
    fn initial_view_contains_everyone() {
        let v = View::initial(5);
        assert_eq!(v.id, 0);
        assert_eq!(v.len(), 5);
        assert!(v.has_majority_of(5));
        assert_eq!(v.coordinator(), Some(SiteId(0)));
    }

    #[test]
    fn majority_is_strict() {
        let mut v = View::initial(4);
        v.members.remove(&SiteId(3));
        v.members.remove(&SiteId(2));
        assert!(!v.has_majority_of(4), "2 of 4 is not a majority");
        v.members.insert(SiteId(2));
        assert!(v.has_majority_of(4), "3 of 4 is a majority");
    }

    #[test]
    fn heartbeats_emitted_on_schedule() {
        let mut m = ViewManager::new(SiteId(0), 3, ms(10), ms(50));
        // Fresh liveness so nothing is suspected during the test.
        for s in 0..3 {
            m.heard_from(SiteId(s), t(0));
        }
        let (_, out) = m.tick(t(10));
        assert!(out.iter().any(|o| matches!(o.wire, MemberWire::Heartbeat)));
        // Immediately after, no new beat.
        let (_, out) = m.tick(t(11));
        assert!(!out.iter().any(|o| matches!(o.wire, MemberWire::Heartbeat)));
    }

    #[test]
    fn silent_site_gets_suspected_and_view_shrinks() {
        let mut m = ViewManager::new(SiteId(0), 3, ms(10), ms(50));
        // Sites 1 and 2 heard at t=0; site 2 then goes silent.
        m.heard_from(SiteId(1), t(0));
        m.heard_from(SiteId(2), t(0));
        // Keep site 1 alive.
        m.heard_from(SiteId(1), t(40));
        let (events, out) = m.tick(t(55));
        assert!(
            out.iter()
                .any(|o| matches!(&o.wire, MemberWire::Propose(v) if !v.contains(SiteId(2)))),
            "proposal excluding the silent site"
        );
        assert!(matches!(events[..], [MemberEvent::ViewInstalled(_)]));
        assert_eq!(m.view().len(), 2);
        assert!(m.is_operational(), "2 of 3 is a majority");
    }

    #[test]
    fn losing_majority_isolates() {
        let mut m = ViewManager::new(SiteId(0), 5, ms(10), ms(50));
        // Everyone else goes silent.
        let (events, _) = m.tick(t(60));
        assert!(events.contains(&MemberEvent::Isolated));
        assert!(!m.is_operational());
    }

    #[test]
    fn proposal_with_higher_id_wins() {
        let mut m = ViewManager::new(SiteId(1), 3, ms(10), ms(50));
        let v = View {
            id: 3,
            members: [SiteId(0), SiteId(1)].into_iter().collect(),
        };
        let (events, _) = m.on_wire(SiteId(0), MemberWire::Propose(v.clone()), t(1));
        assert_eq!(events, vec![MemberEvent::ViewInstalled(v.clone())]);
        // A stale lower-id proposal is ignored.
        let stale = View {
            id: 2,
            members: [SiteId(1)].into_iter().collect(),
        };
        let (events, _) = m.on_wire(SiteId(2), MemberWire::Propose(stale), t(2));
        assert!(events.is_empty());
        assert_eq!(m.view(), &v);
    }

    #[test]
    fn eviction_proposal_isolates_me() {
        let mut m = ViewManager::new(SiteId(2), 3, ms(10), ms(50));
        let v = View {
            id: 1,
            members: [SiteId(0), SiteId(1)].into_iter().collect(),
        };
        let (events, _) = m.on_wire(SiteId(0), MemberWire::Propose(v), t(1));
        assert_eq!(events, vec![MemberEvent::Isolated]);
        assert!(!m.is_operational());
    }

    #[test]
    fn application_traffic_counts_as_liveness() {
        let mut m = ViewManager::new(SiteId(0), 2, ms(10), ms(50));
        m.heard_from(SiteId(1), t(45));
        let (events, _) = m.tick(t(60));
        assert!(events.is_empty(), "recent app message prevents suspicion");
        assert_eq!(m.view().len(), 2);
    }

    #[test]
    fn heartbeat_wire_refreshes_liveness() {
        let mut m = ViewManager::new(SiteId(0), 2, ms(10), ms(50));
        m.on_wire(SiteId(1), MemberWire::Heartbeat, t(48));
        let (events, _) = m.tick(t(60));
        assert!(events.is_empty());
    }

    /// Crash → recover → rejoin: a site installing a view that re-admits a
    /// recovered member it has not heard from directly must not re-suspect
    /// that member on its next tick. Pre-fix, the install left
    /// `last_heard` stale, so the tick right after it proposed the
    /// member's eviction again and the view flapped.
    #[test]
    fn readmitted_member_is_not_instantly_resuspected() {
        let mut m = ViewManager::new(SiteId(0), 3, ms(10), ms(50));
        m.heard_from(SiteId(1), t(0));
        m.heard_from(SiteId(2), t(0));
        // Site 2 crashes; keep site 1 alive past the suspicion timeout.
        m.heard_from(SiteId(1), t(40));
        let (events, _) = m.tick(t(55));
        assert!(matches!(events[..], [MemberEvent::ViewInstalled(_)]));
        assert_eq!(m.view().len(), 2, "view shrank to the survivors");
        // Site 1 stays alive; site 2 recovers much later and site 1 (who
        // heard its first heartbeat) proposes re-admission. Site 0 has not
        // heard site 2 itself yet — its last_heard[2] is stale.
        m.heard_from(SiteId(1), t(90));
        let readmit = View {
            id: m.view().id + 1,
            members: [SiteId(0), SiteId(1), SiteId(2)].into_iter().collect(),
        };
        let (events, _) = m.on_wire(SiteId(1), MemberWire::Propose(readmit.clone()), t(100));
        assert_eq!(events, vec![MemberEvent::ViewInstalled(readmit.clone())]);
        // The very next tick must keep the rejoiner: installing the view
        // counted as hearing it.
        let (events, out) = m.tick(t(101));
        assert!(
            events.is_empty(),
            "rejoiner re-suspected before its first heartbeat: {events:?}"
        );
        assert!(
            !out.iter()
                .any(|o| matches!(&o.wire, MemberWire::Propose(v) if !v.contains(SiteId(2)))),
            "tick right after re-admission proposed evicting the rejoiner"
        );
        assert_eq!(m.view(), &readmit);
    }

    /// The suspected set is exactly the stale view members, never me.
    #[test]
    fn suspected_set_tracks_stale_members() {
        let mut m = ViewManager::new(SiteId(0), 3, ms(10), ms(50));
        m.heard_from(SiteId(1), t(40));
        m.heard_from(SiteId(2), t(1));
        let s = m.suspected(t(60));
        assert_eq!(s.into_iter().collect::<Vec<_>>(), vec![SiteId(2)]);
        assert!(m.suspected(t(41)).is_empty());
    }

    #[test]
    fn coordinator_moves_after_eviction() {
        let v = View {
            id: 1,
            members: [SiteId(1), SiteId(2)].into_iter().collect(),
        };
        assert_eq!(v.coordinator(), Some(SiteId(1)));
    }
}
