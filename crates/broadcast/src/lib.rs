//! # bcastdb-broadcast
//!
//! Broadcast primitives and group membership for `bcastdb`, the reproduction
//! of *"Using Broadcast Primitives in Replicated Databases"* (Stanoi,
//! Agrawal, El Abbadi — ICDCS 1998).
//!
//! The paper layers its replication protocols on three progressively
//! stronger broadcast primitives, all specified per Hadzilacos & Toueg
//! \[HT93\]:
//!
//! - [`reliable::ReliableBcast`] — *validity*, *agreement*, *integrity*,
//!   plus per-origin FIFO (the paper assumes FIFO links);
//! - [`causal::CausalBcast`] — reliable broadcast + causal delivery order,
//!   with the vector clock of every delivery **exposed to the application
//!   layer** (the causal replication protocol requires this to detect
//!   concurrent conflicting operations and implicit acknowledgements);
//! - [`atomic::SequencerAbcast`] / [`atomic::IsisAbcast`] /
//!   [`ring::RingAbcast`] — total-order broadcast, in three classical
//!   implementations whose cost difference is the subject of ablation
//!   experiment A1 (the pipelined ring stays bandwidth-bound as the group
//!   grows where the other two go leader-bound).
//!
//! [`membership::ViewManager`] provides majority-quorum views: "as long as
//! the view has majority membership, the system remains operational".
//!
//! All engines are *sans-IO*: they consume wire messages and produce
//! `(destination, wire)` pairs plus application deliveries, so they can be
//! unit-tested exhaustively and embedded in any transport (here, the
//! deterministic simulator in `bcastdb-sim`).
//!
//! # Example: causal order end to end
//!
//! ```
//! use bcastdb_broadcast::CausalBcast;
//! use bcastdb_sim::SiteId;
//!
//! let mut a = CausalBcast::new(SiteId(0), 3);
//! let mut b = CausalBcast::new(SiteId(1), 3);
//! let mut c = CausalBcast::new(SiteId(2), 3);
//!
//! // a broadcasts m1; b delivers it and replies with m2 (causally after).
//! let (_, out1) = a.broadcast("m1");
//! let w1 = out1.outbound[0].wire.clone();
//! b.on_wire(SiteId(0), w1.clone());
//! let (_, out2) = b.broadcast("m2");
//! let w2 = out2.outbound[0].wire.clone();
//!
//! // c receives them in the wrong order: m2 is held back until m1 arrives.
//! assert!(c.on_wire(SiteId(1), w2).deliveries.is_empty());
//! let delivered = c.on_wire(SiteId(0), w1).deliveries;
//! let payloads: Vec<_> = delivered.iter().map(|d| d.payload).collect();
//! assert_eq!(payloads, ["m1", "m2"]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomic;
pub mod batch;
pub mod causal;
pub mod fifo;
pub mod membership;
pub mod msg;
pub mod reliable;
pub mod ring;
pub mod vclock;

pub use atomic::{AtomicBcast, IsisAbcast, SequencerAbcast};
pub use batch::{Batch, Batcher, WireSize};
pub use causal::CausalBcast;
pub use fifo::FifoBcast;
pub use membership::{View, ViewManager};
pub use msg::{Dest, MsgId, Outbound};
pub use reliable::ReliableBcast;
pub use ring::{RingAbcast, RingWire};
pub use vclock::{CausalRelation, VectorClock};
