//! Atomic (total-order) broadcast.
//!
//! The strongest primitive in the paper (§5): all sites deliver all messages
//! in the same total order. The paper notes atomic broadcast is "both
//! expensive and complex to implement in asynchronous systems that are
//! subject to failures" — ablation experiment A1 quantifies the cost with
//! two classical implementations:
//!
//! - [`SequencerAbcast`] — a fixed sequencer assigns global sequence
//!   numbers; ~`N+1` point-to-point messages and 2 latency hops per
//!   broadcast (used by Amoeba \[KT91\]);
//! - [`IsisAbcast`] — the decentralized ISIS/Skeen algorithm: every site
//!   proposes a Lamport priority, the origin picks the maximum and
//!   finalizes; `3(N-1)` messages and 3 hops per broadcast \[Bv94\].
//!
//! Both deliver [`TotalDelivery`] values carrying a dense global sequence
//! number, identical at every site.

use crate::msg::{MsgId, Outbound};
use bcastdb_sim::inline::InlineVec;
use bcastdb_sim::SiteId;
use std::collections::{BTreeMap, HashMap, HashSet};

/// A total-order delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TotalDelivery<P> {
    /// Dense global sequence number (identical at every site).
    pub gseq: u64,
    /// Identity of the broadcast.
    pub id: MsgId,
    /// Application payload.
    pub payload: P,
}

/// Result of feeding an atomic-broadcast engine one input.
///
/// Both lists use inline storage: a step almost always yields at most a
/// couple of deliveries and outbound bundles (ISIS answers with one
/// proposal or final per input), so the common case constructs no heap
/// allocation at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Output<P, W> {
    /// Messages now deliverable, in total order.
    pub deliveries: InlineVec<TotalDelivery<P>, 2>,
    /// Wire messages to hand to the transport.
    pub outbound: InlineVec<Outbound<W>, 2>,
}

impl<P, W> Output<P, W> {
    pub(crate) fn empty() -> Self {
        Output {
            deliveries: InlineVec::new(),
            outbound: InlineVec::new(),
        }
    }
}

/// Common interface of the two atomic broadcast implementations.
///
/// Sealed in spirit: the replication layer is generic over this trait only
/// to swap implementations in the A1 ablation.
pub trait AtomicBcast<P: Clone> {
    /// Wire message type of this implementation.
    type Wire: Clone;

    /// Initiates a total-order broadcast of `payload`.
    fn broadcast(&mut self, payload: P) -> (MsgId, Output<P, Self::Wire>);

    /// Handles an incoming wire message.
    fn on_wire(&mut self, from: SiteId, wire: Self::Wire) -> Output<P, Self::Wire>;

    /// Number of messages delivered so far (== next gseq).
    fn delivered_count(&self) -> u64;
}

// ---------------------------------------------------------------------------
// Fixed-sequencer implementation
// ---------------------------------------------------------------------------

/// Wire messages of [`SequencerAbcast`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeqWire<P> {
    /// Origin → sequencer: please order this message.
    Submit {
        /// Identity assigned by the origin.
        id: MsgId,
        /// Application payload.
        payload: P,
    },
    /// Sequencer → everyone: message `id` is global number `gseq`.
    Ordered {
        /// Global sequence number.
        gseq: u64,
        /// Identity of the ordered message.
        id: MsgId,
        /// Application payload.
        payload: P,
    },
}

impl<P: crate::batch::WireSize> crate::batch::WireSize for SeqWire<P> {
    fn wire_size(&self) -> usize {
        match self {
            SeqWire::Submit { id, payload } => id.wire_size() + payload.wire_size(),
            SeqWire::Ordered { id, payload, .. } => 8 + id.wire_size() + payload.wire_size(),
        }
    }
}

/// Fixed-sequencer atomic broadcast.
#[derive(Debug)]
pub struct SequencerAbcast<P> {
    me: SiteId,
    sequencer: SiteId,
    next_seq: u64,
    /// Sequencer state: next global number to assign.
    next_gseq_assign: u64,
    /// Sequencer state: ids already ordered (dedup on re-submission).
    ordered_ids: HashSet<MsgId>,
    /// Receiver state: next global number to deliver.
    next_gseq_deliver: u64,
    /// Receiver state: out-of-order ordered messages.
    holdback: BTreeMap<u64, (MsgId, P)>,
}

impl<P: Clone> SequencerAbcast<P> {
    /// Creates an engine for site `me` of an `n`-site system; site 0 is the
    /// sequencer.
    ///
    /// # Panics
    /// Panics if `me` is not a valid site of an `n`-site system.
    pub fn new(me: SiteId, n: usize) -> Self {
        assert!(me.0 < n, "site {me} out of range for {n} sites");
        SequencerAbcast {
            me,
            sequencer: SiteId(0),
            next_seq: 0,
            next_gseq_assign: 0,
            ordered_ids: HashSet::new(),
            next_gseq_deliver: 0,
            holdback: BTreeMap::new(),
        }
    }

    /// The current sequencer site.
    pub fn sequencer(&self) -> SiteId {
        self.sequencer
    }

    /// The next global sequence number this site would deliver.
    pub fn delivered_watermark(&self) -> u64 {
        self.next_gseq_deliver
    }

    /// Resumes a recovered engine at a donor's delivery watermark (earlier
    /// messages arrive via state transfer, not redelivery).
    pub fn resume_from(&mut self, watermark: u64) {
        self.next_gseq_deliver = self.next_gseq_deliver.max(watermark);
        self.next_gseq_assign = self.next_gseq_assign.max(watermark);
        self.holdback.clear();
    }

    /// Re-designates the sequencer (view change after the old one crashed).
    /// The new sequencer resumes numbering after the highest number it has
    /// itself delivered, which is safe when the old sequencer's undelivered
    /// assignments died with it.
    pub fn set_sequencer(&mut self, s: SiteId) {
        self.sequencer = s;
        if self.me == s {
            self.next_gseq_assign = self.next_gseq_assign.max(self.next_gseq_deliver);
        }
    }

    fn order(&mut self, id: MsgId, payload: P) -> Output<P, SeqWire<P>> {
        if !self.ordered_ids.insert(id) {
            return Output::empty(); // duplicate submission
        }
        let gseq = self.next_gseq_assign;
        self.next_gseq_assign += 1;
        let mut out = Output::empty();
        out.outbound.push(Outbound::others(SeqWire::Ordered {
            gseq,
            id,
            payload: payload.clone(),
        }));
        self.enqueue_ordered(gseq, id, payload, &mut out);
        out
    }

    fn enqueue_ordered(
        &mut self,
        gseq: u64,
        id: MsgId,
        payload: P,
        out: &mut Output<P, SeqWire<P>>,
    ) {
        if gseq >= self.next_gseq_deliver {
            self.holdback.insert(gseq, (id, payload));
        }
        while let Some((id, payload)) = self.holdback.remove(&self.next_gseq_deliver) {
            out.deliveries.push(TotalDelivery {
                gseq: self.next_gseq_deliver,
                id,
                payload,
            });
            self.next_gseq_deliver += 1;
        }
    }
}

impl<P: Clone> AtomicBcast<P> for SequencerAbcast<P> {
    type Wire = SeqWire<P>;

    fn broadcast(&mut self, payload: P) -> (MsgId, Output<P, SeqWire<P>>) {
        self.next_seq += 1;
        let id = MsgId {
            origin: self.me,
            seq: self.next_seq,
        };
        if self.me == self.sequencer {
            (id, self.order(id, payload))
        } else {
            let mut out = Output::empty();
            out.outbound.push(Outbound::to(
                self.sequencer,
                SeqWire::Submit { id, payload },
            ));
            (id, out)
        }
    }

    fn on_wire(&mut self, _from: SiteId, wire: SeqWire<P>) -> Output<P, SeqWire<P>> {
        match wire {
            SeqWire::Submit { id, payload } => {
                if self.me != self.sequencer {
                    // Stale submission addressed to a deposed sequencer.
                    return Output::empty();
                }
                self.order(id, payload)
            }
            SeqWire::Ordered { gseq, id, payload } => {
                let mut out = Output::empty();
                self.enqueue_ordered(gseq, id, payload, &mut out);
                out
            }
        }
    }

    fn delivered_count(&self) -> u64 {
        self.next_gseq_deliver
    }
}

// ---------------------------------------------------------------------------
// ISIS-style implementation
// ---------------------------------------------------------------------------

/// A message priority: a Lamport timestamp with the proposing site as the
/// tie-break. Globally unique because every site increments its own
/// timestamp per proposal.
pub type Priority = (u64, SiteId);

/// Wire messages of [`IsisAbcast`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsisWire<P> {
    /// Origin → everyone else: here is the payload, propose a priority.
    Data {
        /// Identity assigned by the origin.
        id: MsgId,
        /// Application payload.
        payload: P,
    },
    /// Receiver → origin: proposed priority.
    Propose {
        /// Which message the proposal is for.
        id: MsgId,
        /// The proposed priority.
        prio: Priority,
    },
    /// Origin → everyone else: agreed final priority.
    Final {
        /// Which message is finalized.
        id: MsgId,
        /// The agreed (maximum) priority.
        prio: Priority,
    },
}

impl<P: crate::batch::WireSize> crate::batch::WireSize for IsisWire<P> {
    fn wire_size(&self) -> usize {
        match self {
            IsisWire::Data { id, payload } => id.wire_size() + payload.wire_size(),
            // A priority is (u64, SiteId): 16 bytes.
            IsisWire::Propose { id, .. } | IsisWire::Final { id, .. } => id.wire_size() + 16,
        }
    }
}

#[derive(Debug)]
struct IsisEntry<P> {
    prio: Priority,
    is_final: bool,
    payload: P,
}

/// ISIS-style decentralized atomic broadcast (Skeen's algorithm).
#[derive(Debug)]
pub struct IsisAbcast<P> {
    me: SiteId,
    n: usize,
    next_seq: u64,
    lamport: u64,
    /// Messages not yet delivered, keyed by id.
    pending: BTreeMap<MsgId, IsisEntry<P>>,
    /// Every id this site has ever accepted (pending *or* delivered).
    /// Duplicate suppression must outlive delivery: a late network
    /// duplicate of a delivered `Data` would otherwise re-insert a
    /// pending entry that can never finalize, wedging the holdback.
    seen: HashSet<MsgId>,
    /// Proposals collected by this site for its own broadcasts.
    proposals: HashMap<MsgId, Vec<Priority>>,
    delivered: u64,
}

impl<P: Clone> IsisAbcast<P> {
    /// Creates an engine for site `me` of an `n`-site system.
    ///
    /// # Panics
    /// Panics if `me` is not a valid site of an `n`-site system.
    pub fn new(me: SiteId, n: usize) -> Self {
        assert!(me.0 < n, "site {me} out of range for {n} sites");
        IsisAbcast {
            me,
            n,
            next_seq: 0,
            lamport: 0,
            pending: BTreeMap::new(),
            seen: HashSet::new(),
            proposals: HashMap::new(),
            delivered: 0,
        }
    }

    /// Number of messages awaiting finalization or delivery.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The donor-visible logical clock (for state transfer).
    pub fn lamport(&self) -> u64 {
        self.lamport
    }

    /// Resumes a recovered engine: adopts a donor's logical clock and
    /// delivered count, dropping stale pending agreement state.
    pub fn resume_from(&mut self, lamport: u64, delivered: u64) {
        self.lamport = self.lamport.max(lamport);
        self.delivered = self.delivered.max(delivered);
        self.pending.clear();
        self.proposals.clear();
    }

    fn propose(&mut self) -> Priority {
        self.lamport += 1;
        (self.lamport, self.me)
    }

    fn finalize(&mut self, id: MsgId, prio: Priority, out: &mut Output<P, IsisWire<P>>) {
        self.lamport = self.lamport.max(prio.0);
        if let Some(e) = self.pending.get_mut(&id) {
            e.prio = prio;
            e.is_final = true;
        }
        self.drain_deliverable(out);
    }

    /// Delivers finalized messages whose priority is minimal among all
    /// pending messages.
    fn drain_deliverable(&mut self, out: &mut Output<P, IsisWire<P>>) {
        while let Some((&id, entry)) = self
            .pending
            .iter()
            .min_by_key(|(id, e)| (e.prio, id.origin, id.seq))
        {
            if !entry.is_final {
                break;
            }
            let e = self.pending.remove(&id).expect("entry just observed");
            out.deliveries.push(TotalDelivery {
                gseq: self.delivered,
                id,
                payload: e.payload,
            });
            self.delivered += 1;
        }
    }

    fn collect_proposal(&mut self, id: MsgId, prio: Priority, out: &mut Output<P, IsisWire<P>>) {
        // Only an origin still awaiting finalization collects: a stale
        // or duplicated Propose after the Final went out (or after
        // delivery) must not re-open the vote.
        match self.pending.get(&id) {
            Some(e) if !e.is_final => {}
            _ => return,
        }
        let props = self.proposals.entry(id).or_default();
        // One vote per proposer (`prio.1` is the proposing site): a
        // duplicated Propose must not reach the n-count early, or the
        // final priority could miss a proposer and undercut an
        // outstanding proposal — breaking the holdback's lower bound.
        if props.iter().any(|p| p.1 == prio.1) {
            return;
        }
        props.push(prio);
        if props.len() == self.n {
            let final_prio = *props.iter().max().expect("non-empty");
            self.proposals.remove(&id);
            out.outbound.push(Outbound::others(IsisWire::Final {
                id,
                prio: final_prio,
            }));
            self.finalize(id, final_prio, out);
        }
    }
}

impl<P: Clone> AtomicBcast<P> for IsisAbcast<P> {
    type Wire = IsisWire<P>;

    fn broadcast(&mut self, payload: P) -> (MsgId, Output<P, IsisWire<P>>) {
        self.next_seq += 1;
        let id = MsgId {
            origin: self.me,
            seq: self.next_seq,
        };
        let mut out = Output::empty();
        out.outbound.push(Outbound::others(IsisWire::Data {
            id,
            payload: payload.clone(),
        }));
        let own = self.propose();
        self.seen.insert(id);
        self.pending.insert(
            id,
            IsisEntry {
                prio: own,
                is_final: false,
                payload,
            },
        );
        self.collect_proposal(id, own, &mut out);
        (id, out)
    }

    fn on_wire(&mut self, _from: SiteId, wire: IsisWire<P>) -> Output<P, IsisWire<P>> {
        let mut out = Output::empty();
        match wire {
            IsisWire::Data { id, payload } => {
                if !self.seen.insert(id) {
                    return out; // duplicate (pending or already delivered)
                }
                let prio = self.propose();
                self.pending.insert(
                    id,
                    IsisEntry {
                        prio,
                        is_final: false,
                        payload,
                    },
                );
                out.outbound
                    .push(Outbound::to(id.origin, IsisWire::Propose { id, prio }));
            }
            IsisWire::Propose { id, prio } => {
                self.collect_proposal(id, prio, &mut out);
            }
            IsisWire::Final { id, prio } => {
                self.finalize(id, prio, &mut out);
            }
        }
        out
    }

    fn delivered_count(&self) -> u64 {
        self.delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::expand_dest;
    use std::collections::VecDeque;

    /// Runs a fleet of engines to quiescence with a FIFO per-link network,
    /// returning each site's delivery log. `drop_filter` can suppress
    /// individual (from, to, nth-message) sends to test reordering.
    fn run_fleet<A, P>(engines: &mut [A], kicks: Vec<(usize, P)>) -> Vec<Vec<(u64, P)>>
    where
        A: AtomicBcast<P>,
        P: Clone + PartialEq + std::fmt::Debug,
    {
        let n = engines.len();
        let mut logs: Vec<Vec<(u64, P)>> = vec![Vec::new(); n];
        let mut queue: VecDeque<(SiteId, SiteId, A::Wire)> = VecDeque::new();
        let push = |out: Output<P, A::Wire>,
                    me: SiteId,
                    logs: &mut Vec<Vec<(u64, P)>>,
                    queue: &mut VecDeque<(SiteId, SiteId, A::Wire)>| {
            for d in out.deliveries {
                logs[me.0].push((d.gseq, d.payload));
            }
            for ob in out.outbound {
                for to in expand_dest(ob.dest, me, n) {
                    queue.push_back((me, to, ob.wire.clone()));
                }
            }
        };
        for (site, payload) in kicks {
            let (_, out) = engines[site].broadcast(payload);
            push(out, SiteId(site), &mut logs, &mut queue);
        }
        while let Some((from, to, wire)) = queue.pop_front() {
            let out = engines[to.0].on_wire(from, wire);
            push(out, to, &mut logs, &mut queue);
        }
        logs
    }

    fn seq_engines(n: usize) -> Vec<SequencerAbcast<String>> {
        (0..n).map(|i| SequencerAbcast::new(SiteId(i), n)).collect()
    }

    fn isis_engines(n: usize) -> Vec<IsisAbcast<String>> {
        (0..n).map(|i| IsisAbcast::new(SiteId(i), n)).collect()
    }

    fn assert_total_order(logs: &[Vec<(u64, String)>], expected_count: usize) {
        for (i, log) in logs.iter().enumerate() {
            assert_eq!(log.len(), expected_count, "site {i} delivered all");
            assert_eq!(log, &logs[0], "site {i} agrees with site 0");
            for (k, (gseq, _)) in log.iter().enumerate() {
                assert_eq!(*gseq, k as u64, "dense gseq at site {i}");
            }
        }
    }

    #[test]
    fn sequencer_total_order_basic() {
        let mut es = seq_engines(3);
        let logs = run_fleet(
            &mut es,
            vec![
                (1, "a".to_owned()),
                (2, "b".to_owned()),
                (0, "c".to_owned()),
            ],
        );
        assert_total_order(&logs, 3);
    }

    #[test]
    fn isis_total_order_basic() {
        let mut es = isis_engines(3);
        let logs = run_fleet(
            &mut es,
            vec![
                (1, "a".to_owned()),
                (2, "b".to_owned()),
                (0, "c".to_owned()),
            ],
        );
        assert_total_order(&logs, 3);
    }

    #[test]
    fn sequencer_many_messages_many_sites() {
        let n = 5;
        let mut es = seq_engines(n);
        let kicks: Vec<_> = (0..20).map(|i| (i % n, format!("m{i}"))).collect();
        let logs = run_fleet(&mut es, kicks);
        assert_total_order(&logs, 20);
    }

    #[test]
    fn isis_many_messages_many_sites() {
        let n = 5;
        let mut es = isis_engines(n);
        let kicks: Vec<_> = (0..20).map(|i| (i % n, format!("m{i}"))).collect();
        let logs = run_fleet(&mut es, kicks);
        assert_total_order(&logs, 20);
    }

    #[test]
    fn isis_single_site_delivers_immediately() {
        let mut e = IsisAbcast::new(SiteId(0), 1);
        let (_, out) = e.broadcast("solo".to_owned());
        assert_eq!(out.deliveries.len(), 1);
        assert_eq!(out.deliveries[0].gseq, 0);
    }

    #[test]
    fn sequencer_self_broadcast_by_sequencer() {
        let mut e = SequencerAbcast::new(SiteId(0), 3);
        let (_, out) = e.broadcast("x".to_owned());
        assert_eq!(
            out.deliveries.len(),
            1,
            "sequencer delivers its own immediately"
        );
        assert_eq!(out.outbound.len(), 1);
    }

    #[test]
    fn sequencer_holdback_reorders_gseq() {
        let mut e = SequencerAbcast::<String>::new(SiteId(2), 3);
        let id1 = MsgId {
            origin: SiteId(0),
            seq: 1,
        };
        let id2 = MsgId {
            origin: SiteId(1),
            seq: 1,
        };
        // gseq 1 arrives before gseq 0 (cross-link reordering).
        let out = e.on_wire(
            SiteId(0),
            SeqWire::Ordered {
                gseq: 1,
                id: id2,
                payload: "b".into(),
            },
        );
        assert!(out.deliveries.is_empty());
        let out = e.on_wire(
            SiteId(0),
            SeqWire::Ordered {
                gseq: 0,
                id: id1,
                payload: "a".into(),
            },
        );
        let got: Vec<_> = out.deliveries.iter().map(|d| d.payload.as_str()).collect();
        assert_eq!(got, vec!["a", "b"]);
    }

    #[test]
    fn sequencer_dedups_resubmission() {
        let mut e = SequencerAbcast::<String>::new(SiteId(0), 3);
        let id = MsgId {
            origin: SiteId(1),
            seq: 1,
        };
        let o1 = e.on_wire(
            SiteId(1),
            SeqWire::Submit {
                id,
                payload: "p".into(),
            },
        );
        assert_eq!(o1.outbound.len(), 1);
        let o2 = e.on_wire(
            SiteId(1),
            SeqWire::Submit {
                id,
                payload: "p".into(),
            },
        );
        assert!(o2.outbound.is_empty());
    }

    #[test]
    fn non_sequencer_ignores_submissions() {
        let mut e = SequencerAbcast::<String>::new(SiteId(1), 3);
        let id = MsgId {
            origin: SiteId(2),
            seq: 1,
        };
        let out = e.on_wire(
            SiteId(2),
            SeqWire::Submit {
                id,
                payload: "p".into(),
            },
        );
        assert!(out.outbound.is_empty());
        assert!(out.deliveries.is_empty());
    }

    #[test]
    fn sequencer_failover_resumes_numbering() {
        let mut es = seq_engines(3);
        let logs = run_fleet(&mut es, vec![(1, "a".to_owned())]);
        assert_total_order(&logs, 1);
        // Site 0 "crashes"; site 1 takes over and keeps going.
        for e in es.iter_mut() {
            e.set_sequencer(SiteId(1));
        }
        let (_, out) = es[1].broadcast("b".to_owned());
        assert_eq!(out.deliveries.len(), 1);
        assert_eq!(
            out.deliveries[0].gseq, 1,
            "numbering continues after failover"
        );
    }

    #[test]
    fn isis_message_complexity_is_3n_minus_3() {
        // One broadcast in a 4-site system: 3 Data + 3 Propose + 3 Final.
        let n = 4;
        let mut es = isis_engines(n);
        let mut wires = 0usize;
        let mut queue: VecDeque<(SiteId, SiteId, IsisWire<String>)> = VecDeque::new();
        let (_, out) = es[0].broadcast("m".to_owned());
        for ob in out.outbound {
            for to in expand_dest(ob.dest, SiteId(0), n) {
                wires += 1;
                queue.push_back((SiteId(0), to, ob.wire.clone()));
            }
        }
        while let Some((from, to, wire)) = queue.pop_front() {
            let out = es[to.0].on_wire(from, wire);
            for ob in out.outbound {
                for dest in expand_dest(ob.dest, to, n) {
                    wires += 1;
                    queue.push_back((to, dest, ob.wire.clone()));
                }
            }
        }
        assert_eq!(wires, 3 * (n - 1));
    }

    #[test]
    fn isis_priorities_are_unique_and_monotone() {
        let mut e = IsisAbcast::<String>::new(SiteId(0), 2);
        let p1 = e.propose();
        let p2 = e.propose();
        assert!(p2 > p1);
    }

    #[test]
    fn isis_concurrent_broadcasts_do_not_interleave_wrongly() {
        // Two sites broadcast simultaneously; with synchronous rounds the
        // final priorities still produce a single agreed order.
        let n = 3;
        let mut es = isis_engines(n);
        let logs = run_fleet(&mut es, vec![(0, "x".to_owned()), (1, "y".to_owned())]);
        assert_total_order(&logs, 2);
    }
}
