//! Message batching and piggybacking for the broadcast layer.
//!
//! The paper's protocols cut the *number* of messages a transaction needs,
//! but every remaining message still pays a full wire transmission. Under a
//! finite-bandwidth link model that per-message cost dominates long before
//! the protocol logic saturates — the classic remedy in group communication
//! systems (ISIS-style message packing) is to coalesce outgoing messages
//! per destination and let acknowledgement-shaped traffic ride along with
//! whatever is leaving anyway.
//!
//! [`Batcher`] is that mechanism, kept sans-IO like the broadcast engines:
//! the embedding node pushes wire messages tagged with their destination,
//! and the batcher hands back full batches when a size cap would overflow
//! or when the node's flush window expires ([`Batcher::flush_all`]). The
//! batcher never reorders: messages to one destination leave in push order,
//! so per-link FIFO is preserved end to end. Piggybacking falls out of the
//! design for free — a sequencer ack, stability ack, or 2PC vote pushed
//! between two data messages simply shares their batch instead of occupying
//! its own wire transmission.
//!
//! Accounting contract: the embedding layer counts *logical* messages when
//! they are pushed (so per-phase protocol accounting is independent of
//! batching) and *wire* transmissions when batches flush. With batching
//! disabled the batcher is never constructed and the send path is
//! unchanged.

use crate::msg::MsgId;
use bcastdb_sim::SiteId;
use std::collections::BTreeMap;

/// Fixed per-batch framing overhead (envelope header), in bytes.
pub const BATCH_HEADER_BYTES: usize = 8;

/// Fixed per-message framing overhead inside a batch (length prefix +
/// message tag), in bytes.
pub const PER_MSG_OVERHEAD_BYTES: usize = 2;

/// Estimated serialized size of a wire message, in bytes.
///
/// The simulator charges transmission time per byte, so these estimates
/// only need to be *consistent*, not exact: every implementation is a
/// deterministic function of the message structure.
pub trait WireSize {
    /// Estimated serialized size in bytes.
    fn wire_size(&self) -> usize;
}

impl WireSize for MsgId {
    fn wire_size(&self) -> usize {
        16 // origin (8) + per-origin sequence number (8)
    }
}

impl<T: WireSize + ?Sized> WireSize for std::sync::Arc<T> {
    /// A shared payload serializes exactly like the payload itself — the
    /// `Arc` exists only so an N-site fan-out can share one allocation.
    fn wire_size(&self) -> usize {
        (**self).wire_size()
    }
}

/// A flushed batch: every message pushed for `to` since the last flush,
/// in push order, plus the wire size of the whole envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch<M> {
    /// Destination site.
    pub to: SiteId,
    /// The coalesced messages, in push order.
    pub msgs: Vec<M>,
    /// Wire size of the envelope: header + framed payloads.
    pub bytes: usize,
}

#[derive(Debug)]
struct Pending<M> {
    msgs: Vec<M>,
    bytes: usize,
}

impl<M> Pending<M> {
    fn new() -> Self {
        Pending {
            msgs: Vec::new(),
            bytes: BATCH_HEADER_BYTES,
        }
    }
}

/// Coalesces outgoing wire messages per destination up to a size cap.
///
/// Deterministic by construction: pending destinations are kept in a
/// `BTreeMap`, so [`Batcher::flush_all`] always drains in ascending site
/// order regardless of push order.
#[derive(Debug)]
pub struct Batcher<M> {
    max_bytes: usize,
    pending: BTreeMap<SiteId, Pending<M>>,
}

impl<M: WireSize> Batcher<M> {
    /// Creates a batcher whose batches never exceed `max_bytes` (envelope
    /// included) unless a single message alone is larger than the cap.
    pub fn new(max_bytes: usize) -> Self {
        Batcher {
            max_bytes: max_bytes.max(BATCH_HEADER_BYTES + PER_MSG_OVERHEAD_BYTES + 1),
            pending: BTreeMap::new(),
        }
    }

    /// The configured size cap in bytes.
    pub fn max_bytes(&self) -> usize {
        self.max_bytes
    }

    /// Queues `msg` for `to`. If adding it would push the pending batch
    /// over the size cap, the pending batch is returned (ready to send)
    /// and `msg` starts the next one.
    pub fn push(&mut self, to: SiteId, msg: M) -> Option<Batch<M>> {
        let framed = PER_MSG_OVERHEAD_BYTES + msg.wire_size();
        let slot = self.pending.entry(to).or_insert_with(Pending::new);
        let full = if !slot.msgs.is_empty() && slot.bytes + framed > self.max_bytes {
            let done = std::mem::replace(slot, Pending::new());
            Some(Batch {
                to,
                msgs: done.msgs,
                bytes: done.bytes,
            })
        } else {
            None
        };
        let slot = self.pending.get_mut(&to).expect("slot just ensured");
        slot.msgs.push(msg);
        slot.bytes += framed;
        full
    }

    /// True iff nothing is queued for any destination.
    pub fn is_empty(&self) -> bool {
        self.pending.values().all(|p| p.msgs.is_empty())
    }

    /// Number of messages currently queued for `to`.
    pub fn pending_for(&self, to: SiteId) -> usize {
        self.pending.get(&to).map_or(0, |p| p.msgs.len())
    }

    /// Total messages currently queued across all destinations.
    pub fn pending_msgs(&self) -> usize {
        self.pending.values().map(|p| p.msgs.len()).sum()
    }

    /// Total envelope bytes currently queued across all destinations
    /// (header included for each non-empty pending batch).
    pub fn pending_bytes(&self) -> usize {
        self.pending
            .values()
            .filter(|p| !p.msgs.is_empty())
            .map(|p| p.bytes)
            .sum()
    }

    /// Drains every pending batch, in ascending destination order.
    pub fn flush_all(&mut self) -> Vec<Batch<M>> {
        let drained = std::mem::take(&mut self.pending);
        drained
            .into_iter()
            .filter(|(_, p)| !p.msgs.is_empty())
            .map(|(to, p)| Batch {
                to,
                msgs: p.msgs,
                bytes: p.bytes,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test message with an explicit size.
    #[derive(Debug, Clone, PartialEq)]
    struct Sized(u64, usize);

    impl WireSize for Sized {
        fn wire_size(&self) -> usize {
            self.1
        }
    }

    #[test]
    fn messages_coalesce_per_destination_in_push_order() {
        let mut b = Batcher::new(1_400);
        assert!(b.push(SiteId(1), Sized(1, 10)).is_none());
        assert!(b.push(SiteId(2), Sized(2, 10)).is_none());
        assert!(b.push(SiteId(1), Sized(3, 10)).is_none());
        assert_eq!(b.pending_for(SiteId(1)), 2);
        assert_eq!(b.pending_for(SiteId(2)), 1);
        let batches = b.flush_all();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].to, SiteId(1));
        assert_eq!(batches[0].msgs, vec![Sized(1, 10), Sized(3, 10)]);
        assert_eq!(
            batches[0].bytes,
            BATCH_HEADER_BYTES + 2 * (PER_MSG_OVERHEAD_BYTES + 10)
        );
        assert_eq!(batches[1].to, SiteId(2));
        assert!(b.is_empty(), "flush_all drains everything");
    }

    #[test]
    fn size_cap_closes_the_batch_early() {
        // Cap fits exactly two 40-byte messages (8 + 2*(2+40) = 92).
        let mut b = Batcher::new(92);
        assert!(b.push(SiteId(1), Sized(1, 40)).is_none());
        assert!(b.push(SiteId(1), Sized(2, 40)).is_none());
        let full = b.push(SiteId(1), Sized(3, 40)).expect("cap overflow");
        assert_eq!(full.msgs, vec![Sized(1, 40), Sized(2, 40)]);
        assert_eq!(full.bytes, 92);
        // The overflowing message starts the next batch.
        assert_eq!(b.pending_for(SiteId(1)), 1);
        let rest = b.flush_all();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].msgs, vec![Sized(3, 40)]);
    }

    #[test]
    fn oversized_message_still_travels_alone() {
        let mut b = Batcher::new(64);
        // Larger than the cap by itself: accepted as a singleton batch
        // rather than rejected (the cap bounds coalescing, not messages).
        assert!(b.push(SiteId(0), Sized(1, 500)).is_none());
        let batches = b.flush_all();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].msgs.len(), 1);
        assert!(batches[0].bytes > 64);
    }

    #[test]
    fn flush_order_is_deterministic_by_site() {
        let mut b = Batcher::new(1_400);
        for site in [3usize, 0, 2, 1] {
            b.push(SiteId(site), Sized(site as u64, 8));
        }
        let order: Vec<SiteId> = b.flush_all().into_iter().map(|x| x.to).collect();
        assert_eq!(order, vec![SiteId(0), SiteId(1), SiteId(2), SiteId(3)]);
    }

    #[test]
    fn pending_totals_track_queued_messages() {
        let mut b = Batcher::new(1_400);
        assert_eq!((b.pending_msgs(), b.pending_bytes()), (0, 0));
        b.push(SiteId(1), Sized(1, 10));
        b.push(SiteId(2), Sized(2, 30));
        assert_eq!(b.pending_msgs(), 2);
        assert_eq!(
            b.pending_bytes(),
            2 * BATCH_HEADER_BYTES + (PER_MSG_OVERHEAD_BYTES + 10) + (PER_MSG_OVERHEAD_BYTES + 30)
        );
        b.flush_all();
        assert_eq!((b.pending_msgs(), b.pending_bytes()), (0, 0));
    }

    #[test]
    fn empty_batcher_flushes_nothing() {
        let mut b: Batcher<Sized> = Batcher::new(1_400);
        assert!(b.is_empty());
        assert!(b.flush_all().is_empty());
        assert_eq!(b.pending_for(SiteId(0)), 0);
    }
}
