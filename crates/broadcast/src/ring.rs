//! Pipelined ring atomic broadcast — the third A1 backend.
//!
//! [`SequencerAbcast`](crate::atomic::SequencerAbcast) concentrates all
//! payload bytes on the sequencer's links (`N-1` copies per broadcast) and
//! [`IsisAbcast`](crate::atomic::IsisAbcast) concentrates proposal traffic
//! on the origin. Both go leader-bound as `N` and payload size grow. The
//! ring backend instead pipelines payload dissemination around a ring in
//! the style of Ring Paxos \[MPSP10\]: every site forwards each payload to
//! its successor exactly once, so every link (and every NIC) carries ~1x
//! the payload bytes regardless of group size.
//!
//! Protocol sketch:
//!
//! - **Data** — the origin sends the payload to its ring successor; each
//!   site stores and forwards it onward, stopping at the origin's
//!   predecessor. The ring coordinator (lowest member, matching
//!   [`View::coordinator`](crate::membership::View::coordinator)) assigns
//!   the global sequence number when the payload reaches it.
//! - **Commit** — the small `(gseq, id)` ordering record also circulates
//!   hop-by-hop from the coordinator, so no single NIC carries an `O(N)`
//!   control fan-out either.
//! - **Ack** — the origin's ring predecessor (the last site to receive its
//!   payloads) sends a cumulative ack straight back, releasing the
//!   origin's bounded in-flight window. The origin piggybacks that
//!   cumulative floor on its next `Data` as a stability hint, letting every
//!   site prune delivered payloads — the same coalescing idea as
//!   `batch.rs` cumulative-ack piggybacking.
//! - **Repair** — on a view change every site re-offers its retained
//!   payloads to its new successor (heals the ring break) and reports its
//!   ordering log to the (possibly new) coordinator, which re-announces
//!   missed commits, fills unrecoverable holes with skip markers, and
//!   re-orders payloads stranded by a coordinator crash.
//!
//! Per broadcast the ring costs `2N - 1` point-to-point messages (`N-1`
//! data hops, `N-1` commit hops, one ack) but — unlike the sequencer's
//! `N+1` — no site sends more than a constant number of payload copies.

use crate::atomic::{AtomicBcast, Output, TotalDelivery};
use crate::msg::{MsgId, Outbound};
use bcastdb_sim::SiteId;
use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};

/// Default bound on a site's in-flight (launched but un-acked) broadcasts.
pub const DEFAULT_WINDOW: u64 = 8;

/// Sentinel id used by hole-filling skip commits after a coordinator
/// change: the global sequence number is consumed but nothing is delivered.
pub const SKIP_ID: MsgId = MsgId {
    origin: SiteId(usize::MAX),
    seq: 0,
};

/// Wire messages of [`RingAbcast`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RingWire<P> {
    /// Payload dissemination hop: site → ring successor.
    Data {
        /// Identity assigned by the origin.
        id: MsgId,
        /// Application payload.
        payload: P,
        /// Origin's cumulative ring-acked sequence number, piggybacked so
        /// receivers can prune delivered payloads of this origin.
        stable: u64,
    },
    /// Ordering record, circulated hop-by-hop from the coordinator.
    Commit {
        /// View epoch the assignment was made in (stale commits from a
        /// replaced coordinator are dropped).
        epoch: u64,
        /// Global sequence number.
        gseq: u64,
        /// Identity of the ordered message, or [`SKIP_ID`] for a filled
        /// hole.
        id: MsgId,
    },
    /// Cumulative ack: ring tail → origin, releasing the pipeline window.
    Ack {
        /// Highest contiguous per-origin sequence number received.
        upto: u64,
    },
    /// View-change report: member → coordinator.
    Repair {
        /// Reporting site (carried explicitly; transports may not preserve
        /// the sender).
        site: SiteId,
        /// View epoch this report belongs to.
        epoch: u64,
        /// The reporter's full `(gseq, id)` ordering log.
        entries: Vec<(u64, MsgId)>,
        /// The reporter's delivery watermark (next gseq to deliver).
        delivered: u64,
    },
}

impl<P: crate::batch::WireSize> crate::batch::WireSize for RingWire<P> {
    fn wire_size(&self) -> usize {
        match self {
            RingWire::Data { id, payload, .. } => id.wire_size() + payload.wire_size() + 8,
            RingWire::Commit { id, .. } => 8 + 8 + id.wire_size(),
            RingWire::Ack { .. } => 8,
            RingWire::Repair { entries, .. } => 8 + 8 + 8 + entries.len() * 24,
        }
    }
}

/// Highest-contiguous-prefix tracker for one origin's sequence numbers.
#[derive(Debug, Default)]
struct Contig {
    /// Highest `seq` such that all of `1..=seq` have been seen.
    watermark: u64,
    /// Seen sequence numbers above the watermark.
    above: BTreeSet<u64>,
}

impl Contig {
    /// Records `seq`; returns whether the watermark advanced.
    fn insert(&mut self, seq: u64) -> bool {
        if seq <= self.watermark || !self.above.insert(seq) {
            return false;
        }
        let before = self.watermark;
        while self.above.remove(&(self.watermark + 1)) {
            self.watermark += 1;
        }
        self.watermark > before
    }

    /// Highest sequence number seen at all (contiguous or not).
    fn max_seen(&self) -> u64 {
        self.above
            .iter()
            .next_back()
            .copied()
            .unwrap_or(0)
            .max(self.watermark)
    }
}

/// A payload retained for forwarding, delivery, and ring repair.
#[derive(Debug)]
struct Held<P> {
    payload: P,
    delivered: bool,
}

/// A stashed [`RingWire::Repair`] report: `(site, epoch, entries,
/// delivered)`.
type StashedRepair = (SiteId, u64, Vec<(u64, MsgId)>, u64);

/// Pipelined ring atomic broadcast engine for one site.
///
/// Fault handling is driven externally: on a view change the replication
/// layer calls [`set_ring`](RingAbcast::set_ring) with the surviving
/// members, and a recovering site seeds itself from a peer snapshot via
/// [`resume_from`](RingAbcast::resume_from).
#[derive(Debug)]
pub struct RingAbcast<P> {
    me: SiteId,
    /// Current ring members, ascending; `ring[0]` is the coordinator.
    ring: Vec<SiteId>,
    /// View epoch of the current ring; stale commits/repairs are dropped.
    epoch: u64,
    /// Max launched-but-unacked own broadcasts.
    window: u64,
    /// Last own per-origin sequence number handed out by `broadcast`.
    next_seq: u64,
    /// Last own sequence number actually launched onto the ring.
    sent_seq: u64,
    /// Own cumulative ring-completion ack.
    acked_seq: u64,
    /// Own broadcasts waiting for window space.
    pending_local: VecDeque<(MsgId, P)>,
    /// Retained payloads (undelivered, or delivered but not yet stable).
    store: BTreeMap<MsgId, Held<P>>,
    /// Full `(gseq, id)` assignment log, retained for view-change repair.
    ordered: BTreeMap<u64, MsgId>,
    /// Ids with an assigned gseq (dedup on re-arrival and re-assignment).
    ordered_ids: HashSet<MsgId>,
    /// Next global sequence number to deliver.
    next_gseq_deliver: u64,
    /// Per-origin contiguous receipt trackers (drives tail acks).
    received: BTreeMap<SiteId, Contig>,
    /// Per-origin stability floors learned from `Data` piggybacks.
    stable: BTreeMap<SiteId, u64>,
    /// Coordinator state: next global sequence number to assign.
    next_gseq_assign: u64,
    /// Coordinator state: members whose `Repair` arrived this epoch.
    repaired: BTreeSet<SiteId>,
    /// `Repair` messages for a future epoch, replayed once we catch up.
    stashed_repairs: Vec<StashedRepair>,
    /// Total payloads forwarded onward (the `ring.forwarded` counter).
    forwarded_total: u64,
}

impl<P: Clone> RingAbcast<P> {
    /// Creates an engine for site `me` of an `n`-site ring; sites are
    /// arranged in ascending id order and site 0 starts as coordinator.
    ///
    /// # Panics
    /// Panics if `me` is not a valid site of an `n`-site system.
    pub fn new(me: SiteId, n: usize) -> Self {
        assert!(me.0 < n, "site {me} out of range for {n} sites");
        RingAbcast {
            me,
            ring: (0..n).map(SiteId).collect(),
            epoch: 0,
            window: DEFAULT_WINDOW,
            next_seq: 0,
            sent_seq: 0,
            acked_seq: 0,
            pending_local: VecDeque::new(),
            store: BTreeMap::new(),
            ordered: BTreeMap::new(),
            ordered_ids: HashSet::new(),
            next_gseq_deliver: 0,
            received: BTreeMap::new(),
            stable: BTreeMap::new(),
            next_gseq_assign: 0,
            repaired: BTreeSet::new(),
            stashed_repairs: Vec::new(),
            forwarded_total: 0,
        }
    }

    /// Sets the in-flight pipeline window (default [`DEFAULT_WINDOW`]).
    ///
    /// # Panics
    /// Panics if `window` is zero.
    pub fn with_window(mut self, window: u64) -> Self {
        assert!(window >= 1, "window must be at least 1");
        self.window = window;
        self
    }

    /// The current ring coordinator (lowest member).
    pub fn coordinator(&self) -> SiteId {
        self.ring[0]
    }

    /// This site's current ring successor (itself when solo or evicted).
    pub fn successor(&self) -> SiteId {
        match self.ring.iter().position(|&s| s == self.me) {
            Some(i) => self.ring[(i + 1) % self.ring.len()],
            None => self.me,
        }
    }

    /// Own broadcasts not yet ring-acked (the `ring.inflight` gauge);
    /// includes broadcasts queued behind the window.
    pub fn inflight(&self) -> u64 {
        self.next_seq - self.acked_seq
    }

    /// Total payloads this site forwarded onward (the `ring.forwarded`
    /// counter).
    pub fn forwarded_count(&self) -> u64 {
        self.forwarded_total
    }

    /// The next global sequence number this site would deliver.
    pub fn delivered_watermark(&self) -> u64 {
        self.next_gseq_deliver
    }

    /// Number of payloads currently retained for forwarding/repair.
    pub fn retained_payloads(&self) -> usize {
        self.store.len()
    }

    /// Current view epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Per-origin sequence floors for a recovery snapshot: the highest
    /// sequence number this site has seen from each origin (and assigned
    /// itself). A rejoiner seeds [`resume_from`](RingAbcast::resume_from) with these so fresh ids
    /// never collide with pre-crash ones.
    pub fn seq_floors(&self) -> Vec<(SiteId, u64)> {
        let mut floors: Vec<(SiteId, u64)> = self
            .received
            .iter()
            .map(|(&site, contig)| (site, contig.max_seen()))
            .collect();
        floors.push((self.me, self.next_seq));
        floors.sort_unstable();
        floors
    }

    /// Re-seeds a recovering site from a peer snapshot: delivery resumes at
    /// `watermark` and per-origin counters start past `floors` (see
    /// [`seq_floors`](Self::seq_floors)). Retained transient state is
    /// discarded; the view change that readmits this site re-supplies
    /// undelivered payloads and orderings.
    pub fn resume_from(&mut self, watermark: u64, floors: &[(SiteId, u64)]) {
        self.ordered.clear();
        self.ordered_ids.clear();
        self.store.clear();
        self.pending_local.clear();
        self.received.clear();
        self.stable.clear();
        self.repaired.clear();
        self.stashed_repairs.clear();
        self.next_gseq_deliver = self.next_gseq_deliver.max(watermark);
        self.next_gseq_assign = self.next_gseq_assign.max(watermark);
        for &(site, seq) in floors {
            if site == self.me {
                self.next_seq = self.next_seq.max(seq);
                self.sent_seq = self.sent_seq.max(seq);
                self.acked_seq = self.acked_seq.max(seq);
            } else {
                let contig = self.received.entry(site).or_default();
                contig.watermark = contig.watermark.max(seq);
            }
        }
    }

    /// Installs a new ring membership for view `epoch` and starts repair:
    /// re-offers retained payloads to the new successor, refreshes the
    /// cumulative ack for the origin this site is now tail of, and either
    /// reports its ordering log to the coordinator or (as coordinator)
    /// begins collecting reports.
    pub fn set_ring(&mut self, members: &[SiteId], epoch: u64) -> Output<P, RingWire<P>> {
        let mut ring: Vec<SiteId> = members.to_vec();
        ring.sort_unstable();
        ring.dedup();
        assert!(!ring.is_empty(), "ring must have at least one member");
        self.ring = ring;
        self.epoch = epoch;
        self.repaired.clear();
        let mut out = Output::empty();
        let succ = self.successor();
        if succ != self.me {
            // Heal the ring break: re-offer every retained payload to the
            // new successor. Duplicates are cheap no-ops at the receiver.
            let offers: Vec<(MsgId, P, u64)> = self
                .store
                .iter()
                .filter(|(id, _)| id.origin != succ)
                .map(|(&id, held)| (id, held.payload.clone(), self.stable_floor(id.origin)))
                .collect();
            for (id, payload, stable) in offers {
                out.outbound.push(Outbound::to(
                    succ,
                    RingWire::Data {
                        id,
                        payload,
                        stable,
                    },
                ));
                self.forwarded_total += 1;
            }
            // We are now the ring tail for our successor's broadcasts;
            // refresh its cumulative ack so its window can't deadlock.
            let upto = self.received.get(&succ).map_or(0, |c| c.watermark);
            out.outbound
                .push(Outbound::to(succ, RingWire::Ack { upto }));
        } else {
            // Ring collapsed to just us: outstanding windows complete
            // vacuously.
            self.acked_seq = self.sent_seq;
            self.pump_pending(&mut out);
        }
        if self.me == self.coordinator() {
            if let Some((&max_gseq, _)) = self.ordered.iter().next_back() {
                self.next_gseq_assign = self.next_gseq_assign.max(max_gseq + 1);
            }
            self.next_gseq_assign = self.next_gseq_assign.max(self.next_gseq_deliver);
            self.repaired.insert(self.me);
            self.maybe_fill_holes(&mut out);
            let stashed = std::mem::take(&mut self.stashed_repairs);
            for (site, repair_epoch, entries, delivered) in stashed {
                self.on_repair(site, repair_epoch, entries, delivered, &mut out);
            }
        } else {
            let entries: Vec<(u64, MsgId)> =
                self.ordered.iter().map(|(&gseq, &id)| (gseq, id)).collect();
            out.outbound.push(Outbound::to(
                self.coordinator(),
                RingWire::Repair {
                    site: self.me,
                    epoch,
                    entries,
                    delivered: self.next_gseq_deliver,
                },
            ));
        }
        self.drain(&mut out);
        out
    }

    /// Lowest sequence number of `origin` known to be held by every ring
    /// member (everything at or below it may be pruned once delivered).
    fn stable_floor(&self, origin: SiteId) -> u64 {
        if origin == self.me {
            self.acked_seq
        } else {
            self.stable.get(&origin).copied().unwrap_or(0)
        }
    }

    /// Raises the stability floor for `origin` and prunes newly stable,
    /// already delivered payloads.
    fn raise_stable(&mut self, origin: SiteId, floor: u64) {
        if origin == self.me {
            return;
        }
        let current = self.stable.get(&origin).copied().unwrap_or(0);
        if floor > current {
            self.stable.insert(origin, floor);
            self.prune_origin(origin);
        }
    }

    /// Drops delivered payloads of `origin` at or below its stability
    /// floor.
    fn prune_origin(&mut self, origin: SiteId) {
        let floor = self.stable_floor(origin);
        if floor == 0 {
            return;
        }
        let lo = MsgId { origin, seq: 0 };
        let hi = MsgId { origin, seq: floor };
        let dead: Vec<MsgId> = self
            .store
            .range(lo..=hi)
            .filter(|(_, held)| held.delivered)
            .map(|(&id, _)| id)
            .collect();
        for id in dead {
            self.store.remove(&id);
        }
    }

    /// Launches queued own broadcasts while the pipeline window has room.
    fn pump_pending(&mut self, out: &mut Output<P, RingWire<P>>) {
        while self.sent_seq - self.acked_seq < self.window {
            let Some((id, payload)) = self.pending_local.pop_front() else {
                break;
            };
            self.launch(id, payload, out);
        }
    }

    /// Puts one own broadcast onto the ring.
    fn launch(&mut self, id: MsgId, payload: P, out: &mut Output<P, RingWire<P>>) {
        self.sent_seq = id.seq;
        self.store.insert(
            id,
            Held {
                payload: payload.clone(),
                delivered: false,
            },
        );
        let succ = self.successor();
        if succ != self.me {
            out.outbound.push(Outbound::to(
                succ,
                RingWire::Data {
                    id,
                    payload,
                    stable: self.acked_seq,
                },
            ));
        } else {
            // Solo ring: there is no tail to ack us.
            self.acked_seq = id.seq;
        }
        if self.me == self.coordinator() {
            self.assign(id, out);
        }
    }

    /// Coordinator: assigns the next global sequence number to `id` and
    /// starts the commit circulating. No-op if `id` is already ordered.
    fn assign(&mut self, id: MsgId, out: &mut Output<P, RingWire<P>>) {
        if !self.ordered_ids.insert(id) {
            return;
        }
        let gseq = self.next_gseq_assign;
        self.next_gseq_assign += 1;
        self.ordered.insert(gseq, id);
        let succ = self.successor();
        if succ != self.me {
            out.outbound.push(Outbound::to(
                succ,
                RingWire::Commit {
                    epoch: self.epoch,
                    gseq,
                    id,
                },
            ));
        }
    }

    /// Delivers every ordered message whose payload has arrived, in gseq
    /// order.
    fn drain(&mut self, out: &mut Output<P, RingWire<P>>) {
        while let Some(&id) = self.ordered.get(&self.next_gseq_deliver) {
            if id == SKIP_ID {
                self.next_gseq_deliver += 1;
                continue;
            }
            let Some(held) = self.store.get_mut(&id) else {
                break;
            };
            debug_assert!(!held.delivered, "message {id} delivered twice");
            held.delivered = true;
            let payload = held.payload.clone();
            out.deliveries.push(TotalDelivery {
                gseq: self.next_gseq_deliver,
                id,
                payload,
            });
            self.next_gseq_deliver += 1;
            if id.seq <= self.stable_floor(id.origin) {
                self.store.remove(&id);
            }
        }
    }

    /// Handles a payload dissemination hop.
    fn on_data(&mut self, id: MsgId, payload: P, stable: u64, out: &mut Output<P, RingWire<P>>) {
        let origin = id.origin;
        self.raise_stable(origin, stable);
        if origin == self.me || id.seq <= self.stable_floor(origin) || self.store.contains_key(&id)
        {
            // Echo or duplicate: already held (or stable everywhere).
            // Never re-forwarded, which bounds circulation. A duplicate
            // reaching the ring tail does refresh the cumulative ack,
            // though — if the original Ack was lost, the origin's pipeline
            // window would otherwise stay clogged forever.
            if origin != self.me && self.successor() == origin {
                if let Some(contig) = self.received.get(&origin) {
                    out.outbound.push(Outbound::to(
                        origin,
                        RingWire::Ack {
                            upto: contig.watermark,
                        },
                    ));
                }
            }
            return;
        }
        self.store.insert(
            id,
            Held {
                payload: payload.clone(),
                delivered: false,
            },
        );
        let succ = self.successor();
        if succ != origin && succ != self.me {
            out.outbound.push(Outbound::to(
                succ,
                RingWire::Data {
                    id,
                    payload,
                    stable: self.stable_floor(origin),
                },
            ));
            self.forwarded_total += 1;
        }
        let contig = self.received.entry(origin).or_default();
        let advanced = contig.insert(id.seq);
        let upto = contig.watermark;
        if advanced && succ == origin {
            // We are the last site on this origin's ring path: cumulative
            // ack releases its pipeline window.
            out.outbound
                .push(Outbound::to(origin, RingWire::Ack { upto }));
        }
        if self.me == self.coordinator() {
            self.assign(id, out);
        }
        self.drain(out);
    }

    /// Handles an ordering record.
    fn on_commit(&mut self, epoch: u64, gseq: u64, id: MsgId, out: &mut Output<P, RingWire<P>>) {
        if epoch != self.epoch {
            // A replaced coordinator's commits must not interleave with the
            // current one's; lagging sites are healed by the Repair
            // re-announce once they install the view.
            return;
        }
        if gseq < self.next_gseq_deliver || self.ordered.contains_key(&gseq) {
            debug_assert!(
                self.ordered.get(&gseq).is_none_or(|&known| known == id),
                "conflicting assignment at gseq {gseq}"
            );
            return;
        }
        self.ordered.insert(gseq, id);
        if id != SKIP_ID {
            self.ordered_ids.insert(id);
        }
        self.next_gseq_assign = self.next_gseq_assign.max(gseq + 1);
        let succ = self.successor();
        if succ != self.coordinator() && succ != self.me {
            out.outbound
                .push(Outbound::to(succ, RingWire::Commit { epoch, gseq, id }));
        }
        self.drain(out);
    }

    /// Handles a cumulative window ack for our own broadcasts.
    fn on_ack(&mut self, upto: u64, out: &mut Output<P, RingWire<P>>) {
        let upto = upto.min(self.sent_seq);
        if upto > self.acked_seq {
            self.acked_seq = upto;
            self.prune_origin(self.me);
            self.pump_pending(out);
            self.drain(out);
        }
    }

    /// Coordinator: merges a member's view-change report, re-announces
    /// commits it missed, and once every member has reported, fills
    /// unrecoverable holes and re-orders stranded payloads.
    fn on_repair(
        &mut self,
        site: SiteId,
        epoch: u64,
        entries: Vec<(u64, MsgId)>,
        delivered: u64,
        out: &mut Output<P, RingWire<P>>,
    ) {
        if epoch > self.epoch {
            // The reporter installed the next view before we did; replay
            // once our own set_ring catches up.
            self.stashed_repairs.push((site, epoch, entries, delivered));
            return;
        }
        if epoch < self.epoch || self.me != self.coordinator() {
            return;
        }
        for (gseq, id) in entries {
            if let Some(&known) = self.ordered.get(&gseq) {
                debug_assert_eq!(known, id, "conflicting assignment at gseq {gseq}");
            } else {
                self.ordered.insert(gseq, id);
                if id != SKIP_ID {
                    self.ordered_ids.insert(id);
                }
            }
            self.next_gseq_assign = self.next_gseq_assign.max(gseq + 1);
        }
        self.next_gseq_assign = self.next_gseq_assign.max(delivered);
        // Re-announce everything the reporter may have missed.
        for (&gseq, &id) in self.ordered.range(delivered..) {
            out.outbound.push(Outbound::to(
                site,
                RingWire::Commit {
                    epoch: self.epoch,
                    gseq,
                    id,
                },
            ));
        }
        self.repaired.insert(site);
        self.maybe_fill_holes(out);
        self.drain(out);
    }

    /// Coordinator: once every current member has reported, fills
    /// assignment holes nobody can resolve with [`SKIP_ID`] markers (safe:
    /// a gseq unknown to every survivor was delivered by no survivor) and
    /// assigns fresh gseqs to payloads stranded without an ordering by the
    /// old coordinator's crash.
    fn maybe_fill_holes(&mut self, out: &mut Output<P, RingWire<P>>) {
        if !self.ring.iter().all(|s| self.repaired.contains(s)) {
            return;
        }
        let holes: Vec<u64> = (self.next_gseq_deliver..self.next_gseq_assign)
            .filter(|gseq| !self.ordered.contains_key(gseq))
            .collect();
        let succ = self.successor();
        for gseq in holes {
            self.ordered.insert(gseq, SKIP_ID);
            if succ != self.me {
                out.outbound.push(Outbound::to(
                    succ,
                    RingWire::Commit {
                        epoch: self.epoch,
                        gseq,
                        id: SKIP_ID,
                    },
                ));
            }
        }
        let stranded: Vec<MsgId> = self
            .store
            .keys()
            .copied()
            .filter(|id| !self.ordered_ids.contains(id))
            .collect();
        for id in stranded {
            self.assign(id, out);
        }
    }
}

impl<P: Clone> AtomicBcast<P> for RingAbcast<P> {
    type Wire = RingWire<P>;

    fn broadcast(&mut self, payload: P) -> (MsgId, Output<P, RingWire<P>>) {
        self.next_seq += 1;
        let id = MsgId {
            origin: self.me,
            seq: self.next_seq,
        };
        self.pending_local.push_back((id, payload));
        let mut out = Output::empty();
        self.pump_pending(&mut out);
        self.drain(&mut out);
        (id, out)
    }

    fn on_wire(&mut self, _from: SiteId, wire: RingWire<P>) -> Output<P, RingWire<P>> {
        let mut out = Output::empty();
        match wire {
            RingWire::Data {
                id,
                payload,
                stable,
            } => self.on_data(id, payload, stable, &mut out),
            RingWire::Commit { epoch, gseq, id } => self.on_commit(epoch, gseq, id, &mut out),
            RingWire::Ack { upto } => self.on_ack(upto, &mut out),
            RingWire::Repair {
                site,
                epoch,
                entries,
                delivered,
            } => self.on_repair(site, epoch, entries, delivered, &mut out),
        }
        out
    }

    fn delivered_count(&self) -> u64 {
        self.next_gseq_deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::WireSize;
    use crate::msg::expand_dest;

    /// Deterministic fleet runner with crash and view-change support. The
    /// queue is globally FIFO (which preserves per-link FIFO); messages to
    /// or from a crashed site are dropped, modelling in-flight loss
    /// harsher than the simulator does.
    struct Fleet {
        engines: Vec<RingAbcast<u64>>,
        queue: VecDeque<(SiteId, SiteId, RingWire<u64>)>,
        logs: Vec<Vec<TotalDelivery<u64>>>,
        crashed: Vec<bool>,
        sends: usize,
    }

    impl Fleet {
        fn new(n: usize) -> Self {
            Fleet {
                engines: (0..n).map(|i| RingAbcast::new(SiteId(i), n)).collect(),
                queue: VecDeque::new(),
                logs: vec![Vec::new(); n],
                crashed: vec![false; n],
                sends: 0,
            }
        }

        fn absorb(&mut self, site: usize, out: Output<u64, RingWire<u64>>) {
            let n = self.engines.len();
            for delivery in out.deliveries {
                self.logs[site].push(delivery);
            }
            for ob in out.outbound {
                for to in expand_dest(ob.dest, SiteId(site), n) {
                    self.queue.push_back((SiteId(site), to, ob.wire.clone()));
                    self.sends += 1;
                }
            }
        }

        fn broadcast(&mut self, site: usize, value: u64) -> MsgId {
            let (id, out) = self.engines[site].broadcast(value);
            self.absorb(site, out);
            id
        }

        /// Processes up to `limit` queued messages.
        fn settle_n(&mut self, limit: usize) {
            for _ in 0..limit {
                let Some((from, to, wire)) = self.queue.pop_front() else {
                    break;
                };
                if self.crashed[from.0] || self.crashed[to.0] {
                    continue;
                }
                let out = self.engines[to.0].on_wire(from, wire);
                self.absorb(to.0, out);
            }
        }

        fn settle(&mut self) {
            self.settle_n(usize::MAX);
        }

        /// Settles the queue delivering every message twice, modelling a
        /// network that duplicates every hop.
        fn settle_duplicating(&mut self) {
            while let Some((from, to, wire)) = self.queue.pop_front() {
                if self.crashed[from.0] || self.crashed[to.0] {
                    continue;
                }
                let out = self.engines[to.0].on_wire(from, wire.clone());
                self.absorb(to.0, out);
                let out = self.engines[to.0].on_wire(from, wire);
                self.absorb(to.0, out);
            }
        }

        /// Settles the queue in LIFO order, violating per-link FIFO as
        /// aggressively as a single queue can.
        fn settle_lifo(&mut self) {
            while let Some((from, to, wire)) = self.queue.pop_back() {
                if self.crashed[from.0] || self.crashed[to.0] {
                    continue;
                }
                let out = self.engines[to.0].on_wire(from, wire);
                self.absorb(to.0, out);
            }
        }

        fn crash(&mut self, site: usize) {
            self.crashed[site] = true;
        }

        /// Installs the surviving membership at every live site, then
        /// settles the repair traffic.
        fn view_change(&mut self, epoch: u64) {
            let members: Vec<SiteId> = (0..self.engines.len())
                .filter(|&i| !self.crashed[i])
                .map(SiteId)
                .collect();
            for i in 0..self.engines.len() {
                if self.crashed[i] {
                    continue;
                }
                let out = self.engines[i].set_ring(&members, epoch);
                self.absorb(i, out);
            }
            self.settle();
        }

        /// Asserts every live site delivered the same `expected` payload
        /// sequence at identical gseqs.
        fn assert_agreement(&self, expected: &[u64]) {
            let mut reference: Option<&Vec<TotalDelivery<u64>>> = None;
            for (site, log) in self.logs.iter().enumerate() {
                if self.crashed[site] {
                    continue;
                }
                let payloads: Vec<u64> = log.iter().map(|d| d.payload).collect();
                assert_eq!(payloads, expected, "site {site} delivered {payloads:?}");
                if let Some(reference) = reference {
                    assert_eq!(log, reference, "site {site} disagrees on gseqs");
                } else {
                    reference = Some(log);
                }
            }
        }
    }

    #[test]
    fn single_broadcast_delivers_everywhere() {
        let mut fleet = Fleet::new(4);
        fleet.broadcast(2, 42);
        fleet.settle();
        fleet.assert_agreement(&[42]);
        for log in &fleet.logs {
            assert_eq!(log[0].gseq, 0);
        }
    }

    #[test]
    fn message_complexity_is_2n_minus_1() {
        // N-1 data hops + N-1 commit hops + 1 tail ack.
        let mut fleet = Fleet::new(4);
        fleet.broadcast(2, 7);
        fleet.settle();
        assert_eq!(fleet.sends, 7);

        // Same count when the origin is the coordinator.
        let mut fleet = Fleet::new(4);
        fleet.broadcast(0, 7);
        fleet.settle();
        assert_eq!(fleet.sends, 7);
    }

    #[test]
    fn duplicated_hops_deliver_exactly_once() {
        let mut fleet = Fleet::new(4);
        fleet.broadcast(1, 11);
        fleet.broadcast(3, 33);
        fleet.settle_duplicating();
        let expected: Vec<u64> = fleet.logs[0].iter().map(|d| d.payload).collect();
        let mut sorted = expected.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![11, 33], "each payload delivered exactly once");
        fleet.assert_agreement(&expected);
    }

    #[test]
    fn reordered_hops_still_reach_agreement() {
        let mut fleet = Fleet::new(4);
        fleet.broadcast(1, 1);
        fleet.broadcast(2, 2);
        fleet.broadcast(3, 3);
        fleet.settle_lifo();
        let expected: Vec<u64> = fleet.logs[0].iter().map(|d| d.payload).collect();
        let mut sorted = expected.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2, 3], "nothing lost or duplicated");
        fleet.assert_agreement(&expected);
    }

    #[test]
    fn duplicate_data_at_tail_refreshes_a_lost_ack() {
        let mut fleet = Fleet::new(4);
        let id = fleet.broadcast(1, 9);
        // Deliver everything except the tail's cumulative Ack.
        while let Some((from, to, wire)) = fleet.queue.pop_front() {
            if matches!(wire, RingWire::Ack { .. }) {
                continue; // lost on the wire
            }
            let out = fleet.engines[to.0].on_wire(from, wire);
            fleet.absorb(to.0, out);
        }
        assert_eq!(fleet.engines[1].acked_seq, 0, "the only ack was dropped");
        // A retransmitted payload reaching the ring tail (site 0, the
        // origin's predecessor) must refresh the cumulative ack even though
        // the payload itself is a duplicate.
        let out = fleet.engines[0].on_wire(
            SiteId(3),
            RingWire::Data {
                id,
                payload: 9,
                stable: 0,
            },
        );
        fleet.absorb(0, out);
        fleet.settle();
        assert_eq!(
            fleet.engines[1].acked_seq, 1,
            "duplicate Data at the tail re-acks"
        );
    }

    #[test]
    fn concurrent_origins_agree_on_total_order() {
        let mut fleet = Fleet::new(5);
        for round in 0..4u64 {
            for site in 0..5usize {
                fleet.broadcast(site, round * 10 + site as u64);
            }
        }
        fleet.settle();
        let reference: Vec<u64> = fleet.logs[0].iter().map(|d| d.payload).collect();
        assert_eq!(reference.len(), 20);
        fleet.assert_agreement(&reference);
        let gseqs: Vec<u64> = fleet.logs[0].iter().map(|d| d.gseq).collect();
        assert_eq!(gseqs, (0..20).collect::<Vec<u64>>(), "gseqs must be dense");
    }

    #[test]
    fn solo_ring_delivers_inline() {
        let mut engine = RingAbcast::new(SiteId(0), 1);
        let (id, out) = engine.broadcast(9u64);
        assert_eq!(out.deliveries.len(), 1);
        assert_eq!(out.deliveries[0].payload, 9);
        assert_eq!(out.deliveries[0].id, id);
        assert!(out.outbound.is_empty());
        assert_eq!(engine.inflight(), 0);
    }

    #[test]
    fn window_bounds_launches_until_acked() {
        let mut fleet = Fleet::new(3);
        fleet.engines[1] = RingAbcast::new(SiteId(1), 3).with_window(2);
        for value in 0..10u64 {
            fleet.broadcast(1, value);
        }
        // Only the window's worth of Data launched so far.
        let launched = fleet
            .queue
            .iter()
            .filter(|(from, _, wire)| from.0 == 1 && matches!(wire, RingWire::Data { .. }))
            .count();
        assert_eq!(launched, 2);
        assert_eq!(fleet.engines[1].inflight(), 10);
        // Acks drain the backlog and everything delivers everywhere.
        fleet.settle();
        fleet.assert_agreement(&(0..10).collect::<Vec<u64>>());
        assert_eq!(fleet.engines[1].inflight(), 0);
    }

    #[test]
    fn piggybacked_stability_prunes_retained_payloads() {
        let mut fleet = Fleet::new(3);
        fleet.broadcast(0, 1);
        fleet.settle();
        // Delivered but not yet known stable: everyone retains it.
        assert_eq!(fleet.engines[1].retained_payloads(), 1);
        // The next broadcast piggybacks stable=1, pruning the first.
        fleet.broadcast(0, 2);
        fleet.settle();
        for site in [1, 2] {
            assert_eq!(
                fleet.engines[site].retained_payloads(),
                1,
                "site {site} should have pruned the stable payload"
            );
        }
        // The origin prunes everything acked and delivered.
        assert_eq!(fleet.engines[0].retained_payloads(), 0);
        fleet.assert_agreement(&[1, 2]);
    }

    #[test]
    fn tail_crash_heals_and_delivery_continues() {
        let mut fleet = Fleet::new(4);
        fleet.broadcast(1, 1);
        fleet.settle();
        // Site 3 crashes; a broadcast from 2 has its first hop (2 -> 3)
        // dropped in flight.
        fleet.crash(3);
        fleet.broadcast(2, 2);
        fleet.settle();
        assert_eq!(fleet.logs[0].len(), 1, "payload lost with the crash so far");
        // The view change re-offers retained payloads around the break.
        fleet.view_change(1);
        fleet.broadcast(0, 3);
        fleet.settle();
        fleet.assert_agreement(&[1, 2, 3]);
    }

    #[test]
    fn coordinator_crash_reassigns_stranded_payloads() {
        let mut fleet = Fleet::new(4);
        // Data from 2 reaches the coordinator (which orders and delivers
        // it) and site 1 via the commit hop, then 0 and 1 both crash: the
        // surviving sites 2 and 3 hold the payload with no ordering.
        fleet.broadcast(2, 5);
        fleet.settle_n(4);
        fleet.crash(0);
        fleet.crash(1);
        fleet.settle();
        assert!(fleet.logs[2].is_empty() && fleet.logs[3].is_empty());
        // The new coordinator (2) re-assigns the stranded payload.
        fleet.view_change(1);
        fleet.assert_agreement(&[5]);
        fleet.broadcast(3, 6);
        fleet.settle();
        fleet.assert_agreement(&[5, 6]);
    }

    #[test]
    fn coordinator_crash_fills_holes_with_skips() {
        let mut fleet = Fleet::new(4);
        // Coordinator 0 orders its own broadcast (gseq 0) and delivers it,
        // but crashes before Data or Commit reach anyone. Survivors must
        // not stall: after repair they agree the payload vanished.
        fleet.broadcast(0, 9);
        fleet.crash(0);
        fleet.settle();
        fleet.view_change(1);
        fleet.assert_agreement(&[]);
        // Survivors continue from a consistent numbering.
        fleet.broadcast(1, 10);
        fleet.settle();
        fleet.assert_agreement(&[10]);
    }

    #[test]
    fn stale_epoch_commits_are_dropped() {
        let mut engine: RingAbcast<u64> = RingAbcast::new(SiteId(1), 3);
        let members: Vec<SiteId> = (0..3).map(SiteId).collect();
        let out = engine.set_ring(&members, 1);
        drop(out);
        let out = engine.on_wire(
            SiteId(0),
            RingWire::Commit {
                epoch: 0,
                gseq: 0,
                id: MsgId {
                    origin: SiteId(0),
                    seq: 1,
                },
            },
        );
        assert!(out.deliveries.is_empty() && out.outbound.is_empty());
        assert_eq!(engine.delivered_watermark(), 0);
    }

    #[test]
    fn resume_from_skips_past_snapshot_and_avoids_id_reuse() {
        let mut fleet = Fleet::new(3);
        for value in 0..5u64 {
            fleet.broadcast(2, value);
        }
        fleet.settle();
        // Donor 0 snapshots; a "recovered" replacement engine for site 2
        // resumes from it.
        let watermark = fleet.engines[0].delivered_watermark();
        let floors = fleet.engines[0].seq_floors();
        assert_eq!(watermark, 5);
        let mut recovered: RingAbcast<u64> = RingAbcast::new(SiteId(2), 3);
        recovered.resume_from(watermark, &floors);
        assert_eq!(recovered.delivered_watermark(), 5);
        // Fresh broadcasts start past the pre-crash ids.
        let (id, _) = recovered.broadcast(99);
        assert_eq!(id.seq, 6);
    }

    #[test]
    fn wire_sizes_match_encoded_layout() {
        #[derive(Clone)]
        struct Blob(usize);
        impl WireSize for Blob {
            fn wire_size(&self) -> usize {
                self.0
            }
        }
        let id = MsgId {
            origin: SiteId(1),
            seq: 3,
        };
        let data = RingWire::Data {
            id,
            payload: Blob(100),
            stable: 0,
        };
        // MsgId (16) + payload (100) + stable (8).
        assert_eq!(data.wire_size(), 124);
        let commit: RingWire<Blob> = RingWire::Commit {
            epoch: 0,
            gseq: 0,
            id,
        };
        assert_eq!(commit.wire_size(), 32);
        let ack: RingWire<Blob> = RingWire::Ack { upto: 1 };
        assert_eq!(ack.wire_size(), 8);
        let repair: RingWire<Blob> = RingWire::Repair {
            site: SiteId(0),
            epoch: 1,
            entries: vec![(0, id), (1, id)],
            delivered: 0,
        };
        assert_eq!(repair.wire_size(), 24 + 48);
    }
}
