//! Causal broadcast.
//!
//! Reliable broadcast plus causal delivery order (§4 of the paper): if
//! `broadcast(m1) → broadcast(m2)` in Lamport's happened-before relation, no
//! site delivers `m2` before `m1`. The engine implements the classic
//! Birman–Schiper–Stephenson vector-clock algorithm and — crucially for the
//! paper's causal replication protocol — **exposes the vector clock of every
//! delivery to the application layer**, which uses it to
//!
//! - detect that two conflicting operations are *causally concurrent* (early
//!   abort without voting), and
//! - recognise *implicit acknowledgements*: a message from site `s` whose
//!   clock shows `s` had already delivered a commit request counts as `s`'s
//!   positive vote.

use crate::msg::{Dest, MsgId, Outbound};
use crate::vclock::VectorClock;
use bcastdb_sim::inline::InlineVec;
use bcastdb_sim::SiteId;
use std::collections::HashSet;

/// Wire format of the causal broadcast engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Wire<P> {
    /// Message identity (origin + per-origin sequence; `seq == vc[origin]`).
    pub id: MsgId,
    /// The origin's vector clock at broadcast time (own component already
    /// incremented).
    pub vc: VectorClock,
    /// Application payload.
    pub payload: P,
}

impl<P: crate::batch::WireSize> crate::batch::WireSize for Wire<P> {
    fn wire_size(&self) -> usize {
        // id + one u64 per vector-clock component + payload.
        self.id.wire_size() + 8 * self.vc.len() + self.payload.wire_size()
    }
}

/// A causal delivery, with the message's vector clock exposed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery<P> {
    /// Message identity.
    pub id: MsgId,
    /// The broadcast timestamp; `vc.get(id.origin) == id.seq`.
    pub vc: VectorClock,
    /// Application payload.
    pub payload: P,
}

/// Result of feeding the engine one input.
///
/// Both lists use inline storage: a broadcast or delivery step almost
/// always yields at most one outbound bundle and a couple of deliveries,
/// so the common case constructs no heap allocation at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Output<P> {
    /// Messages now deliverable, in causal order.
    pub deliveries: InlineVec<Delivery<P>, 2>,
    /// Wire messages to hand to the transport.
    pub outbound: InlineVec<Outbound<Wire<P>>, 1>,
}

impl<P> Output<P> {
    fn empty() -> Self {
        Output {
            deliveries: InlineVec::new(),
            outbound: InlineVec::new(),
        }
    }
}

/// A sans-IO causal broadcast engine for one site.
#[derive(Debug)]
pub struct CausalBcast<P> {
    me: SiteId,
    n: usize,
    relay: bool,
    /// Component `i` = number of messages from site `i` delivered here.
    /// Component `me` also counts our own broadcasts.
    vc: VectorClock,
    /// Messages received but not yet causally deliverable.
    pending: Vec<Wire<P>>,
    /// When true, every wire ever seen (sent or received) is retained in
    /// `archive` for retransmission to peers that lost their copies.
    /// Disabled via [`CausalBcast::without_archive`] when the deployment
    /// never requests retransmissions, saving a wire clone (and its
    /// vector-clock allocation) per message.
    archive_enabled: bool,
    /// See `archive_enabled`.
    archive: std::collections::BTreeMap<(SiteId, u64), Wire<P>>,
    seen: HashSet<MsgId>,
}

impl<P: Clone> CausalBcast<P> {
    /// Creates an engine for site `me` of an `n`-site system.
    ///
    /// # Panics
    /// Panics if `me` is not a valid site of an `n`-site system.
    pub fn new(me: SiteId, n: usize) -> Self {
        assert!(me.0 < n, "site {me} out of range for {n} sites");
        CausalBcast {
            me,
            n,
            relay: false,
            vc: VectorClock::new(n),
            pending: Vec::new(),
            archive_enabled: true,
            archive: std::collections::BTreeMap::new(),
            seen: HashSet::new(),
        }
    }

    /// Enables eager relaying of first copies (agreement under origin crash
    /// or message loss, at `O(N²)` message cost).
    pub fn with_relay(mut self) -> Self {
        self.relay = true;
        self
    }

    /// Disables the retransmission archive. Only safe when no peer will
    /// ever call [`CausalBcast::retransmissions_for`] against this engine's
    /// history (i.e. loss recovery is off); in exchange, the per-message
    /// archive clone disappears from the hot path.
    pub fn without_archive(mut self) -> Self {
        self.archive_enabled = false;
        self.archive.clear();
        self
    }

    /// This engine's site.
    pub fn me(&self) -> SiteId {
        self.me
    }

    /// The current delivered-messages vector clock.
    pub fn clock(&self) -> &VectorClock {
        &self.vc
    }

    /// Broadcasts `payload`; the local delivery (with its clock) is returned
    /// immediately.
    pub fn broadcast(&mut self, payload: P) -> (MsgId, Output<P>) {
        let seq = self.vc.increment(self.me);
        let id = MsgId {
            origin: self.me,
            seq,
        };
        self.seen.insert(id);
        let wire = Wire {
            id,
            vc: self.vc.clone(),
            payload,
        };
        if self.archive_enabled {
            self.archive.insert((self.me, seq), wire.clone());
        }
        let out = Output {
            deliveries: InlineVec::one(Delivery {
                id,
                vc: wire.vc.clone(),
                payload: wire.payload.clone(),
            }),
            outbound: InlineVec::one(Outbound {
                dest: Dest::Others,
                wire,
            }),
        };
        (id, out)
    }

    /// Handles an incoming wire message, returning every delivery it
    /// unblocks (in causal order).
    pub fn on_wire(&mut self, _from: SiteId, wire: Wire<P>) -> Output<P> {
        if !self.seen.insert(wire.id) {
            return Output::empty();
        }
        let mut out = Output::empty();
        if self.relay {
            out.outbound.push(Outbound {
                dest: Dest::Others,
                wire: wire.clone(),
            });
        }
        if self.archive_enabled {
            self.archive
                .insert((wire.id.origin, wire.id.seq), wire.clone());
        }
        self.pending.push(wire);
        // Repeatedly scan for deliverable messages; each delivery can
        // unblock others.
        loop {
            let idx = self.pending.iter().position(|w| self.deliverable(w));
            match idx {
                Some(i) => {
                    let w = self.pending.swap_remove(i);
                    self.vc.set(w.id.origin, w.id.seq);
                    out.deliveries.push(Delivery {
                        id: w.id,
                        vc: w.vc,
                        payload: w.payload,
                    });
                }
                None => break,
            }
        }
        out
    }

    /// BSS delivery condition: next-in-FIFO from its origin, and every
    /// causal dependency already delivered.
    fn deliverable(&self, w: &Wire<P>) -> bool {
        if w.id.seq != self.vc.get(w.id.origin) + 1 {
            return false;
        }
        (0..self.n)
            .map(SiteId)
            .filter(|&k| k != w.id.origin)
            .all(|k| w.vc.get(k) <= self.vc.get(k))
    }

    /// Number of messages waiting on causal predecessors.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Archived messages a peer whose delivered clock is `their_vc` is
    /// missing, at most `cap` in total. The cap is spread round-robin
    /// across origins (one message per origin per pass, gap-first within
    /// each origin) so a long gap from one origin cannot starve the
    /// others out of every retransmission round. The peer's duplicate
    /// suppression makes over-sending harmless.
    pub fn retransmissions_for(&self, their_vc: &VectorClock, cap: usize) -> Vec<Wire<P>> {
        // One cursor per origin with at least one archived successor.
        let mut cursors: Vec<(SiteId, u64)> = their_vc
            .iter()
            .map(|(site, delivered)| (site, delivered + 1))
            .filter(|&(site, next)| self.archive.contains_key(&(site, next)))
            .collect();
        let mut out = Vec::new();
        while out.len() < cap && !cursors.is_empty() {
            cursors.retain_mut(|(site, next)| {
                if out.len() >= cap {
                    return false;
                }
                match self.archive.get(&(*site, *next)) {
                    Some(w) => {
                        out.push(w.clone());
                        *next += 1;
                        true
                    }
                    None => false,
                }
            });
        }
        out
    }

    /// Resumes a recovered engine from a donor's delivered-messages clock:
    /// everything the donor delivered counts as delivered here (the
    /// application state arrives via state transfer). Own broadcasts keep
    /// numbering from the merged component.
    pub fn resume_from(&mut self, donor: &VectorClock) {
        self.vc.merge(donor);
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives `k` engines by hand, returning mutable handles.
    fn engines(n: usize) -> Vec<CausalBcast<String>> {
        (0..n).map(|i| CausalBcast::new(SiteId(i), n)).collect()
    }

    /// Extracts payloads from deliveries.
    fn payloads(out: &Output<String>) -> Vec<String> {
        out.deliveries.iter().map(|d| d.payload.clone()).collect()
    }

    #[test]
    fn broadcast_stamps_own_component() {
        let mut e = CausalBcast::<String>::new(SiteId(1), 3);
        let (id, out) = e.broadcast("a".into());
        assert_eq!(id.seq, 1);
        assert_eq!(out.deliveries[0].vc.get(SiteId(1)), 1);
        assert_eq!(out.deliveries[0].vc.get(SiteId(0)), 0);
    }

    #[test]
    fn causally_ordered_messages_deliver_in_order() {
        let mut es = engines(3);
        // Site 0 broadcasts m1.
        let (_, o1) = es[0].broadcast("m1".into());
        let w1 = o1.outbound[0].wire.clone();
        // Site 1 delivers m1, then broadcasts m2 (causally after m1).
        es[1].on_wire(SiteId(0), w1.clone());
        let (_, o2) = es[1].broadcast("m2".into());
        let w2 = o2.outbound[0].wire.clone();
        // Site 2 receives m2 FIRST: must hold it back.
        let out = es[2].on_wire(SiteId(1), w2);
        assert!(out.deliveries.is_empty());
        assert_eq!(es[2].pending_len(), 1);
        // m1 arrives: both deliver, in causal order.
        let out = es[2].on_wire(SiteId(0), w1);
        assert_eq!(payloads(&out), vec!["m1", "m2"]);
    }

    #[test]
    fn concurrent_messages_deliver_in_arrival_order() {
        let mut es = engines(3);
        let (_, oa) = es[0].broadcast("a".into());
        let (_, ob) = es[1].broadcast("b".into());
        let wa = oa.outbound[0].wire.clone();
        let wb = ob.outbound[0].wire.clone();
        // Concurrent: site 2 can deliver in either arrival order.
        let o1 = es[2].on_wire(SiteId(1), wb.clone());
        assert_eq!(payloads(&o1), vec!["b"]);
        let o2 = es[2].on_wire(SiteId(0), wa.clone());
        assert_eq!(payloads(&o2), vec!["a"]);
        // And their clocks are concurrent — exposed to the application.
        assert!(wa.vc.concurrent_with(&wb.vc));
    }

    #[test]
    fn duplicate_wires_are_ignored() {
        let mut es = engines(2);
        let (_, o) = es[0].broadcast("a".into());
        let w = o.outbound[0].wire.clone();
        assert_eq!(es[1].on_wire(SiteId(0), w.clone()).deliveries.len(), 1);
        assert!(es[1].on_wire(SiteId(0), w).deliveries.is_empty());
    }

    #[test]
    fn fifo_from_same_origin_is_enforced() {
        let mut es = engines(2);
        let (_, o1) = es[0].broadcast("x1".into());
        let (_, o2) = es[0].broadcast("x2".into());
        let w1 = o1.outbound[0].wire.clone();
        let w2 = o2.outbound[0].wire.clone();
        let out = es[1].on_wire(SiteId(0), w2);
        assert!(out.deliveries.is_empty());
        let out = es[1].on_wire(SiteId(0), w1);
        assert_eq!(payloads(&out), vec!["x1", "x2"]);
    }

    #[test]
    fn delivery_clock_reveals_delivered_commit_request() {
        // The implicit-ack pattern from the paper: site 1 delivers site 0's
        // "commit request", then broadcasts anything; the clock of that
        // broadcast proves the delivery.
        let mut es = engines(3);
        let (cr_id, o_cr) = es[0].broadcast("commit-req".into());
        let w_cr = o_cr.outbound[0].wire.clone();
        let cr_seq = cr_id.seq;

        es[1].on_wire(SiteId(0), w_cr.clone());
        let (_, o_m) = es[1].broadcast("unrelated".into());
        let w_m = o_m.outbound[0].wire.clone();

        // Any observer can tell from w_m alone:
        assert!(
            w_m.vc.get(SiteId(0)) >= cr_seq,
            "message clock must show origin delivered the commit request"
        );

        // Whereas a message broadcast WITHOUT having seen it does not:
        let (_, o_x) = es[2].broadcast("blind".into());
        assert!(o_x.outbound[0].wire.vc.get(SiteId(0)) < cr_seq);
    }

    #[test]
    fn relay_mode_forwards_first_copies() {
        let mut e = CausalBcast::<String>::new(SiteId(1), 3).with_relay();
        let mut origin = CausalBcast::<String>::new(SiteId(0), 3);
        let (_, o) = origin.broadcast("a".into());
        let w = o.outbound[0].wire.clone();
        let out = e.on_wire(SiteId(0), w.clone());
        assert_eq!(out.outbound.len(), 1);
        assert!(e.on_wire(SiteId(2), w).outbound.is_empty());
    }

    #[test]
    fn transitive_causality_three_hops() {
        let mut es = engines(4);
        let (_, o1) = es[0].broadcast("m1".into());
        let w1 = o1.outbound[0].wire.clone();
        es[1].on_wire(SiteId(0), w1.clone());
        let (_, o2) = es[1].broadcast("m2".into());
        let w2 = o2.outbound[0].wire.clone();
        es[2].on_wire(SiteId(0), w1.clone());
        es[2].on_wire(SiteId(1), w2.clone());
        let (_, o3) = es[2].broadcast("m3".into());
        let w3 = o3.outbound[0].wire.clone();

        // Site 3 receives m3, m2, m1 in fully reversed order.
        assert!(es[3].on_wire(SiteId(2), w3).deliveries.is_empty());
        assert!(es[3].on_wire(SiteId(1), w2).deliveries.is_empty());
        let out = es[3].on_wire(SiteId(0), w1);
        assert_eq!(payloads(&out), vec!["m1", "m2", "m3"]);
    }

    #[test]
    fn clock_advances_with_deliveries() {
        let mut es = engines(2);
        let (_, o) = es[0].broadcast("a".into());
        es[1].on_wire(SiteId(0), o.outbound[0].wire.clone());
        assert_eq!(es[1].clock().get(SiteId(0)), 1);
        assert_eq!(es[1].clock().get(SiteId(1)), 0);
    }

    /// Regression: a peer missing messages from *two* origins must get
    /// retransmissions for both, even under a cap smaller than either gap.
    /// The old implementation exhausted the whole cap on the first origin
    /// in clock iteration order, starving every later origin across
    /// retransmission rounds.
    #[test]
    fn retransmission_cap_is_shared_fairly_across_origins() {
        let mut es = engines(3);
        // Site 2 archives three messages from each of origins 0 and 1.
        for round in 0..3 {
            let (_, o0) = es[0].broadcast(format!("a{round}"));
            let (_, o1) = es[1].broadcast(format!("b{round}"));
            let w0 = o0.outbound[0].wire.clone();
            let w1 = o1.outbound[0].wire.clone();
            es[2].on_wire(SiteId(0), w0);
            es[2].on_wire(SiteId(1), w1);
        }
        // A peer that has delivered nothing asks with cap 2: it must get
        // the first message of EACH gapped origin, not two from origin 0.
        let out = es[2].retransmissions_for(&VectorClock::new(3), 2);
        assert_eq!(out.len(), 2);
        let origins: Vec<SiteId> = out.iter().map(|w| w.id.origin).collect();
        assert!(
            origins.contains(&SiteId(0)) && origins.contains(&SiteId(1)),
            "cap must be split across gapped origins, got {origins:?}"
        );
        assert!(
            out.iter().all(|w| w.id.seq == 1),
            "each origin's retransmission starts at its gap"
        );
        // A larger cap round-robins: 2 from each origin before any third.
        let out = es[2].retransmissions_for(&VectorClock::new(3), 4);
        let from = |s: usize| out.iter().filter(|w| w.id.origin == SiteId(s)).count();
        assert_eq!((from(0), from(1)), (2, 2));
        // Uncapped, everything archived comes back, in-gap-order per origin.
        let out = es[2].retransmissions_for(&VectorClock::new(3), 64);
        assert_eq!(out.len(), 6);
        for s in [0usize, 1] {
            let seqs: Vec<u64> = out
                .iter()
                .filter(|w| w.id.origin == SiteId(s))
                .map(|w| w.id.seq)
                .collect();
            assert_eq!(seqs, vec![1, 2, 3]);
        }
    }

    /// Companion to the fairness test for the backed-off solicitation
    /// cadence: retransmission rounds arrive *rarely* under backoff, so
    /// each round must advance every gapped origin — convergence takes
    /// rounds proportional to the deepest gap, not the sum of all gaps.
    #[test]
    fn capped_retransmission_rounds_advance_every_origin_each_round() {
        let mut es = engines(4);
        // Site 3 archives four messages from each of origins 0..=2.
        for round in 0..4 {
            for origin in 0..3usize {
                let (_, o) = es[origin].broadcast(format!("m{origin}-{round}"));
                let w = o.outbound[0].wire.clone();
                es[3].on_wire(SiteId(origin), w.clone());
                for (other, e) in es.iter_mut().enumerate().take(3) {
                    if other != origin {
                        e.on_wire(SiteId(origin), w.clone());
                    }
                }
            }
        }
        // A fully-lagging peer applies each capped round to its clock.
        let mut peer = CausalBcast::<String>::new(SiteId(3), 4);
        let mut rounds = 0;
        loop {
            let done = (0..3).all(|s| peer.clock().get(SiteId(s)) == 4);
            if done {
                break;
            }
            rounds += 1;
            assert!(rounds <= 12, "retransmission rounds must converge");
            let batch = es[3].retransmissions_for(peer.clock(), 3);
            // Cap 3 split over three gapped origins: one message each.
            let mut origins: Vec<usize> = batch.iter().map(|w| w.id.origin.index()).collect();
            origins.sort_unstable();
            assert_eq!(origins, vec![0, 1, 2], "round {rounds} skipped an origin");
            for w in batch {
                peer.on_wire(w.id.origin, w);
            }
        }
    }
}
