//! Property-based tests of the broadcast engines' ordering guarantees
//! under arbitrary (adversarially shuffled) wire arrival schedules.
//!
//! The simulator only produces per-link-FIFO schedules; these tests go
//! further and permute wire deliveries arbitrarily, which the holdback
//! machinery must tolerate (relayed copies can arrive in any order).

use bcastdb_broadcast::atomic::{AtomicBcast, IsisAbcast, SequencerAbcast};
use bcastdb_broadcast::msg::expand_dest;
use bcastdb_broadcast::ring::RingAbcast;
use bcastdb_broadcast::{CausalBcast, ReliableBcast};
use bcastdb_sim::SiteId;
use proptest::prelude::*;

/// A scripted broadcast: (origin site, payload).
fn script(n_sites: usize, len: usize) -> impl Strategy<Value = Vec<(usize, u64)>> {
    proptest::collection::vec((0..n_sites, any::<u64>()), 0..len)
}

/// Runs reliable engines with the wire queue permuted by `order_seed`,
/// returning each site's delivery log.
fn run_reliable_shuffled(
    n: usize,
    broadcasts: &[(usize, u64)],
    order_seed: u64,
) -> Vec<Vec<(SiteId, u64)>> {
    let mut engines: Vec<ReliableBcast<u64>> =
        (0..n).map(|i| ReliableBcast::new(SiteId(i), n)).collect();
    let mut logs: Vec<Vec<(SiteId, u64)>> = vec![Vec::new(); n];
    let mut wires = Vec::new();
    for &(origin, payload) in broadcasts {
        let (_, out) = engines[origin].broadcast(payload);
        for d in out.deliveries {
            logs[origin].push((d.id.origin, d.payload));
        }
        for ob in out.outbound {
            for to in expand_dest(ob.dest, SiteId(origin), n) {
                wires.push((to, ob.wire.clone()));
            }
        }
    }
    // Deterministic pseudo-shuffle of the delivery order.
    let mut rng = bcastdb_sim::DetRng::new(order_seed);
    let mut i = wires.len();
    while i > 1 {
        i -= 1;
        let j = rng.gen_range(0..=i);
        wires.swap(i, j);
    }
    for (to, wire) in wires {
        let out = engines[to.0].on_wire(SiteId(0), wire);
        for d in out.deliveries {
            logs[to.0].push((d.id.origin, d.payload));
        }
    }
    logs
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Reliable broadcast under arbitrary arrival order: every site delivers
    /// every message exactly once, in per-origin FIFO order.
    #[test]
    fn reliable_delivers_all_in_fifo_order(
        broadcasts in script(4, 24),
        order_seed in any::<u64>(),
    ) {
        let n = 4;
        let logs = run_reliable_shuffled(n, &broadcasts, order_seed);
        for (site, log) in logs.iter().enumerate() {
            prop_assert_eq!(log.len(), broadcasts.len(), "site {} delivered all", site);
            // Per-origin payload order matches broadcast order.
            for origin in 0..n {
                let sent: Vec<u64> = broadcasts
                    .iter()
                    .filter(|(o, _)| *o == origin)
                    .map(|&(_, p)| p)
                    .collect();
                let got: Vec<u64> = log
                    .iter()
                    .filter(|(o, _)| o.0 == origin)
                    .map(|&(_, p)| p)
                    .collect();
                prop_assert_eq!(&got, &sent, "site {} origin {}", site, origin);
            }
        }
    }

    /// Causal broadcast under per-link-FIFO (arbitrary interleaving across
    /// links): all sites deliver all messages, and any pair ordered by
    /// causality is delivered in that order everywhere.
    #[test]
    fn causal_respects_happens_before(
        broadcasts in script(3, 16),
        interleave_seed in any::<u64>(),
    ) {
        let n = 3;
        let mut engines: Vec<CausalBcast<u64>> =
            (0..n).map(|i| CausalBcast::new(SiteId(i), n)).collect();
        // Per-destination FIFO queues (models FIFO links; causal engines
        // assume no cross-origin ordering only).
        let mut links: Vec<std::collections::VecDeque<bcastdb_broadcast::causal::Wire<u64>>> =
            (0..n).map(|_| Default::default()).collect();
        let mut logs: Vec<Vec<(SiteId, u64, bcastdb_broadcast::VectorClock)>> =
            vec![Vec::new(); n];
        let mut rng = bcastdb_sim::DetRng::new(interleave_seed);
        let mut pending_broadcasts: std::collections::VecDeque<(usize, u64)> =
            broadcasts.iter().copied().collect();
        loop {
            // Randomly either broadcast the next scripted message or deliver
            // from a random link.
            let can_deliver: Vec<usize> =
                (0..n).filter(|&i| !links[i].is_empty()).collect();
            let do_broadcast = if pending_broadcasts.is_empty() {
                false
            } else if can_deliver.is_empty() {
                true
            } else {
                rng.gen_bool(0.5)
            };
            if do_broadcast {
                let (origin, payload) = pending_broadcasts.pop_front().expect("non-empty");
                let (_, out) = engines[origin].broadcast(payload);
                for d in out.deliveries {
                    logs[origin].push((d.id.origin, d.payload, d.vc));
                }
                for ob in out.outbound {
                    for to in expand_dest(ob.dest, SiteId(origin), n) {
                        links[to.0].push_back(ob.wire.clone());
                    }
                }
            } else if !can_deliver.is_empty() {
                // Pick a random nonempty link.
                let to = can_deliver[rng.gen_range(0..can_deliver.len())];
                let wire = links[to].pop_front().expect("non-empty");
                let out = engines[to].on_wire(SiteId(0), wire);
                for d in out.deliveries {
                    logs[to].push((d.id.origin, d.payload, d.vc));
                }
            } else {
                break;
            }
        }
        for (site, log) in logs.iter().enumerate() {
            prop_assert_eq!(log.len(), broadcasts.len(), "site {} delivered all", site);
            // Causality: for every pair in the log, if a's clock precedes
            // b's, a must appear first.
            for i in 0..log.len() {
                for j in 0..log.len() {
                    if i < j {
                        // j delivered after i: j must not happen-before i.
                        let rel = log[j].2.relation(&log[i].2);
                        prop_assert_ne!(
                            rel,
                            bcastdb_broadcast::CausalRelation::Before,
                            "site {}: later delivery happens-before earlier",
                            site
                        );
                    }
                }
            }
        }
    }

    /// Both atomic broadcast implementations agree on a single total order
    /// regardless of who broadcasts what.
    #[test]
    fn atomic_engines_agree_on_total_order(broadcasts in script(4, 16)) {
        let n = 4;
        fn drive<A: AtomicBcast<u64>>(mut engines: Vec<A>, script: &[(usize, u64)]) -> Vec<Vec<u64>> {
            let mut logs = vec![Vec::new(); engines.len()];
            let n = engines.len();
            let mut wires = std::collections::VecDeque::new();
            for &(origin, payload) in script {
                let (_, out) = engines[origin].broadcast(payload);
                for d in out.deliveries {
                    logs[origin].push(d.payload);
                }
                for ob in out.outbound {
                    for to in expand_dest(ob.dest, SiteId(origin), n) {
                        wires.push_back((to, ob.wire.clone()));
                    }
                }
            }
            while let Some((to, wire)) = wires.pop_front() {
                let out = engines[to.0].on_wire(SiteId(0), wire);
                for d in out.deliveries {
                    logs[to.0].push(d.payload);
                }
                for ob in out.outbound {
                    for dest in expand_dest(ob.dest, to, n) {
                        wires.push_back((dest, ob.wire.clone()));
                    }
                }
            }
            logs
        }
        let seq_logs = drive(
            (0..n).map(|i| SequencerAbcast::new(SiteId(i), n)).collect::<Vec<_>>(),
            &broadcasts,
        );
        let isis_logs = drive(
            (0..n).map(|i| IsisAbcast::new(SiteId(i), n)).collect::<Vec<_>>(),
            &broadcasts,
        );
        let ring_logs = drive(
            (0..n).map(|i| RingAbcast::new(SiteId(i), n)).collect::<Vec<_>>(),
            &broadcasts,
        );
        for logs in [&seq_logs, &isis_logs, &ring_logs] {
            for site in 1..n {
                prop_assert_eq!(&logs[site], &logs[0], "total order agreement");
            }
            prop_assert_eq!(logs[0].len(), broadcasts.len());
        }
        // Per-origin FIFO must also hold for the ring: the pipeline may
        // interleave origins differently from the sequencer, but a single
        // origin's messages are gseq-ordered in submission order.
        for origin in 0..n {
            let sent: Vec<u64> = broadcasts
                .iter()
                .filter(|(o, _)| *o == origin)
                .map(|&(_, p)| p)
                .collect();
            let origin_payloads: std::collections::HashSet<u64> = sent.iter().copied().collect();
            let got: Vec<u64> = ring_logs[0]
                .iter()
                .filter(|p| origin_payloads.contains(p))
                .copied()
                .collect();
            // Duplicate payload values across origins would make the filter
            // ambiguous; skip those generated cases.
            let all: Vec<u64> = broadcasts.iter().map(|&(_, p)| p).collect();
            let unique = all.len()
                == all
                    .iter()
                    .collect::<std::collections::HashSet<_>>()
                    .len();
            if unique {
                prop_assert_eq!(&got, &sent, "ring per-origin FIFO for origin {}", origin);
            }
        }
    }

    /// Lock-step cross-backend equivalence: when each broadcast fully
    /// settles before the next is submitted (every engine drains its wire
    /// queue between submissions), all three atomic backends must deliver
    /// the *identical* total order — the submission order. This pins the
    /// ring backend to the sequencer/ISIS semantics on identical inputs;
    /// any reordering, loss, or duplication in the ring pipeline breaks it.
    #[test]
    fn ring_matches_sequencer_and_isis_order_lock_step(broadcasts in script(5, 20)) {
        let n = 5;
        fn drive_serialized<A: AtomicBcast<u64>>(mut engines: Vec<A>, script: &[(usize, u64)]) -> Vec<Vec<u64>> {
            let n = engines.len();
            let mut logs = vec![Vec::new(); n];
            for &(origin, payload) in script {
                let mut wires = std::collections::VecDeque::new();
                let (_, out) = engines[origin].broadcast(payload);
                for d in out.deliveries {
                    logs[origin].push(d.payload);
                }
                for ob in out.outbound {
                    for to in expand_dest(ob.dest, SiteId(origin), n) {
                        wires.push_back((to, ob.wire.clone()));
                    }
                }
                // Drain to quiescence before the next submission.
                while let Some((to, wire)) = wires.pop_front() {
                    let out = engines[to.0].on_wire(SiteId(0), wire);
                    for d in out.deliveries {
                        logs[to.0].push(d.payload);
                    }
                    for ob in out.outbound {
                        for dest in expand_dest(ob.dest, to, n) {
                            wires.push_back((dest, ob.wire.clone()));
                        }
                    }
                }
            }
            logs
        }
        let seq_logs = drive_serialized(
            (0..n).map(|i| SequencerAbcast::new(SiteId(i), n)).collect::<Vec<_>>(),
            &broadcasts,
        );
        let isis_logs = drive_serialized(
            (0..n).map(|i| IsisAbcast::new(SiteId(i), n)).collect::<Vec<_>>(),
            &broadcasts,
        );
        let ring_logs = drive_serialized(
            (0..n).map(|i| RingAbcast::new(SiteId(i), n)).collect::<Vec<_>>(),
            &broadcasts,
        );
        let submitted: Vec<u64> = broadcasts.iter().map(|&(_, p)| p).collect();
        for logs in [&seq_logs, &isis_logs, &ring_logs] {
            for site_log in logs.iter() {
                prop_assert_eq!(site_log, &submitted, "serialized order is submission order");
            }
        }
        prop_assert_eq!(&ring_logs, &seq_logs, "ring vs sequencer");
        prop_assert_eq!(&ring_logs, &isis_logs, "ring vs isis");
    }
}
