//! Timing-wheel fast-path regression test.
//!
//! The simulator's event queue places each scheduled event in one of
//! three structures: the 8192-slot microsecond timing wheel (the fast
//! path), the `far` heap for events beyond the wheel horizon, and the
//! `past` queue for events scheduled at or before the current time. The
//! wheel is what makes the >1M events/sec throughput hold (see
//! `PERFORMANCE.md`), so a protocol or workload change that silently
//! pushes scheduling off the wheel is a performance bug even while
//! results stay correct.
//!
//! [`bcastdb_core::Cluster::wheel_stats`] exposes the placement counters
//! (they also stream out as `wheel.*` metrics samples); this test pins
//! the steady-state contract: message delays and protocol timers sit
//! well under the 8.192 ms horizon, so the overwhelming majority of
//! events take the fast path, and nothing is ever scheduled in the past.

use bcastdb_core::{Cluster, ProtocolKind};
use bcastdb_sim::SimDuration;
use bcastdb_workload::{WorkloadConfig, WorkloadRun};

#[test]
fn steady_state_workloads_stay_on_the_wheel_fast_path() {
    for proto in ProtocolKind::ALL {
        let cfg = WorkloadConfig {
            n_keys: 1000,
            theta: 0.6,
            reads_per_txn: 2,
            writes_per_txn: 2,
            readonly_fraction: 0.0,
            ..WorkloadConfig::default()
        };
        let mut cluster = Cluster::builder().sites(5).protocol(proto).seed(23).build();
        let run = WorkloadRun::new(cfg, 230);
        let report = run.open_loop(&mut cluster, 40, SimDuration::from_millis(15));
        assert!(report.quiesced, "{proto} did not quiesce");

        let w = cluster.wheel_stats();
        let total = w.sched_near + w.sched_far + w.sched_past;
        assert!(total > 0, "{proto}: no events were scheduled at all");
        assert_eq!(
            w.sched_past, 0,
            "{proto}: events scheduled in the past (wheel bypass bug)"
        );
        // The far heap is legitimate for long-horizon timers (think time,
        // keep-alives, workload arrivals), but a steady-state run must be
        // dominated by sub-horizon message and lock events.
        let far_fraction = w.sched_far as f64 / total as f64;
        assert!(
            far_fraction < 0.10,
            "{proto}: {:.1}% of {total} events went to the far heap \
             (sched_near={}, sched_far={}); the wheel fast path is being bypassed",
            far_fraction * 100.0,
            w.sched_near,
            w.sched_far
        );
        // Quiescence drained everything the wheel was still holding.
        assert_eq!(
            (w.ready_len, w.far_len, w.past_len),
            (0, 0, 0),
            "{proto}: events left behind after quiescence"
        );
    }
}
