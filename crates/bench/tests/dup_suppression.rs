//! Duplicate-delivery suppression across every protocol configuration.
//!
//! A 20% wildcard duplication plan (second copies arrive late and
//! *reordered* — they bypass the FIFO clamp) must be invisible at the
//! database layer: each of the five chaos cells runs a disjoint-key
//! workload twice, fault-free and under duplication, and the two runs
//! must end in the same committed state. Disjoint keys make the final
//! state independent of message timing (no conflicts, so every
//! transaction commits), which turns "the duplicate was suppressed"
//! into an exact equality: any double-apply shows up as a duplicated
//! writer in a key's install order, any dropped-as-duplicate original
//! as a missing write.

use bcastdb_bench::faultplan::ChaosCell;
use bcastdb_bench::TRACE_CAPACITY;
use bcastdb_core::Cluster;
use bcastdb_db::TxnSpec;
use bcastdb_sim::{FaultClause, FaultKind, FaultPlan, SimDuration, SimTime, SiteId};

const SITES: usize = 4;
/// Transactions per site; each writes two keys nobody else touches.
const TXNS_PER_SITE: u64 = 12;
const DEADLINE: SimTime = SimTime::from_micros(2_000_000);

fn dup_plan() -> FaultPlan {
    FaultPlan {
        clauses: vec![FaultClause {
            from: None,
            to: None,
            start: SimTime::ZERO,
            end: DEADLINE,
            kind: FaultKind::Duplicate {
                p: 0.2,
                extra_delay: SimDuration::from_micros(1_500),
            },
        }],
    }
}

/// Runs the disjoint-key workload for `cell`, returning the cluster
/// after the deadline.
fn run(cell: ChaosCell, seed: u64, plan: FaultPlan) -> Cluster {
    let mut builder = Cluster::builder()
        .sites(SITES)
        .protocol(cell.protocol())
        .seed(seed)
        .trace(TRACE_CAPACITY)
        .fault_plan(plan);
    if cell.relay() {
        builder = builder.relay(true);
    }
    if let Some(imp) = cell.abcast() {
        builder = builder.abcast(imp);
    }
    let mut cluster = builder.build();
    for site in 0..SITES {
        for j in 0..TXNS_PER_SITE {
            let at = SimTime::from_micros(1_000 + j * 15_000);
            let spec = TxnSpec::new()
                .write(key(site, j, 0), (100 * j + 1) as i64)
                .write(key(site, j, 1), (100 * j + 2) as i64);
            cluster.submit_at(at, SiteId(site), spec);
        }
    }
    cluster.run_until(DEADLINE);
    cluster
}

fn key(site: usize, j: u64, k: u64) -> String {
    format!("d{site}_{j}_{k}")
}

#[test]
fn duplicated_packets_never_double_apply_or_change_the_final_state() {
    for cell in ChaosCell::ALL {
        for seed in 1..=3u64 {
            let label = format!("{cell}/seed {seed}");
            let clean = run(cell, seed, FaultPlan::none());
            let dup = run(cell, seed, dup_plan());
            assert!(
                dup.network().messages_duplicated() > 0,
                "{label}: the duplication clause never engaged"
            );

            for (cluster, which) in [(&clean, "clean"), (&dup, "dup")] {
                cluster
                    .check_trace_invariants()
                    .unwrap_or_else(|v| panic!("{label}/{which}: {v}"));
                for site in 0..SITES {
                    assert!(
                        !cluster.replica(SiteId(site)).state().has_undecided(),
                        "{label}/{which}: site {site} undecided at the deadline"
                    );
                }
                assert!(
                    cluster.replicas_converged(),
                    "{label}/{which}: replicas diverged"
                );
                // Disjoint write sets: every transaction commits.
                let m = cluster.metrics();
                assert_eq!(
                    (m.commits(), m.aborts()),
                    ((SITES as u64) * TXNS_PER_SITE, 0),
                    "{label}/{which}: conflict-free workload must fully commit"
                );
            }

            // Exactly-once apply per (origin, seq): each key has one
            // writer, installed exactly once at every site — and the dup
            // run's final state equals the fault-free run's.
            for site in 0..SITES {
                let clean_store = &clean.replica(SiteId(site)).state().store;
                let dup_store = &dup.replica(SiteId(site)).state().store;
                for origin in 0..SITES {
                    for j in 0..TXNS_PER_SITE {
                        for k in 0..2 {
                            let key = bcastdb_db::Key::new(key(origin, j, k));
                            let installs = dup_store.install_order(&key);
                            assert_eq!(
                                installs.len(),
                                1,
                                "{label}: site {site} applied {key:?} {} times: {installs:?}",
                                installs.len()
                            );
                            assert_eq!(
                                dup_store.read(&key),
                                clean_store.read(&key),
                                "{label}: site {site} diverged from the fault-free run on {key:?}"
                            );
                        }
                    }
                }
                assert_eq!(
                    dup_store.applied_writes(),
                    clean_store.applied_writes(),
                    "{label}: site {site} applied a different number of writes"
                );
            }
        }
    }
}
