//! Parallel-harness regression tests: a sweep run on worker threads must
//! be indistinguishable — to the byte — from the serial run, and the
//! JSONL trace stream must survive a cluster that is dropped without an
//! explicit flush.

use bcastdb_bench::{Sweep, Table};
use bcastdb_core::{Cluster, ProtocolKind, TxnSpec};
use bcastdb_sim::SimDuration;
use bcastdb_sim::SiteId;
use bcastdb_workload::{WorkloadConfig, WorkloadRun};

/// One F1-style run: build a traced cluster, drive the open-loop
/// workload, return the table cells plus the full `Metrics` snapshot
/// (via its `Debug` rendering, which covers every counter and latency
/// sample).
fn f1_run(n: usize, proto: ProtocolKind) -> (Vec<String>, String) {
    let cfg = WorkloadConfig {
        n_keys: 1000,
        theta: 0.6,
        reads_per_txn: 2,
        writes_per_txn: 2,
        readonly_fraction: 0.0,
        ..WorkloadConfig::default()
    };
    let mut cluster = Cluster::builder()
        .sites(n)
        .protocol(proto)
        .trace(4096)
        .seed(7)
        .build();
    let run = WorkloadRun::new(cfg, 70 + n as u64);
    let report = run.open_loop(&mut cluster, 30, SimDuration::from_millis(20));
    assert!(report.quiesced, "{proto}@{n} did not quiesce");
    let m = &report.metrics;
    let cells = vec![
        n.to_string(),
        proto.name().to_string(),
        m.commits().to_string(),
        m.aborts().to_string(),
        format!("{:.3}", m.update_latency.mean().as_millis_f64()),
        format!("{:.3}", m.update_latency.p95().as_millis_f64()),
    ];
    (cells, format!("{:?}", report.metrics))
}

/// The full F1 sweep run serially and with four workers must produce
/// byte-identical CSV output and identical `Metrics` snapshots for every
/// run. This is the determinism contract the parallel harness sells:
/// `BCASTDB_JOBS` may change wall-clock, never results.
#[test]
fn f1_sweep_is_identical_serial_and_parallel() {
    let mut configs = Vec::new();
    for n in [3usize, 5, 7, 9, 13] {
        for proto in ProtocolKind::ALL {
            configs.push((n, proto));
        }
    }
    let serial = Sweep::with_jobs(1).run(configs.clone(), |&(n, p)| f1_run(n, p));
    let parallel = Sweep::with_jobs(4).run(configs.clone(), |&(n, p)| f1_run(n, p));
    assert_eq!(serial.jobs, 1);
    assert_eq!(parallel.jobs, 4);

    let headers = [
        "sites", "protocol", "commits", "aborts", "mean_ms", "p95_ms",
    ];
    let mut serial_table = Table::new("f1_determinism", &headers);
    let mut parallel_table = Table::new("f1_determinism", &headers);
    for (i, ((cells_s, metrics_s), (cells_p, metrics_p))) in
        serial.results.iter().zip(&parallel.results).enumerate()
    {
        let (n, proto) = configs[i];
        assert_eq!(
            metrics_s, metrics_p,
            "{proto}@{n}: Metrics snapshot differs between serial and 4-job runs"
        );
        serial_table.row_strings(cells_s);
        parallel_table.row_strings(cells_p);
    }
    assert_eq!(
        serial_table.csv_bytes(),
        parallel_table.csv_bytes(),
        "CSV bytes differ between serial and 4-job runs"
    );
}

/// One metrics-sampled run: the same F1-style workload with the
/// deterministic sampler on at a 1 ms virtual-time interval, rendered to
/// the exact JSONL bytes `--metrics-out` would write.
fn metrics_run(n: usize, proto: ProtocolKind) -> String {
    let cfg = WorkloadConfig {
        n_keys: 1000,
        theta: 0.6,
        reads_per_txn: 2,
        writes_per_txn: 2,
        readonly_fraction: 0.0,
        ..WorkloadConfig::default()
    };
    let mut cluster = Cluster::builder()
        .sites(n)
        .protocol(proto)
        .metrics(SimDuration::from_millis(1))
        .seed(7)
        .build();
    let run = WorkloadRun::new(cfg, 70 + n as u64);
    let report = run.open_loop(&mut cluster, 30, SimDuration::from_millis(20));
    assert!(report.quiesced, "{proto}@{n} did not quiesce");
    bcastdb_sim::stats::render_jsonl(&cluster.metrics_samples())
}

/// The metrics sampler rides the virtual clock, so its JSONL output must
/// be byte-identical at any worker count — the same contract as the CSV
/// tables, extended to the observability stream.
#[test]
fn metrics_jsonl_is_identical_serial_and_parallel() {
    let mut configs = Vec::new();
    for n in [3usize, 5] {
        for proto in ProtocolKind::ALL {
            configs.push((n, proto));
        }
    }
    let serial = Sweep::with_jobs(1).run(configs.clone(), |&(n, p)| metrics_run(n, p));
    let parallel = Sweep::with_jobs(4).run(configs.clone(), |&(n, p)| metrics_run(n, p));
    for (i, (jsonl_s, jsonl_p)) in serial.results.iter().zip(&parallel.results).enumerate() {
        let (n, proto) = configs[i];
        assert!(
            !jsonl_s.is_empty(),
            "{proto}@{n}: sampled run produced no metrics"
        );
        assert_eq!(
            jsonl_s, jsonl_p,
            "{proto}@{n}: metrics JSONL differs between serial and 4-job runs"
        );
    }
}

/// Dropping a cluster without calling `finish_trace_jsonl` must still
/// leave a complete, well-formed trace file behind: the `BufWriter`
/// wrapping the JSONL sink flushes on drop.
#[test]
fn trace_jsonl_flushes_on_drop() {
    let path =
        std::env::temp_dir().join(format!("bcastdb-drop-trace-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    {
        let mut cluster = Cluster::builder()
            .sites(3)
            .protocol(ProtocolKind::ReliableBcast)
            .trace(1024)
            .trace_jsonl(&path)
            .seed(5)
            .build();
        cluster.submit(SiteId(0), TxnSpec::new().write("x", 1));
        cluster.run_to_quiescence();
        // No finish_trace_jsonl: the cluster (and its BufWriter) drops here.
    }
    let text = std::fs::read_to_string(&path).expect("trace file exists after drop");
    let _ = std::fs::remove_file(&path);
    assert!(!text.is_empty(), "dropped trace file is empty");
    assert!(text.ends_with('\n'), "dropped trace file ends mid-line");
    for line in text.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "incomplete JSONL line after drop: {line:?}"
        );
    }
}
