//! Deterministic allocation audit for the simulator hot path.
//!
//! The bench harness installs [`bcastdb_memprobe::CountingAllocator`] as
//! the global allocator (see `crates/bench/src/lib.rs`), and this test
//! binary links the harness, so every heap allocation in the process is
//! counted. Because the simulator is deterministic, the counts are *exact*
//! — the same run performs the same allocations every time — which makes
//! `allocs/event` a noise-free stand-in for profiling on a box with no
//! `perf`/`valgrind`. (Capturing backtraces inside the allocator is not an
//! option: it deadlocks — see `crates/memprobe/src/lib.rs`.)
//!
//! The test runs a t2-style crash workload once, measuring the allocation
//! delta of each phase (cluster build, simulation, verification), prints
//! the breakdown (visible with `--nocapture`), and ratchets a ceiling on
//! the simulation phase's allocs/event. The ceiling has ~25% headroom over
//! the measured value so that toolchain drift doesn't trip it, but any
//! change that reintroduces a per-event or per-message allocation on the
//! hot path (a clone per delivery, a `Vec` per fan-out, an un-pre-sized
//! ring) blows well past it.
//!
//! Everything runs inside ONE `#[test]` function: the counter is
//! process-global, so a concurrently running test would pollute the
//! deltas.

use bcastdb_bench::{check_traced_run, TRACE_CAPACITY};
use bcastdb_core::{AbcastImpl, Cluster, ProtocolKind};
use bcastdb_sim::{DetRng, SimDuration, SimTime, SiteId};
use bcastdb_workload::WorkloadConfig;

const N: usize = 5;
const CRASH_AT_US: u64 = 200_000;

fn allocs() -> u64 {
    bcastdb_memprobe::allocation_count()
}

/// Runs the t2 `ReliableBcast` crash scenario phase by phase and returns
/// `(phase_name, allocation_delta)` pairs plus the total event count.
fn phased_crash_run(trace: bool) -> (Vec<(&'static str, u64)>, u64) {
    let mut phases = Vec::new();
    let mut mark = allocs();
    let mut phase = |name: &'static str, phases: &mut Vec<(&'static str, u64)>| {
        let now = allocs();
        phases.push((name, now - mark));
        mark = now;
    };

    let mut builder = Cluster::builder()
        .sites(N)
        .protocol(ProtocolKind::ReliableBcast)
        .seed(37)
        .membership(true)
        .suspect_after(SimDuration::from_millis(60));
    if trace {
        builder = builder.trace(TRACE_CAPACITY);
    }
    let mut cluster = builder.build();
    phase("build cluster", &mut phases);

    let cfg = WorkloadConfig {
        n_keys: 300,
        theta: 0.5,
        reads_per_txn: 1,
        writes_per_txn: 2,
        ..WorkloadConfig::default()
    };
    let zipf = cfg.sampler();
    let mut rng = DetRng::new(370);
    for site in 0..N {
        let mut at = SimTime::from_micros(1_000);
        let mut site_rng = rng.fork(site as u64);
        for _ in 0..10 {
            at += SimDuration::from_millis(15);
            cluster.submit_at(at, SiteId(site), cfg.gen_txn(&zipf, &mut site_rng));
        }
    }
    phase("generate workload", &mut phases);

    cluster.run_until(SimTime::from_micros(CRASH_AT_US));
    phase("simulate: pre-crash", &mut phases);

    cluster.crash(SiteId(N - 1));
    let mut view_change_done = SimTime::from_micros(CRASH_AT_US);
    loop {
        view_change_done += SimDuration::from_millis(5);
        cluster.run_until(view_change_done);
        let all_evicted = (0..N - 1).all(|s| {
            !cluster
                .replica(SiteId(s))
                .view_members()
                .contains(&SiteId(N - 1))
        });
        if all_evicted {
            break;
        }
    }
    phase("simulate: view change", &mut phases);

    for site in 0..N - 1 {
        let mut at = view_change_done + SimDuration::from_millis(5);
        let mut site_rng = rng.fork(100 + site as u64);
        for _ in 0..10 {
            at += SimDuration::from_millis(15);
            cluster.submit_at(at, SiteId(site), cfg.gen_txn(&zipf, &mut site_rng));
        }
    }
    cluster.run_until(view_change_done + SimDuration::from_secs(2));
    phase("simulate: post-crash", &mut phases);

    let survivors: Vec<SiteId> = (0..N - 1).map(SiteId).collect();
    assert!(cluster.check_serializability_among(&survivors).is_ok());
    phase("check serializability", &mut phases);

    if trace {
        check_traced_run(&cluster, "alloc audit crash run");
        phase("check traced run", &mut phases);
    }

    (phases, cluster.events_processed())
}

/// Runs an a1-style broadcast-heavy workload on the ring backend (the
/// regime the a1 saturation sweep measures: 16 sites, where the ring is
/// the default) and returns the simulation phase's allocation delta plus
/// the event count. Workload generation and cluster build are excluded —
/// only the event loop with the ring pipeline (Data forwarding, Commit
/// circulation, cumulative acks) is measured.
fn ring_abcast_run() -> (u64, u64) {
    const SITES: usize = 16;
    let mut cluster = Cluster::builder()
        .sites(SITES)
        .protocol(ProtocolKind::AtomicBcast)
        .abcast(AbcastImpl::Ring)
        .seed(91)
        .build();
    let cfg = WorkloadConfig {
        n_keys: 300,
        theta: 0.5,
        reads_per_txn: 1,
        writes_per_txn: 2,
        ..WorkloadConfig::default()
    };
    let zipf = cfg.sampler();
    let mut rng = DetRng::new(910);
    for site in 0..SITES {
        let mut at = SimTime::from_micros(1_000);
        let mut site_rng = rng.fork(site as u64);
        for _ in 0..8 {
            at += SimDuration::from_millis(10);
            cluster.submit_at(at, SiteId(site), cfg.gen_txn(&zipf, &mut site_rng));
        }
    }
    let before = allocs();
    cluster.run_to_quiescence();
    let sim_allocs = allocs() - before;
    assert!(cluster.check_serializability().is_ok());
    (sim_allocs, cluster.events_processed())
}

#[test]
fn allocs_per_event_stays_bounded() {
    let (with_trace, events) = phased_crash_run(true);
    let (without_trace, events_untraced) = phased_crash_run(false);

    let total = |phases: &[(&str, u64)]| phases.iter().map(|(_, a)| a).sum::<u64>();
    eprintln!("=== alloc audit: t2 ReliableBcast crash scenario ===");
    eprintln!(
        "--- traced ({events} events, {} allocs total) ---",
        total(&with_trace)
    );
    for (name, delta) in &with_trace {
        eprintln!("{delta:>9}  {name}");
    }
    eprintln!(
        "--- untraced ({events_untraced} events, {} allocs total) ---",
        total(&without_trace)
    );
    for (name, delta) in &without_trace {
        eprintln!("{delta:>9}  {name}");
    }

    // The ratchet: allocations per simulated event across the three
    // simulation phases (excluding one-time cluster build, workload
    // generation, and post-run verification). Measured at ~2.1 with
    // tracing on; the ceiling leaves headroom for toolchain drift but
    // not for a reintroduced per-event allocation.
    let sim_allocs: u64 = with_trace
        .iter()
        .filter(|(name, _)| name.starts_with("simulate:"))
        .map(|(_, a)| a)
        .sum();
    let per_event = sim_allocs as f64 / events as f64;
    eprintln!("simulation-phase allocs/event (traced): {per_event:.3}");
    assert!(
        per_event < 3.0,
        "simulation phases now allocate {per_event:.3} times per event \
         (ceiling 3.0) — a hot-path allocation crept back in; \
         see PERFORMANCE.md"
    );

    // Tracing must stay allocation-free per event once the ring is
    // pre-sized: the traced and untraced runs may differ by the ring
    // buffers themselves (cluster build) but not per-event.
    let sim_untraced: u64 = without_trace
        .iter()
        .filter(|(name, _)| name.starts_with("simulate:"))
        .map(|(_, a)| a)
        .sum();
    let tracing_overhead = sim_allocs.saturating_sub(sim_untraced) as f64 / events as f64;
    eprintln!("tracing alloc overhead per event: {tracing_overhead:.3}");
    assert!(
        tracing_overhead < 0.5,
        "tracing now allocates {tracing_overhead:.3} times per event during \
         simulation — the trace ring should be pre-sized at build time"
    );

    // Determinism sanity: the audit itself only makes sense if the run is
    // reproducible, which the event-count equality of two independent
    // builds (traced vs untraced differ only in observers) attests.
    assert_eq!(events, events_untraced, "tracing changed the simulation");

    // Ring-backend ratchet: the pipelined ring must not regress the
    // allocation budget. Its hot path (Data forward to successor, Commit
    // circulation, cumulative Ack, stability pruning) reuses pre-sized
    // per-site state; the pure-broadcast a1 saturation sweep runs at
    // ~0.3 allocs/event, and this 16-site *transactional* run measures
    // ~3.2 (certification and txn bookkeeping across 16 replicas on top
    // of the broadcast layer). The ceiling leaves ~25% headroom — a
    // per-hop payload clone or a per-Commit Vec blows far past it.
    let (ring_allocs, ring_events) = ring_abcast_run();
    let ring_per_event = ring_allocs as f64 / ring_events as f64;
    eprintln!(
        "ring backend (16 sites): {ring_allocs} allocs / {ring_events} events \
         = {ring_per_event:.3} allocs/event"
    );
    assert!(
        ring_per_event < 4.0,
        "ring backend now allocates {ring_per_event:.3} times per event \
         (ceiling 4.0) — a hot-path allocation crept into the ring \
         pipeline; see PERFORMANCE.md"
    );
}
