//! # bcastdb-bench
//!
//! Shared helpers for the experiment harness binaries (one per table /
//! figure of the reproduced evaluation — `t1_messages`, `t2_failures`,
//! `f1_latency_vs_n` … `a3_loss_tolerance`) and the Criterion
//! micro-benches.
//!
//! Every binary prints through [`Table`] (aligned console output, mirrored
//! to `$BCASTDB_RESULTS_DIR/<name>.csv` when that variable is set), runs
//! its clusters with tracing enabled ([`TRACE_CAPACITY`]), and validates
//! each run with [`check_traced_run`]: the offline trace invariant checker
//! must accept the execution and the per-phase message totals must sum to
//! the flat counters. [`phase_headers`] / [`phase_cells`] append the
//! per-phase breakdown (`prepare,vote,ack,decision,retransmit,membership`)
//! as extra columns.
//!
//! # Example
//!
//! ```
//! use bcastdb_bench::{phase_cells, phase_headers, Table};
//! use bcastdb_core::{Cluster, ProtocolKind, TxnSpec};
//! use bcastdb_sim::SiteId;
//!
//! let mut cluster = Cluster::builder()
//!     .sites(3)
//!     .protocol(ProtocolKind::ReliableBcast)
//!     .trace(1024)
//!     .seed(7)
//!     .build();
//! cluster.submit(SiteId(0), TxnSpec::new().write("x", 1));
//! cluster.run_to_quiescence();
//! bcastdb_bench::check_traced_run(&cluster, "doc-example");
//!
//! let mut headers = vec!["messages"];
//! headers.extend(phase_headers());
//! let mut table = Table::new("doc_example", &headers);
//! let total = cluster.messages_sent().to_string();
//! let mut cells: Vec<&dyn std::fmt::Display> = vec![&total];
//! let phases = phase_cells(&cluster.phase_counts());
//! cells.extend(phases.iter().map(|c| c as &dyn std::fmt::Display));
//! table.row(&cells);
//! table.emit();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Every experiment binary counts its heap allocations: in a deterministic
/// simulator the count is exactly reproducible, making `allocs/event` a
/// noise-free cost metric next to the wall-clock `events_per_sec` (see
/// `PERFORMANCE.md`). The probe is a relaxed counter increment per
/// allocation — far below measurement noise.
#[global_allocator]
static ALLOC_PROBE: bcastdb_memprobe::CountingAllocator = bcastdb_memprobe::CountingAllocator;

pub mod faultplan;
pub mod harness;
pub mod nemesis;
pub mod perfdiff;
pub mod perfetto;
pub mod scenarios;

pub use harness::{
    git_rev, jobs_from_env, read_ledger_relay, write_wallclock_json, Ledger, LedgerEntry, Sweep,
    SweepOutcome,
};

use bcastdb_core::Cluster;
use bcastdb_sim::telemetry::{Phase, PhaseCounts, Segment, SegmentSummary};
use std::fmt::Display;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Ring-buffer capacity the experiment binaries pass to
/// [`bcastdb_core::ClusterBuilder::trace`]. Only the retained tail is
/// bounded by this; the streaming invariant checker sees every event.
pub const TRACE_CAPACITY: usize = 4096;

/// Per-phase breakdown column headers, in [`Phase::ALL`] order (the same
/// order [`phase_cells`] emits), for appending to a table's header row.
pub fn phase_headers() -> Vec<&'static str> {
    Phase::ALL.iter().map(|p| p.name()).collect()
}

/// The per-phase message tallies as table cells, in [`Phase::ALL`] order.
pub fn phase_cells(pc: &PhaseCounts) -> Vec<String> {
    Phase::ALL.iter().map(|p| pc.get(*p).to_string()).collect()
}

/// Per-segment latency column headers (`seg_<name>_ms`, mean milliseconds),
/// in [`Segment::ALL`] order — the same order [`segment_cells`] emits.
pub fn segment_headers() -> Vec<String> {
    Segment::ALL
        .iter()
        .map(|s| format!("seg_{}_ms", s.name()))
        .collect()
}

/// The mean per-segment latencies of a [`SegmentSummary`] as table cells
/// (milliseconds, two decimals), in [`Segment::ALL`] order. The cells sum
/// to the mean end-to-end commit latency up to integer-microsecond
/// truncation.
pub fn segment_cells(summary: &SegmentSummary) -> Vec<String> {
    Segment::ALL
        .iter()
        .map(|s| f2(summary.segment(*s).mean().as_millis_f64()))
        .collect()
}

/// The `--trace-out <path>` flag shared by the experiment binaries: dumps
/// the full JSONL trace of each run for `bcast-trace` to consume. Reads the
/// process arguments first and falls back to the `BCASTDB_TRACE_OUT`
/// environment variable; returns `None` when neither is present.
///
/// Binaries that run several clusters derive one file per run from this
/// base path via [`trace_out_for`].
///
/// # Panics
/// Panics if `--trace-out` is passed without a following path.
pub fn trace_out_path() -> Option<PathBuf> {
    path_flag("--trace-out", "BCASTDB_TRACE_OUT")
}

/// The `--metrics-out <path>` flag shared by the experiment binaries:
/// enables the deterministic in-sim metrics sampler (1 ms virtual-time
/// interval) and dumps its samples as JSONL for `bcast-trace export
/// --metrics` to consume. Falls back to the `BCASTDB_METRICS_OUT`
/// environment variable; returns `None` (sampler off, zero overhead)
/// when neither is present. Multi-run binaries derive one file per run
/// via [`trace_out_for`].
///
/// # Panics
/// Panics if `--metrics-out` is passed without a following path.
pub fn metrics_out_path() -> Option<PathBuf> {
    path_flag("--metrics-out", "BCASTDB_METRICS_OUT")
}

fn path_flag(flag: &str, env: &str) -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == flag {
            let path = args
                .next()
                .unwrap_or_else(|| panic!("{flag} requires a path argument"));
            return Some(PathBuf::from(path));
        }
        if let Some(path) = arg
            .strip_prefix(flag)
            .and_then(|rest| rest.strip_prefix('='))
        {
            return Some(PathBuf::from(path));
        }
    }
    std::env::var_os(env).map(PathBuf::from)
}

/// Derives the per-run trace file for `label` from the `--trace-out` base
/// path: `traces.jsonl` + `atomic` → `traces-atomic.jsonl`. Experiments
/// that run one cluster per protocol/parameter must keep the runs in
/// separate files — transaction numbers restart per run, so concatenated
/// traces would trip `bcast-trace check`.
pub fn trace_out_for(base: &Path, label: &str) -> PathBuf {
    let stem = base.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
    let ext = base.extension().and_then(|e| e.to_str()).unwrap_or("jsonl");
    base.with_file_name(format!("{stem}-{label}.{ext}"))
}

/// Validates a traced experiment run: the trace invariant checker accepts
/// the execution, and the per-phase totals sum to the flat per-kind
/// message counters (the accounting identity every experiment relies on).
///
/// # Panics
/// Panics with `label` on any violation — the experiments treat a bad
/// trace as a harness bug, not a data point.
pub fn check_traced_run(cluster: &Cluster, label: &str) {
    cluster
        .check_trace_invariants()
        .unwrap_or_else(|v| panic!("{label}: trace invariant violated: {v}"));
    check_phase_accounting(cluster, label);
}

/// Like [`check_traced_run`], but tolerates transactions still in flight —
/// for experiments whose measured phenomenon *is* the wedged commit (the
/// causal protocol with keep-alives off on a quiet network).
///
/// # Panics
/// Panics with `label` on any other violation.
pub fn check_traced_run_allowing_pending(cluster: &Cluster, label: &str) {
    cluster
        .check_trace_invariants_allowing_pending()
        .unwrap_or_else(|v| panic!("{label}: trace invariant violated: {v}"));
    check_phase_accounting(cluster, label);
}

fn check_phase_accounting(cluster: &Cluster, label: &str) {
    let phases = cluster.phase_counts().total();
    let flat = cluster.metrics().messages_by_kind();
    assert_eq!(
        phases, flat,
        "{label}: per-phase totals ({phases}) must sum to the flat message counts ({flat})"
    );
}

/// A simple aligned-column table printer with optional CSV mirroring.
///
/// Every experiment binary prints its table through this, and (when
/// `BCASTDB_RESULTS_DIR` is set) also writes `<name>.csv` there so the
/// series can be plotted.
#[derive(Debug)]
pub struct Table {
    name: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given experiment name and column headers.
    pub fn new(name: &str, headers: &[&str]) -> Self {
        Table {
            name: name.to_owned(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (cells are formatted with `Display`).
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Appends one row of pre-formatted cells. This is how the parallel
    /// sweeps add rows: workers format their cells off-thread, the main
    /// thread appends them in config order.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row_strings(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// The CSV rendering of this table (headers + rows), exactly the bytes
    /// mirrored to `$BCASTDB_RESULTS_DIR/<name>.csv` by [`Table::emit`].
    pub fn csv_bytes(&self) -> String {
        let mut csv = self.headers.join(",") + "\n";
        for r in &self.rows {
            csv.push_str(&r.join(","));
            csv.push('\n');
        }
        csv
    }

    /// Prints the table to stdout (one buffered write) and mirrors it to
    /// CSV if `BCASTDB_RESULTS_DIR` is set.
    pub fn emit(&self) {
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain(std::iter::once(h.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let mut text = format!("\n== {} ==\n", self.name);
        let header_line: Vec<String> = self
            .headers
            .iter()
            .zip(&widths)
            .map(|(h, w)| format!("{h:>w$}"))
            .collect();
        let header_line = header_line.join("  ");
        text.push_str(&header_line);
        text.push('\n');
        text.push_str(&"-".repeat(header_line.len()));
        text.push('\n');
        for r in &self.rows {
            let line: Vec<String> = r
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            text.push_str(&line.join("  "));
            text.push('\n');
        }
        if let Ok(dir) = std::env::var("BCASTDB_RESULTS_DIR") {
            let _ = fs::create_dir_all(&dir);
            let path = Path::new(&dir).join(format!("{}.csv", self.name));
            if fs::write(&path, self.csv_bytes()).is_ok() {
                text.push_str(&format!("(written to {})\n", path.display()));
            }
        }
        let stdout = std::io::stdout();
        let mut out = std::io::BufWriter::new(stdout.lock());
        out.write_all(text.as_bytes())
            .and_then(|()| out.flush())
            .expect("write table to stdout");
    }
}

/// Formats a float with fixed precision for table cells.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a ratio as `x.xx×` (or `n/a` for a zero denominator).
pub fn ratio(num: f64, den: f64) -> String {
    if den == 0.0 {
        "n/a".to_owned()
    } else {
        format!("{:.2}x", num / den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rows_align() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(&[&1, &"x"]);
        t.row(&[&22, &"yy"]);
        t.emit(); // smoke: no panic
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a"]);
        t.row(&[&1, &2]);
    }

    #[test]
    fn ratio_handles_zero() {
        assert_eq!(ratio(1.0, 0.0), "n/a");
        assert_eq!(ratio(3.0, 2.0), "1.50x");
    }

    #[test]
    fn f2_formats_two_decimals() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f2(2.5), "2.50");
    }

    #[test]
    fn trace_out_for_labels_per_run() {
        assert_eq!(
            trace_out_for(Path::new("/tmp/traces.jsonl"), "atomic"),
            Path::new("/tmp/traces-atomic.jsonl")
        );
        assert_eq!(
            trace_out_for(Path::new("out"), "p2p"),
            Path::new("out-p2p.jsonl")
        );
    }

    #[test]
    fn segment_columns_match_segments() {
        let headers = segment_headers();
        assert_eq!(headers.len(), Segment::ALL.len());
        assert_eq!(headers[0], "seg_read_ms");
        let cells = segment_cells(&SegmentSummary::new());
        assert_eq!(cells.len(), headers.len());
        assert!(cells.iter().all(|c| c == "0.00"));
    }
}
