//! Shared helpers for the experiment harness binaries (one per table /
//! figure of the reproduced evaluation) and the Criterion micro-benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::fs;
use std::path::Path;

/// A simple aligned-column table printer with optional CSV mirroring.
///
/// Every experiment binary prints its table through this, and (when
/// `BCASTDB_RESULTS_DIR` is set) also writes `<name>.csv` there so the
/// series can be plotted.
#[derive(Debug)]
pub struct Table {
    name: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given experiment name and column headers.
    pub fn new(name: &str, headers: &[&str]) -> Self {
        Table {
            name: name.to_owned(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (cells are formatted with `Display`).
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Prints the table to stdout and mirrors it to CSV if
    /// `BCASTDB_RESULTS_DIR` is set.
    pub fn emit(&self) {
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain(std::iter::once(h.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        println!("\n== {} ==", self.name);
        let header_line: Vec<String> = self
            .headers
            .iter()
            .zip(&widths)
            .map(|(h, w)| format!("{h:>w$}"))
            .collect();
        println!("{}", header_line.join("  "));
        println!("{}", "-".repeat(header_line.join("  ").len()));
        for r in &self.rows {
            let line: Vec<String> = r
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            println!("{}", line.join("  "));
        }
        if let Ok(dir) = std::env::var("BCASTDB_RESULTS_DIR") {
            let _ = fs::create_dir_all(&dir);
            let path = Path::new(&dir).join(format!("{}.csv", self.name));
            let mut csv = self.headers.join(",") + "\n";
            for r in &self.rows {
                csv.push_str(&r.join(","));
                csv.push('\n');
            }
            if fs::write(&path, csv).is_ok() {
                println!("(written to {})", path.display());
            }
        }
    }
}

/// Formats a float with fixed precision for table cells.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a ratio as `x.xx×` (or `n/a` for a zero denominator).
pub fn ratio(num: f64, den: f64) -> String {
    if den == 0.0 {
        "n/a".to_owned()
    } else {
        format!("{:.2}x", num / den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rows_align() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(&[&1, &"x"]);
        t.row(&[&22, &"yy"]);
        t.emit(); // smoke: no panic
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a"]);
        t.row(&[&1, &2]);
    }

    #[test]
    fn ratio_handles_zero() {
        assert_eq!(ratio(1.0, 0.0), "n/a");
        assert_eq!(ratio(3.0, 2.0), "1.50x");
    }

    #[test]
    fn f2_formats_two_decimals() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f2(2.5), "2.50");
    }
}
