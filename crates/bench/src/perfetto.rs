//! Chrome Trace Event / Perfetto export of a simulated run.
//!
//! Converts a trace (the JSONL a run dumps via `--trace-out`), the
//! per-transaction spans reconstructed from it, and optional metrics
//! samples (`--metrics-out` JSONL) into one self-contained JSON document
//! in the [Chrome Trace Event format], loadable in `ui.perfetto.dev` or
//! `chrome://tracing`:
//!
//! * **pid 1 "cluster"** — one thread track per site (`tid = site + 1`).
//!   Transaction lifecycle milestones (`submit`, `vote`, `commit`, …)
//!   appear as instant events on the site that recorded them. Message
//!   transmissions (`Send`/`Deliver`/`Drop`/`BatchFlushed`) are *omitted*:
//!   they dominate event counts a thousandfold and Perfetto's counter and
//!   slice views tell the bandwidth story better.
//! * **async "txn" slices** — every committed transaction becomes a
//!   nestable async slice on its origin's track, from submission to
//!   origin commit, with one child slice per nonzero latency segment
//!   (`read`, `disseminate`, `order_wait`, `votes`, `decide` — the same
//!   decomposition `bcast-trace summary` prints).
//! * **pid 2 "metrics"** — every scalar in the metrics samples becomes a
//!   counter track (`ph: "C"`); histograms contribute their cumulative
//!   observation count as `<name>.n`.
//!
//! Timestamps are the simulator's virtual microseconds, which is exactly
//! the unit the trace viewer expects — wall-clock never enters the file,
//! so exports are byte-identical across machines and job counts.
//!
//! [Chrome Trace Event format]:
//!     https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use bcastdb_sim::stats::Sample;
use bcastdb_sim::telemetry::{Segment, SpanBuilder, TraceEvent, TxnRef, TxnSpan};
use bcastdb_sim::SiteId;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// The `pid` of the per-site lifecycle tracks.
pub const CLUSTER_PID: u64 = 1;

/// The `pid` of the metrics counter tracks.
pub const METRICS_PID: u64 = 2;

/// Renders a complete Chrome Trace Event JSON document
/// (`{"traceEvents":[...]}`) from a run's trace and metrics samples.
///
/// Pass an empty `samples` slice when the run had metrics off — the
/// metrics process is then omitted entirely.
pub fn export_chrome_trace(events: &[TraceEvent], samples: &[Sample]) -> String {
    let mut out = Vec::new();
    let sites = sites_in(events);

    // Process/thread metadata first, so every later (pid, tid) pair is
    // declared before use.
    out.push(meta_process(CLUSTER_PID, "cluster"));
    for &site in &sites {
        out.push(meta_thread(
            CLUSTER_PID,
            tid_for(site),
            &format!("site {}", site.0),
        ));
    }
    if !samples.is_empty() {
        out.push(meta_process(METRICS_PID, "metrics"));
    }

    let mut spans = SpanBuilder::new();
    for ev in events {
        spans.ingest(ev);
        if let Some(e) = instant_event(ev) {
            out.push(e);
        }
    }
    for span in spans.spans().values() {
        txn_slices(span, &mut out);
    }
    counter_events(samples, &mut out);

    let mut doc = String::from("{\"traceEvents\":[\n");
    doc.push_str(&out.join(",\n"));
    doc.push_str("\n]}\n");
    doc
}

fn tid_for(site: SiteId) -> u64 {
    site.0 as u64 + 1
}

/// The `origin:num` transaction label the CLI uses everywhere
/// (`bcast-trace timeline 0:3 ...`), numeric on both sides.
fn txn_label(txn: TxnRef) -> String {
    format!("{}:{}", txn.origin.0, txn.num)
}

fn sites_in(events: &[TraceEvent]) -> BTreeSet<SiteId> {
    let mut sites = BTreeSet::new();
    for ev in events {
        match ev {
            TraceEvent::Send { from, to, .. }
            | TraceEvent::Deliver { from, to, .. }
            | TraceEvent::Drop { from, to, .. }
            | TraceEvent::BatchFlushed { from, to, .. } => {
                sites.insert(*from);
                sites.insert(*to);
            }
            TraceEvent::Submit { txn, .. }
            | TraceEvent::LocksAcquired { txn, .. }
            | TraceEvent::CommitReqOut { txn, .. } => {
                sites.insert(txn.origin);
            }
            TraceEvent::Vote { site, .. }
            | TraceEvent::Decided { site, .. }
            | TraceEvent::Commit { site, .. }
            | TraceEvent::Abort { site, .. }
            | TraceEvent::TotalOrder { site, .. }
            | TraceEvent::ViewChange { site, .. }
            | TraceEvent::Crash { site, .. }
            | TraceEvent::Suspect { site, .. }
            | TraceEvent::FastDecide { site, .. } => {
                sites.insert(*site);
            }
        }
    }
    sites
}

fn meta_process(pid: u64, name: &str) -> String {
    format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":\"{}\"}}}}",
        escape(name)
    )
}

fn meta_thread(pid: u64, tid: u64, name: &str) -> String {
    format!(
        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
        escape(name)
    )
}

fn instant(name: &str, ts: u64, tid: u64, args: &str) -> String {
    format!(
        "{{\"name\":\"{}\",\"cat\":\"lifecycle\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":{CLUSTER_PID},\"tid\":{tid},\"args\":{{{args}}}}}",
        escape(name)
    )
}

/// The instant event for a lifecycle trace record; `None` for the
/// message-level records the export deliberately drops.
fn instant_event(ev: &TraceEvent) -> Option<String> {
    Some(match ev {
        TraceEvent::Send { .. }
        | TraceEvent::Deliver { .. }
        | TraceEvent::Drop { .. }
        | TraceEvent::BatchFlushed { .. } => return None,
        TraceEvent::Submit { at, txn, read_only } => instant(
            "submit",
            at.as_micros(),
            tid_for(txn.origin),
            &format!("\"txn\":\"{}\",\"read_only\":{read_only}", txn_label(*txn)),
        ),
        TraceEvent::LocksAcquired { at, txn } => instant(
            "locks_acquired",
            at.as_micros(),
            tid_for(txn.origin),
            &format!("\"txn\":\"{}\"", txn_label(*txn)),
        ),
        TraceEvent::CommitReqOut { at, txn } => instant(
            "commit_req_out",
            at.as_micros(),
            tid_for(txn.origin),
            &format!("\"txn\":\"{}\"", txn_label(*txn)),
        ),
        TraceEvent::Vote { at, site, txn, yes } => instant(
            "vote",
            at.as_micros(),
            tid_for(*site),
            &format!("\"txn\":\"{}\",\"yes\":{yes}", txn_label(*txn)),
        ),
        TraceEvent::Decided {
            at,
            site,
            txn,
            commit,
        } => instant(
            "decided",
            at.as_micros(),
            tid_for(*site),
            &format!("\"txn\":\"{}\",\"commit\":{commit}", txn_label(*txn)),
        ),
        TraceEvent::Commit { at, site, txn } => instant(
            "commit",
            at.as_micros(),
            tid_for(*site),
            &format!("\"txn\":\"{}\"", txn_label(*txn)),
        ),
        TraceEvent::Abort {
            at,
            site,
            txn,
            reason,
        } => instant(
            "abort",
            at.as_micros(),
            tid_for(*site),
            &format!(
                "\"txn\":\"{}\",\"reason\":\"{}\"",
                txn_label(*txn),
                escape(reason)
            ),
        ),
        TraceEvent::TotalOrder {
            at,
            site,
            txn,
            gseq,
        } => instant(
            "total_order",
            at.as_micros(),
            tid_for(*site),
            &format!("\"txn\":\"{}\",\"gseq\":{gseq}", txn_label(*txn)),
        ),
        TraceEvent::ViewChange { at, site, members } => {
            let members: Vec<String> = members.iter().map(|s| s.0.to_string()).collect();
            instant(
                "view_change",
                at.as_micros(),
                tid_for(*site),
                &format!("\"members\":[{}]", members.join(",")),
            )
        }
        TraceEvent::Crash { at, site } => instant("crash", at.as_micros(), tid_for(*site), ""),
        TraceEvent::Suspect { at, site, suspect } => instant(
            "suspect",
            at.as_micros(),
            tid_for(*site),
            &format!("\"suspect\":{}", suspect.0),
        ),
        TraceEvent::FastDecide { at, site, txn } => instant(
            "fast_decide",
            at.as_micros(),
            tid_for(*site),
            &format!("\"txn\":\"{}\"", txn_label(*txn)),
        ),
    })
}

fn async_event(ph: char, name: &str, id: &str, ts: u64, tid: u64) -> String {
    format!(
        "{{\"name\":\"{}\",\"cat\":\"txn\",\"ph\":\"{ph}\",\"id\":\"{}\",\"ts\":{ts},\"pid\":{CLUSTER_PID},\"tid\":{tid}}}",
        escape(name),
        escape(id)
    )
}

/// Emits the nestable async slices for one committed transaction: an
/// outer `txn O:N` slice over its whole latency, with one child per
/// nonzero segment of the five-way decomposition. Aborted or pending
/// transactions emit nothing — their milestones are still visible as
/// instants.
fn txn_slices(span: &TxnSpan, out: &mut Vec<String>) {
    let Some(breakdown) = span.decompose() else {
        return;
    };
    let Some(submit) = span.submit else { return };
    let tid = tid_for(span.txn.origin);
    let id = txn_label(span.txn);
    let outer = format!("txn {id}");
    let start = submit.as_micros();
    let mut at = start;
    out.push(async_event('b', &outer, &id, start, tid));
    for seg in Segment::ALL {
        let d = breakdown.get(seg).as_micros();
        if d == 0 {
            continue;
        }
        out.push(async_event('b', seg.name(), &id, at, tid));
        at += d;
        out.push(async_event('e', seg.name(), &id, at, tid));
    }
    out.push(async_event('e', &outer, &id, at, tid));
}

/// Emits one counter event per scalar per sample on the metrics process,
/// plus a `<name>.n` cumulative-count track per histogram.
fn counter_events(samples: &[Sample], out: &mut Vec<String>) {
    for s in samples {
        let ts = s.at.as_micros();
        for (name, v) in &s.values {
            out.push(counter(name, ts, *v));
        }
        for (name, buckets) in &s.hists {
            let n: u64 = buckets.iter().map(|&(_, c)| c).sum();
            out.push(counter(&format!("{name}.n"), ts, n));
        }
    }
}

fn counter(name: &str, ts: u64, value: u64) -> String {
    format!(
        "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{ts},\"pid\":{METRICS_PID},\"args\":{{\"value\":{value}}}}}",
        escape(name)
    )
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcastdb_sim::telemetry::TxnRef;
    use bcastdb_sim::{SimDuration, SimTime};

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    fn txn(origin: usize, num: u64) -> TxnRef {
        TxnRef {
            origin: SiteId(origin),
            num,
        }
    }

    fn committed_txn_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Submit {
                at: t(100),
                txn: txn(0, 1),
                read_only: false,
            },
            TraceEvent::LocksAcquired {
                at: t(150),
                txn: txn(0, 1),
            },
            TraceEvent::CommitReqOut {
                at: t(200),
                txn: txn(0, 1),
            },
            TraceEvent::Vote {
                at: t(300),
                site: SiteId(1),
                txn: txn(0, 1),
                yes: true,
            },
            TraceEvent::Commit {
                at: t(400),
                site: SiteId(0),
                txn: txn(0, 1),
            },
        ]
    }

    #[test]
    fn document_is_wrapped_and_declares_processes() {
        let doc = export_chrome_trace(&committed_txn_events(), &[]);
        assert!(doc.starts_with("{\"traceEvents\":[\n"));
        assert!(doc.trim_end().ends_with("]}"));
        assert!(doc.contains("\"process_name\""));
        assert!(doc.contains("\"name\":\"cluster\""));
        assert!(doc.contains("\"name\":\"site 0\""));
        assert!(doc.contains("\"name\":\"site 1\""));
        // Metrics process only appears when samples exist.
        assert!(!doc.contains("\"name\":\"metrics\""));
    }

    #[test]
    fn committed_txn_becomes_nested_async_slices() {
        let doc = export_chrome_trace(&committed_txn_events(), &[]);
        assert!(doc.contains("\"name\":\"txn 0:1\",\"cat\":\"txn\",\"ph\":\"b\""));
        assert!(doc.contains("\"name\":\"txn 0:1\",\"cat\":\"txn\",\"ph\":\"e\""));
        // The segment children share the outer slice's id.
        assert!(doc
            .contains("\"name\":\"read\",\"cat\":\"txn\",\"ph\":\"b\",\"id\":\"0:1\",\"ts\":100"));
        assert!(doc.contains(
            "\"name\":\"decide\",\"cat\":\"txn\",\"ph\":\"e\",\"id\":\"0:1\",\"ts\":400"
        ));
    }

    #[test]
    fn message_events_are_dropped_but_lifecycle_instants_kept() {
        let mut events = committed_txn_events();
        events.push(TraceEvent::Send {
            at: t(250),
            from: SiteId(0),
            to: SiteId(1),
            phase: bcastdb_sim::telemetry::Phase::Prepare,
        });
        let doc = export_chrome_trace(&events, &[]);
        assert!(!doc.contains("\"Send\""));
        assert!(doc.contains("\"name\":\"submit\""));
        assert!(doc.contains("\"name\":\"vote\""));
        assert!(doc.contains("\"name\":\"commit\""));
        // The Send's endpoints still get thread tracks.
        assert!(doc.contains("\"name\":\"site 1\""));
    }

    #[test]
    fn metrics_samples_become_counter_tracks() {
        let mut sample = Sample::new(t(1000));
        sample.set("queue_depth", 7);
        sample.hists.insert("lat".into(), vec![(3, 2), (4, 1)]);
        let doc = export_chrome_trace(&committed_txn_events(), &[sample]);
        assert!(doc.contains("\"name\":\"metrics\""));
        assert!(doc.contains(
            "{\"name\":\"queue_depth\",\"ph\":\"C\",\"ts\":1000,\"pid\":2,\"args\":{\"value\":7}}"
        ));
        assert!(doc.contains(
            "{\"name\":\"lat.n\",\"ph\":\"C\",\"ts\":1000,\"pid\":2,\"args\":{\"value\":3}}"
        ));
    }

    #[test]
    fn aborted_txns_emit_instants_but_no_slice() {
        let events = vec![
            TraceEvent::Submit {
                at: t(10),
                txn: txn(2, 5),
                read_only: false,
            },
            TraceEvent::Abort {
                at: t(20),
                site: SiteId(2),
                txn: txn(2, 5),
                reason: "abort_wounded".into(),
            },
        ];
        let doc = export_chrome_trace(&events, &[]);
        assert!(doc.contains("\"name\":\"abort\""));
        assert!(doc.contains("\"reason\":\"abort_wounded\""));
        assert!(!doc.contains("\"cat\":\"txn\",\"ph\":\"b\""));
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(escape("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }
}
