//! Canonical whole-simulator scenarios, shared by the criterion
//! `whole_sim` benchmark group and the `profile_loop` profiling driver.
//!
//! The crash scenario here is the `t2_failures` experiment's crash run
//! minus tracing and table output: submit a Zipf workload on five sites,
//! crash one mid-run, drive the view change, and load the survivors. It
//! is the repository's headline "events per second" workload — a full
//! protocol stack over the simulator, not a micro-loop — and it is
//! deterministic: the same protocol always processes exactly the same
//! number of events, which the callers assert.

use bcastdb_core::{Cluster, ProtocolKind};
use bcastdb_sim::{DetRng, SimDuration, SimTime, SiteId};
use bcastdb_workload::WorkloadConfig;

/// Sites in the crash scenario.
pub const CRASH_SCENARIO_SITES: usize = 5;

const CRASH_AT_US: u64 = 200_000;

/// Runs the t2-style crash scenario under `proto` (untraced) and returns
/// the number of simulator events processed.
///
/// The count is deterministic per protocol; it changes only when the
/// protocol's message flow itself changes.
pub fn crash_scenario(proto: ProtocolKind) -> u64 {
    const N: usize = CRASH_SCENARIO_SITES;
    let mut cluster = Cluster::builder()
        .sites(N)
        .protocol(proto)
        .seed(37)
        .membership(true)
        .suspect_after(SimDuration::from_millis(60))
        .build();
    let cfg = WorkloadConfig {
        n_keys: 300,
        theta: 0.5,
        reads_per_txn: 1,
        writes_per_txn: 2,
        ..WorkloadConfig::default()
    };
    let zipf = cfg.sampler();
    let mut rng = DetRng::new(370);
    for site in 0..N {
        let mut at = SimTime::from_micros(1_000);
        let mut site_rng = rng.fork(site as u64);
        for _ in 0..10 {
            at += SimDuration::from_millis(15);
            cluster.submit_at(at, SiteId(site), cfg.gen_txn(&zipf, &mut site_rng));
        }
    }
    cluster.run_until(SimTime::from_micros(CRASH_AT_US));
    cluster.crash(SiteId(N - 1));
    let mut view_change_done = SimTime::from_micros(CRASH_AT_US);
    loop {
        view_change_done += SimDuration::from_millis(5);
        cluster.run_until(view_change_done);
        let all_evicted = (0..N - 1).all(|s| {
            !cluster
                .replica(SiteId(s))
                .view_members()
                .contains(&SiteId(N - 1))
        });
        if all_evicted {
            break;
        }
        assert!(
            view_change_done < SimTime::from_micros(CRASH_AT_US + 2_000_000),
            "{proto}: view change never completed"
        );
    }
    for site in 0..N - 1 {
        let mut at = view_change_done + SimDuration::from_millis(5);
        let mut site_rng = rng.fork(100 + site as u64);
        for _ in 0..10 {
            at += SimDuration::from_millis(15);
            cluster.submit_at(at, SiteId(site), cfg.gen_txn(&zipf, &mut site_rng));
        }
    }
    cluster.run_until(view_change_done + SimDuration::from_secs(2));
    cluster.events_processed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_scenario_event_counts_are_stable() {
        // The whole-sim benchmark and the profiling driver report
        // events/sec against these counts; a protocol change that moves
        // them should move this test deliberately.
        assert_eq!(crash_scenario(ProtocolKind::ReliableBcast), 10129);
        assert_eq!(crash_scenario(ProtocolKind::CausalBcast), 9149);
        assert_eq!(crash_scenario(ProtocolKind::AtomicBcast), 8723);
    }
}
