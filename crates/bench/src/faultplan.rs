//! Seeded random fault plans for the chaos campaign: generation,
//! compact text serialization (for `--replay`), and shrinking.
//!
//! A chaos run is fully determined by `(seed, cell)`: the seed drives a
//! [`DetRng`] that picks the clause mix, and the cell restricts which
//! clause kinds are *fair* for the protocol under test (a protocol with
//! no retransmission path must not face packet loss, and the p2p
//! protocol's correctness argument assumes FIFO links, so it never sees
//! reorder). When a run fails validation, [`shrink_plan`] bisects the
//! plan — dropping clauses, then halving windows — down to a minimal
//! failing plan whose text form is a one-line repro.
//!
//! ## Plan grammar
//!
//! ```text
//! plan   := clause (';' clause)*
//! clause := kind '@' from '>' to '@' start '..' end
//! kind   := 'drop(' p ')' | 'dup(' p ',' extra_us ')'
//!         | 'reorder(' p ',' max_extra_us ')' | 'burst'
//!         | 'spike(' p ',' extra_us ')'
//! from, to := site number | '*'          (wildcard: any site)
//! start, end := microseconds since simulation start
//! ```
//!
//! Example: `drop(0.25)@1>2@0..600000;dup(0.1,2500)@*>*@50000..150000`.
//! Probabilities round-trip exactly — Rust's `f64` `Display` prints the
//! shortest string that parses back to the same bits.

use bcastdb_core::{AbcastImpl, ProtocolKind};
use bcastdb_sim::{DetRng, FaultClause, FaultKind, FaultPlan, SimDuration, SimTime, SiteId};

/// One protocol configuration of the chaos matrix, with its fault
/// envelope (which clause kinds a generated plan may contain).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosCell {
    /// §2 point-to-point 2PC. Its correctness argument assumes reliable
    /// FIFO links and it has no retransmission, so the envelope is
    /// duplicate + delay-spike only.
    P2p,
    /// §3 reliable broadcast with the relay retransmission path on:
    /// survives everything, including loss and gray links.
    Reliable,
    /// §4 causal broadcast with relay: same full envelope.
    Causal,
    /// §5 atomic broadcast, fixed-sequencer backend. No retransmission,
    /// so no loss — but the total order must survive dup/reorder/spikes.
    AtomicSeq,
    /// §5 atomic broadcast, pipelined-ring backend: same envelope as the
    /// sequencer, exercising the ring's dedup and contiguity watermark.
    AtomicRing,
}

impl ChaosCell {
    /// Every cell, in campaign order.
    pub const ALL: [ChaosCell; 5] = [
        ChaosCell::P2p,
        ChaosCell::Reliable,
        ChaosCell::Causal,
        ChaosCell::AtomicSeq,
        ChaosCell::AtomicRing,
    ];

    /// Short stable name used in tables and `--replay` strings.
    pub fn name(self) -> &'static str {
        match self {
            ChaosCell::P2p => "p2p",
            ChaosCell::Reliable => "reliable",
            ChaosCell::Causal => "causal",
            ChaosCell::AtomicSeq => "atomic-seq",
            ChaosCell::AtomicRing => "atomic-ring",
        }
    }

    /// Parses a [`ChaosCell::name`] back into the cell.
    pub fn parse(s: &str) -> Option<ChaosCell> {
        ChaosCell::ALL.into_iter().find(|c| c.name() == s)
    }

    /// The protocol this cell runs.
    pub fn protocol(self) -> ProtocolKind {
        match self {
            ChaosCell::P2p => ProtocolKind::PointToPoint,
            ChaosCell::Reliable => ProtocolKind::ReliableBcast,
            ChaosCell::Causal => ProtocolKind::CausalBcast,
            ChaosCell::AtomicSeq | ChaosCell::AtomicRing => ProtocolKind::AtomicBcast,
        }
    }

    /// The atomic-broadcast backend override, if this cell needs one.
    pub fn abcast(self) -> Option<AbcastImpl> {
        match self {
            ChaosCell::AtomicSeq => Some(AbcastImpl::Sequencer),
            ChaosCell::AtomicRing => Some(AbcastImpl::Ring),
            _ => None,
        }
    }

    /// Whether this cell runs with the relay retransmission path (and
    /// the bounded-backoff solicitation cadence) enabled. Only these
    /// cells can recover from dropped packets.
    pub fn relay(self) -> bool {
        matches!(self, ChaosCell::Reliable | ChaosCell::Causal)
    }

    /// The clause kinds a generated plan may contain for this cell.
    ///
    /// Loss (probabilistic drop and gray-link bursts) is only fair for
    /// cells with a retransmission path; reorder is excluded for p2p,
    /// whose 2PC message flow assumes per-link FIFO.
    fn envelope(self) -> &'static [ClauseKind] {
        use ClauseKind::*;
        match self {
            ChaosCell::P2p => &[Dup, Spike],
            ChaosCell::Reliable | ChaosCell::Causal => &[Drop, Dup, Reorder, Burst, Spike],
            ChaosCell::AtomicSeq | ChaosCell::AtomicRing => &[Dup, Reorder, Spike],
        }
    }
}

impl std::fmt::Display for ChaosCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Parameter-free tags of [`FaultKind`], for envelope tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClauseKind {
    Drop,
    Dup,
    Reorder,
    Burst,
    Spike,
}

/// Generates the fault plan for `(seed, cell)`: 1–4 clauses drawn from
/// the cell's envelope, each on a random (possibly wildcard) directed
/// link, with a random window inside `horizon`.
///
/// All randomness comes from a [`DetRng`] forked per cell, so the same
/// `(seed, cell, n_sites, horizon)` always yields the same plan, on any
/// machine, independent of what other cells run.
pub fn gen_plan(seed: u64, cell: ChaosCell, n_sites: usize, horizon: SimDuration) -> FaultPlan {
    let mut rng = DetRng::new(seed ^ 0xc4a05).fork(cell as u64);
    let horizon_us = horizon.as_micros();
    let n_clauses = rng.gen_range(1..5u64) as usize;
    let mut clauses = Vec::with_capacity(n_clauses);
    for _ in 0..n_clauses {
        let env = cell.envelope();
        let kind_tag = env[rng.gen_range(0..env.len() as u64) as usize];
        // Probabilities in steps of 0.01 keep the text form short; the
        // exact f64 round-trips through Display either way.
        let pct = |rng: &mut DetRng, lo: u64, hi: u64| rng.gen_range(lo..hi) as f64 / 100.0;
        let kind = match kind_tag {
            ClauseKind::Drop => FaultKind::Drop {
                p: pct(&mut rng, 5, 35),
            },
            ClauseKind::Dup => FaultKind::Duplicate {
                p: pct(&mut rng, 5, 40),
                extra_delay: SimDuration::from_micros(rng.gen_range(100..5_000)),
            },
            ClauseKind::Reorder => FaultKind::Reorder {
                p: pct(&mut rng, 5, 40),
                max_extra: SimDuration::from_micros(rng.gen_range(100..5_000)),
            },
            ClauseKind::Burst => FaultKind::BurstLoss,
            ClauseKind::Spike => FaultKind::DelaySpike {
                p: pct(&mut rng, 2, 20),
                extra: SimDuration::from_micros(rng.gen_range(1_000..20_000)),
            },
        };
        // A gray link that blankets the whole run on a wildcard link
        // would just stall everything; bound bursts to ~80 ms on one
        // directed link. Other clauses may be wildcard and run-long.
        let (from, to, start, end) = if kind_tag == ClauseKind::Burst {
            let from = rng.gen_range(0..n_sites as u64) as usize;
            let mut to = rng.gen_range(0..n_sites as u64 - 1) as usize;
            if to >= from {
                to += 1;
            }
            let len = rng.gen_range(10_000..80_000);
            let start = rng.gen_range(0..horizon_us.saturating_sub(len));
            (Some(SiteId(from)), Some(SiteId(to)), start, start + len)
        } else {
            let pick_site = |rng: &mut DetRng| {
                if rng.gen_bool(0.5) {
                    Some(SiteId(rng.gen_range(0..n_sites as u64) as usize))
                } else {
                    None
                }
            };
            let from = pick_site(&mut rng);
            let to = pick_site(&mut rng);
            let start = rng.gen_range(0..horizon_us / 2);
            let end = start + rng.gen_range(horizon_us / 10..horizon_us);
            (from, to, start, end)
        };
        clauses.push(FaultClause {
            from,
            to,
            start: SimTime::from_micros(start),
            end: SimTime::from_micros(end),
            kind,
        });
    }
    FaultPlan { clauses }
}

/// Renders a plan in the replayable text grammar (see module docs).
pub fn plan_to_string(plan: &FaultPlan) -> String {
    plan.clauses
        .iter()
        .map(clause_to_string)
        .collect::<Vec<_>>()
        .join(";")
}

fn clause_to_string(c: &FaultClause) -> String {
    let kind = match &c.kind {
        FaultKind::Drop { p } => format!("drop({p})"),
        FaultKind::Duplicate { p, extra_delay } => {
            format!("dup({p},{})", extra_delay.as_micros())
        }
        FaultKind::Reorder { p, max_extra } => {
            format!("reorder({p},{})", max_extra.as_micros())
        }
        FaultKind::BurstLoss => "burst".to_string(),
        FaultKind::DelaySpike { p, extra } => format!("spike({p},{})", extra.as_micros()),
    };
    let site = |s: Option<SiteId>| s.map_or("*".to_string(), |s| s.0.to_string());
    format!(
        "{kind}@{}>{}@{}..{}",
        site(c.from),
        site(c.to),
        c.start.as_micros(),
        c.end.as_micros()
    )
}

/// Parses the text grammar back into a plan.
///
/// # Errors
/// Returns a description of the first malformed clause.
pub fn parse_plan(s: &str) -> Result<FaultPlan, String> {
    let s = s.trim();
    if s.is_empty() {
        return Ok(FaultPlan::none());
    }
    let clauses = s
        .split(';')
        .map(parse_clause)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(FaultPlan { clauses })
}

fn parse_clause(s: &str) -> Result<FaultClause, String> {
    let bad = |why: &str| format!("bad clause {s:?}: {why}");
    let mut parts = s.split('@');
    let (kind_s, link_s, win_s) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(k), Some(l), Some(w), None) => (k, l, w),
        _ => return Err(bad("expected kind@from>to@start..end")),
    };
    let kind = parse_kind(kind_s).map_err(|e| bad(&e))?;
    let (from_s, to_s) = link_s
        .split_once('>')
        .ok_or_else(|| bad("expected from>to"))?;
    let site = |t: &str| -> Result<Option<SiteId>, String> {
        if t == "*" {
            Ok(None)
        } else {
            t.parse::<usize>()
                .map(|n| Some(SiteId(n)))
                .map_err(|_| bad("site must be a number or '*'"))
        }
    };
    let (start_s, end_s) = win_s
        .split_once("..")
        .ok_or_else(|| bad("expected start..end"))?;
    let us = |t: &str| -> Result<u64, String> {
        t.parse::<u64>().map_err(|_| bad("time must be integer µs"))
    };
    let (start, end) = (us(start_s)?, us(end_s)?);
    if start >= end {
        return Err(bad("empty window"));
    }
    Ok(FaultClause {
        from: site(from_s)?,
        to: site(to_s)?,
        start: SimTime::from_micros(start),
        end: SimTime::from_micros(end),
        kind,
    })
}

fn parse_kind(s: &str) -> Result<FaultKind, String> {
    if s == "burst" {
        return Ok(FaultKind::BurstLoss);
    }
    let (name, rest) = s
        .split_once('(')
        .ok_or_else(|| format!("unknown kind {s:?}"))?;
    let args_s = rest
        .strip_suffix(')')
        .ok_or_else(|| format!("unterminated args in {s:?}"))?;
    let args: Vec<&str> = args_s.split(',').collect();
    let p = |i: usize| -> Result<f64, String> {
        args.get(i)
            .and_then(|a| a.parse::<f64>().ok())
            .filter(|p| (0.0..=1.0).contains(p))
            .ok_or_else(|| format!("bad probability in {s:?}"))
    };
    let us = |i: usize| -> Result<SimDuration, String> {
        args.get(i)
            .and_then(|a| a.parse::<u64>().ok())
            .map(SimDuration::from_micros)
            .ok_or_else(|| format!("bad duration in {s:?}"))
    };
    match (name, args.len()) {
        ("drop", 1) => Ok(FaultKind::Drop { p: p(0)? }),
        ("dup", 2) => Ok(FaultKind::Duplicate {
            p: p(0)?,
            extra_delay: us(1)?,
        }),
        ("reorder", 2) => Ok(FaultKind::Reorder {
            p: p(0)?,
            max_extra: us(1)?,
        }),
        ("spike", 2) => Ok(FaultKind::DelaySpike {
            p: p(0)?,
            extra: us(1)?,
        }),
        _ => Err(format!("unknown kind or arity: {s:?}")),
    }
}

/// Shrinks a failing plan to a (locally) minimal failing plan.
///
/// `still_fails` re-runs the cell under a candidate plan and reports
/// whether the violation persists. Two greedy passes, both to fixpoint:
/// first remove whole clauses, then halve each surviving clause's window
/// (front half, back half) while the failure reproduces. The total
/// number of re-runs is capped at `budget`; the best plan found so far
/// is returned when the budget runs out.
pub fn shrink_plan(
    plan: &FaultPlan,
    budget: usize,
    mut still_fails: impl FnMut(&FaultPlan) -> bool,
) -> (FaultPlan, usize) {
    let mut best = plan.clone();
    let mut runs = 0usize;
    let mut try_candidate = |cand: &FaultPlan, runs: &mut usize| -> bool {
        if *runs >= budget {
            return false;
        }
        *runs += 1;
        still_fails(cand)
    };

    // Pass 1: drop clauses one at a time until no single removal still
    // fails. Iterating to fixpoint handles clauses whose removal only
    // helps after another clause is gone.
    let mut changed = true;
    while changed && runs < budget {
        changed = false;
        let mut i = 0;
        while i < best.clauses.len() && best.clauses.len() > 1 {
            let mut cand = best.clone();
            cand.clauses.remove(i);
            if try_candidate(&cand, &mut runs) {
                best = cand;
                changed = true;
            } else {
                i += 1;
            }
        }
    }

    // Pass 2: halve windows. For each clause, repeatedly try keeping
    // only the first or second half of its active window.
    let mut changed = true;
    while changed && runs < budget {
        changed = false;
        for i in 0..best.clauses.len() {
            loop {
                let (start, end) = (
                    best.clauses[i].start.as_micros(),
                    best.clauses[i].end.as_micros(),
                );
                if end - start < 2_000 {
                    break; // window already ≤ 2 ms: stop splitting
                }
                let mid = start + (end - start) / 2;
                let mut front = best.clone();
                front.clauses[i].end = SimTime::from_micros(mid);
                if try_candidate(&front, &mut runs) {
                    best = front;
                    changed = true;
                    continue;
                }
                let mut back = best.clone();
                back.clauses[i].start = SimTime::from_micros(mid);
                if try_candidate(&back, &mut runs) {
                    best = back;
                    changed = true;
                    continue;
                }
                break;
            }
        }
    }
    (best, runs)
}

#[cfg(test)]
mod tests {
    use super::*;

    const HORIZON: SimDuration = SimDuration::from_millis(600);

    #[test]
    fn generation_is_deterministic_per_cell() {
        for cell in ChaosCell::ALL {
            let a = gen_plan(42, cell, 4, HORIZON);
            let b = gen_plan(42, cell, 4, HORIZON);
            assert_eq!(a, b, "{cell}: same (seed, cell) must yield same plan");
            assert!(!a.is_empty());
        }
        let p2p = gen_plan(42, ChaosCell::P2p, 4, HORIZON);
        let rel = gen_plan(42, ChaosCell::Reliable, 4, HORIZON);
        assert_ne!(p2p, rel, "cells draw from independent rng forks");
    }

    #[test]
    fn generated_plans_respect_the_cell_envelope() {
        for cell in ChaosCell::ALL {
            for seed in 0..50 {
                let plan = gen_plan(seed, cell, 4, HORIZON);
                for c in &plan.clauses {
                    let lossy = matches!(c.kind, FaultKind::Drop { .. } | FaultKind::BurstLoss);
                    let reorder = matches!(c.kind, FaultKind::Reorder { .. });
                    assert!(
                        !lossy || cell.relay(),
                        "{cell}/{seed}: loss clause without a retransmission path: {c:?}"
                    );
                    assert!(
                        !(reorder && cell == ChaosCell::P2p),
                        "{cell}/{seed}: p2p assumes FIFO links: {c:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn plan_text_round_trips_exactly() {
        for cell in ChaosCell::ALL {
            for seed in 0..100 {
                let plan = gen_plan(seed, cell, 4, HORIZON);
                let text = plan_to_string(&plan);
                let back = parse_plan(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
                assert_eq!(plan, back, "round-trip of {text}");
            }
        }
    }

    #[test]
    fn parse_accepts_the_documented_example() {
        let plan = parse_plan("drop(0.25)@1>2@0..600000;dup(0.1,2500)@*>*@50000..150000").unwrap();
        assert_eq!(plan.clauses.len(), 2);
        assert_eq!(plan.clauses[0].from, Some(SiteId(1)));
        assert_eq!(plan.clauses[0].to, Some(SiteId(2)));
        assert_eq!(plan.clauses[1].from, None);
        assert!(matches!(
            plan.clauses[1].kind,
            FaultKind::Duplicate { p, extra_delay } if p == 0.1
                && extra_delay == SimDuration::from_micros(2_500)
        ));
    }

    #[test]
    fn parse_rejects_malformed_clauses() {
        for bad in [
            "drop(0.25)",                // no link/window
            "drop(1.5)@*>*@0..100",      // probability out of range
            "warp(0.1)@*>*@0..100",      // unknown kind
            "drop(0.1)@*>*@100..100",    // empty window
            "dup(0.1)@*>*@0..100",       // wrong arity
            "drop(0.1)@a>b@0..100",      // bad site
            "drop(0.1)@*>*@0..100..200", // bad window
        ] {
            assert!(parse_plan(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn empty_plan_round_trips() {
        assert_eq!(parse_plan("").unwrap(), FaultPlan::none());
        assert_eq!(plan_to_string(&FaultPlan::none()), "");
    }

    #[test]
    fn shrink_finds_the_one_guilty_clause() {
        // 6 clauses; the "failure" is triggered only by the spike clause
        // on link 1→2 being active anywhere in 100..200 ms.
        let plan = parse_plan(
            "drop(0.1)@*>*@0..600000;dup(0.2,500)@0>1@0..300000;\
             spike(0.1,5000)@1>2@0..600000;burst@2>3@50000..90000;\
             reorder(0.3,1000)@*>3@10000..400000;drop(0.3)@3>0@0..200000",
        )
        .unwrap();
        let guilty = |p: &FaultPlan| {
            p.clauses.iter().any(|c| {
                matches!(c.kind, FaultKind::DelaySpike { .. })
                    && c.from == Some(SiteId(1))
                    && c.start.as_micros() < 200_000
                    && c.end.as_micros() > 100_000
            })
        };
        assert!(guilty(&plan));
        let (shrunk, runs) = shrink_plan(&plan, 200, |p| guilty(p));
        assert_eq!(shrunk.clauses.len(), 1, "only the spike clause survives");
        assert!(guilty(&shrunk), "the shrunk plan still fails");
        assert!(runs <= 200);
        let win = shrunk.clauses[0].end.as_micros() - shrunk.clauses[0].start.as_micros();
        assert!(
            win <= 200_000,
            "window halving tightened 600 ms to ≤ the guilty range: {win}µs"
        );
    }

    #[test]
    fn shrink_respects_the_run_budget() {
        let plan =
            parse_plan("drop(0.1)@*>*@0..600000;dup(0.2,500)@0>1@0..300000;burst@2>3@50000..90000")
                .unwrap();
        let mut calls = 0usize;
        let (_, runs) = shrink_plan(&plan, 5, |_| {
            calls += 1;
            true
        });
        assert_eq!(runs, 5);
        assert_eq!(calls, 5, "never exceeds the budget");
    }
}
