//! Deterministic nemesis campaign: composable fault schedules replayed
//! across every protocol.
//!
//! A *nemesis* (the term is Jepsen's) is a fault injector that runs
//! against a live workload. Ours is fully deterministic: every scenario
//! is a fixed schedule of crashes, partitions, heals, and recoveries on
//! the virtual clock, driving a seeded Zipf workload — so a scenario ×
//! protocol cell always produces the same commits, the same aborts, and
//! the same trace, on any machine and at any `BCASTDB_JOBS` worker count.
//!
//! Five scenarios ([`NemesisScenario::ALL`]):
//!
//! | scenario | schedule |
//! |---|---|
//! | `crash_mid_2pc` | a participant dies between commit-request dissemination and its vote |
//! | `crash_origin` | the commit-request *origin* dies with its transactions in flight |
//! | `partition_heal` | a 3/2 split; both detectors fire on their own clocks; heal + state-transfer rejoin |
//! | `cascading_views` | two crashes inside one suspicion window — view changes pile up |
//! | `crash_recover_rejoin` | crash → majority keeps going → log/state catch-up → readmission |
//!
//! Every run is validated three ways before its row is reported: the
//! streaming trace invariant checker (delivery, termination, total order;
//! partitions use the pending-tolerant variant because a cut drops
//! messages without the Crash event that relaxes termination), explicit
//! `has_undecided` sweeps on the survivors, and one-copy
//! serializability among the survivors via
//! [`bcastdb_core::Cluster::check_serializability_among`].
//!
//! The campaign doubles as the harness for the **speculative fast
//! commit** measurement: rerunning `crash_mid_2pc` with
//! [`NemesisConfig::fast_commit`] on shows the vote round of the latency
//! decomposition shrink — suspected sites are excluded from the
//! vote/ack quorum at the *speculative* suspicion threshold (half the
//! eviction timeout) instead of at view installation, cutting the
//! orphaned transactions' decision wait roughly in half.

use crate::{check_traced_run, check_traced_run_allowing_pending, TRACE_CAPACITY};
use bcastdb_core::{AbcastImpl, Cluster, ProtocolKind};
use bcastdb_sim::telemetry::{summarize, Segment};
use bcastdb_sim::{DetRng, SimDuration, SimTime, SiteId};
use bcastdb_workload::{WorkloadConfig, Zipf};
use std::path::PathBuf;

/// Sites in every nemesis cluster (crashing up to two keeps a majority).
pub const NEMESIS_SITES: usize = 5;

const N: usize = NEMESIS_SITES;
const SUSPECT_AFTER: SimDuration = SimDuration::from_millis(60);

/// One fault schedule of the campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NemesisScenario {
    /// Crash a 2PC participant after commit requests disseminate but
    /// before its votes land: the survivors must resolve the orphaned
    /// vote rounds (view change, or fast commit under suspicion).
    CrashMidTwoPhase,
    /// Crash the commit-request origin itself: nobody is left to drive
    /// its transactions, so the survivors must terminate them on their
    /// own (votes, implicit acks, the total order, or the engine's
    /// departed-origin sweep, depending on the protocol).
    CrashOrigin,
    /// Partition 3/2, let both sides' failure detectors fire on their own
    /// timelines (asymmetric: the majority reconfigures and keeps
    /// committing, the minority blocks), then heal and rejoin the
    /// minority by state transfer.
    PartitionHeal,
    /// Two crashes inside one suspicion window: the second site dies
    /// while the first view change is still being agreed on.
    CascadingViews,
    /// Crash, let the majority commit without the site, then catch it up
    /// from a donor's log/state and let membership re-admit it.
    CrashRecoverRejoin,
}

impl NemesisScenario {
    /// Every scenario, in campaign order.
    pub const ALL: [NemesisScenario; 5] = [
        NemesisScenario::CrashMidTwoPhase,
        NemesisScenario::CrashOrigin,
        NemesisScenario::PartitionHeal,
        NemesisScenario::CascadingViews,
        NemesisScenario::CrashRecoverRejoin,
    ];

    /// Short stable name used in tables and trace-file labels.
    pub fn name(self) -> &'static str {
        match self {
            NemesisScenario::CrashMidTwoPhase => "crash_mid_2pc",
            NemesisScenario::CrashOrigin => "crash_origin",
            NemesisScenario::PartitionHeal => "partition_heal",
            NemesisScenario::CascadingViews => "cascading_views",
            NemesisScenario::CrashRecoverRejoin => "crash_recover_rejoin",
        }
    }

    fn seed(self) -> u64 {
        match self {
            NemesisScenario::CrashMidTwoPhase => 61,
            NemesisScenario::CrashOrigin => 63,
            NemesisScenario::PartitionHeal => 65,
            NemesisScenario::CascadingViews => 67,
            NemesisScenario::CrashRecoverRejoin => 69,
        }
    }
}

impl std::fmt::Display for NemesisScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One cell of the campaign matrix.
#[derive(Debug, Clone)]
pub struct NemesisConfig {
    /// The fault schedule to replay.
    pub scenario: NemesisScenario,
    /// The protocol under test.
    pub protocol: ProtocolKind,
    /// Speculative fast commit under suspicion (reliable/causal only —
    /// p2p has no broadcast vote round and atomic has no acks to wait
    /// for, so the knob is inert there).
    pub fast_commit: bool,
    /// Atomic-broadcast backend override (only meaningful with
    /// [`ProtocolKind::AtomicBcast`]). `None` keeps the cluster's
    /// size-based default, which at [`NEMESIS_SITES`] is the sequencer —
    /// so the `t2_failures` campaign output is unchanged.
    pub abcast: Option<AbcastImpl>,
    /// Stream the full JSONL trace of this run here (for `bcast-trace`).
    pub trace_out: Option<PathBuf>,
}

impl NemesisConfig {
    /// A cell with fast commit off, the default abcast backend, and no
    /// trace file.
    pub fn new(scenario: NemesisScenario, protocol: ProtocolKind) -> Self {
        NemesisConfig {
            scenario,
            protocol,
            fast_commit: false,
            abcast: None,
            trace_out: None,
        }
    }
}

/// The validated result of one nemesis run.
#[derive(Debug, Clone)]
pub struct NemesisOutcome {
    /// The scenario that ran.
    pub scenario: NemesisScenario,
    /// The protocol it ran under.
    pub protocol: ProtocolKind,
    /// Whether speculative fast commit was enabled.
    pub fast_commit: bool,
    /// Committed transactions (cluster-wide, origin-counted).
    pub commits: u64,
    /// Aborted transactions.
    pub aborts: u64,
    /// Transactions decided through the speculative fast path, summed
    /// over all sites (0 unless `fast_commit` and a crash was suspected).
    pub fast_commits: u64,
    /// Mean of the vote round of the committed-update latency
    /// decomposition, milliseconds: the `votes` segment (commit request
    /// out → last vote heard) plus the `decide` segment (last vote →
    /// decision). A transaction orphaned by a crash parks in the latter —
    /// waiting on a vote that will never come — until the view change or
    /// a speculative fast commit resolves it, so this is the number fast
    /// commit shortens.
    pub vote_round_ms: f64,
    /// The sites that never crashed and were never cut off.
    pub survivors: Vec<SiteId>,
    /// One-copy serializability among the survivors.
    pub survivors_serializable: bool,
    /// Simulator events processed (deterministic per cell).
    pub events: u64,
}

impl NemesisOutcome {
    /// The table cells of this outcome, in the column order of the
    /// `t2_failures` table.
    pub fn cells(&self) -> Vec<String> {
        vec![
            self.scenario.name().to_string(),
            self.protocol.name().to_string(),
            if self.fast_commit { "on" } else { "off" }.to_string(),
            self.commits.to_string(),
            self.aborts.to_string(),
            self.fast_commits.to_string(),
            format!("{:.2}", self.vote_round_ms),
            self.survivors_serializable.to_string(),
        ]
    }

    /// The table headers matching [`NemesisOutcome::cells`].
    pub fn headers() -> [&'static str; 8] {
        [
            "scenario",
            "protocol",
            "fast_commit",
            "commits",
            "aborts",
            "fast_commits",
            "vote_round_ms",
            "survivors_serializable",
        ]
    }
}

/// Runs one campaign cell: builds the cluster, replays the scenario's
/// fault schedule against a seeded workload, and validates the execution
/// (trace invariants, survivor termination, 1SR among survivors) before
/// returning the outcome row.
///
/// # Panics
/// Panics on any invariant violation — the campaign treats a bad run as
/// a bug, not a data point.
pub fn run_nemesis(cfg: &NemesisConfig) -> NemesisOutcome {
    let label = format!(
        "{}/{}{}",
        cfg.scenario.name(),
        cfg.protocol.name(),
        if cfg.fast_commit { "+fast" } else { "" }
    );
    let mut builder = Cluster::builder()
        .sites(N)
        .protocol(cfg.protocol)
        .seed(cfg.scenario.seed())
        .membership(true)
        .suspect_after(SUSPECT_AFTER)
        .fast_commit(cfg.fast_commit)
        .trace(TRACE_CAPACITY);
    if let Some(imp) = cfg.abcast {
        builder = builder.abcast(imp);
    }
    if let Some(path) = &cfg.trace_out {
        builder = builder.trace_jsonl(path);
    }
    let mut cluster = builder.build();
    let wl = workload();
    let zipf = wl.sampler();
    let mut rng = DetRng::new(cfg.scenario.seed() * 10);
    let ctx = Ctx {
        cluster: &mut cluster,
        wl: &wl,
        zipf: &zipf,
        rng: &mut rng,
        label: &label,
    };
    let (survivors, allow_pending) = match cfg.scenario {
        NemesisScenario::CrashMidTwoPhase => crash_mid_two_phase(ctx),
        NemesisScenario::CrashOrigin => crash_origin(ctx),
        NemesisScenario::PartitionHeal => partition_heal(ctx),
        NemesisScenario::CascadingViews => cascading_views(ctx),
        NemesisScenario::CrashRecoverRejoin => crash_recover_rejoin(ctx),
    };

    if allow_pending {
        check_traced_run_allowing_pending(&cluster, &label);
    } else {
        check_traced_run(&cluster, &label);
    }
    let survivors_serializable = cluster.check_serializability_among(&survivors).is_ok();
    let metrics = cluster.metrics();
    let summary = summarize(cluster.txn_spans().values());
    if cfg.trace_out.is_some() {
        cluster.finish_trace_jsonl().expect("flush nemesis trace");
    }
    NemesisOutcome {
        scenario: cfg.scenario,
        protocol: cfg.protocol,
        fast_commit: cfg.fast_commit,
        commits: metrics.commits(),
        aborts: metrics.aborts(),
        fast_commits: metrics.counters.get("fast_commits"),
        vote_round_ms: summary.segment(Segment::Votes).mean().as_millis_f64()
            + summary.segment(Segment::Decide).mean().as_millis_f64(),
        survivors,
        survivors_serializable,
        events: cluster.events_processed(),
    }
}

fn workload() -> WorkloadConfig {
    WorkloadConfig {
        n_keys: 300,
        theta: 0.5,
        reads_per_txn: 1,
        writes_per_txn: 2,
        ..WorkloadConfig::default()
    }
}

/// The per-scenario schedule context: the cluster under test plus the
/// seeded workload generator.
struct Ctx<'a> {
    cluster: &'a mut Cluster,
    wl: &'a WorkloadConfig,
    zipf: &'a Zipf,
    rng: &'a mut DetRng,
    label: &'a str,
}

impl Ctx<'_> {
    /// Submits `count` update transactions at each of `sites`, one every
    /// 15 ms starting just after `from`, each site on its own forked rng
    /// stream (so schedules stay independent of site iteration order).
    fn load(&mut self, sites: std::ops::Range<usize>, stream: u64, from: SimTime, count: usize) {
        for site in sites {
            let mut at = from;
            let mut site_rng = self.rng.fork(stream + site as u64);
            for _ in 0..count {
                at += SimDuration::from_millis(15);
                self.cluster
                    .submit_at(at, SiteId(site), self.wl.gen_txn(self.zipf, &mut site_rng));
            }
        }
    }

    /// One transaction per site of `sites` in a tight burst at `from`
    /// (50 µs apart) — traffic meant to be in flight when the fault hits.
    fn burst(&mut self, sites: std::ops::Range<usize>, stream: u64, from: SimTime) {
        for site in sites {
            let mut site_rng = self.rng.fork(stream + site as u64);
            let at = from + SimDuration::from_micros(50 * site as u64);
            self.cluster
                .submit_at(at, SiteId(site), self.wl.gen_txn(self.zipf, &mut site_rng));
        }
    }

    /// Steps the simulation in 5 ms increments until every site in
    /// `waiters` has a view containing none of `gone`, and returns that
    /// instant. Panics after 2 s of virtual time.
    fn await_eviction(&mut self, gone: &[SiteId], waiters: &[SiteId]) -> SimTime {
        let deadline = self.cluster.now() + SimDuration::from_secs(2);
        loop {
            let t = self.cluster.now() + SimDuration::from_millis(5);
            self.cluster.run_until(t);
            let evicted = waiters.iter().all(|w| {
                let view = self.cluster.replica(*w).view_members();
                gone.iter().all(|g| !view.contains(g))
            });
            if evicted {
                return t;
            }
            assert!(t < deadline, "{}: view change never completed", self.label);
        }
    }

    /// Steps the simulation in 5 ms increments until every site's view
    /// contains all of `back`, and returns that instant. Panics after
    /// 2 s of virtual time.
    fn await_readmission(&mut self, back: &[SiteId]) -> SimTime {
        let deadline = self.cluster.now() + SimDuration::from_secs(2);
        loop {
            let t = self.cluster.now() + SimDuration::from_millis(5);
            self.cluster.run_until(t);
            let readmitted = (0..N).all(|s| {
                let view = self.cluster.replica(SiteId(s)).view_members();
                back.iter().all(|b| view.contains(b))
            });
            if readmitted {
                return t;
            }
            assert!(t < deadline, "{}: readmission never completed", self.label);
        }
    }

    /// Asserts that no survivor is left with an undecided transaction.
    fn assert_survivors_terminated(&self, survivors: &[SiteId]) {
        for s in survivors {
            assert!(
                !self.cluster.replica(*s).state().has_undecided(),
                "{}: {s} still has undecided transactions",
                self.label
            );
        }
    }
}

fn crash_mid_two_phase(mut ctx: Ctx<'_>) -> (Vec<SiteId>, bool) {
    // Warm-up load on every site, fully decided before the fault.
    ctx.load(0..N, 0, SimTime::from_micros(1_000), 8);
    ctx.cluster.run_until(SimTime::from_micros(200_000));
    // A burst whose commit requests are on the wire when site N-1 dies:
    // at +900 µs the requests have disseminated but the vote round is
    // still in flight, so the survivors hold orphaned vote waits.
    ctx.burst(0..N, 100, SimTime::from_micros(200_000));
    ctx.cluster.run_until(SimTime::from_micros(200_900));
    ctx.cluster.crash(SiteId(N - 1));
    let survivors: Vec<SiteId> = (0..N - 1).map(SiteId).collect();
    let evicted_at = ctx.await_eviction(&[SiteId(N - 1)], &survivors);
    // Post-fault load proves the majority keeps committing.
    ctx.load(0..N - 1, 200, evicted_at, 5);
    ctx.cluster
        .run_until(evicted_at + SimDuration::from_secs(2));
    ctx.assert_survivors_terminated(&survivors);
    (survivors, false)
}

fn crash_origin(mut ctx: Ctx<'_>) -> (Vec<SiteId>, bool) {
    ctx.load(0..N, 0, SimTime::from_micros(1_000), 8);
    ctx.cluster.run_until(SimTime::from_micros(200_000));
    // The origin submits a burst and dies before any decision lands:
    // nobody is left to drive these transactions.
    let mut origin_rng = ctx.rng.fork(100);
    for i in 0..3u64 {
        let at = SimTime::from_micros(200_000 + i * 100);
        let spec = ctx.wl.gen_txn(ctx.zipf, &mut origin_rng);
        ctx.cluster.submit_at(at, SiteId(N - 1), spec);
    }
    ctx.cluster.run_until(SimTime::from_micros(200_700));
    ctx.cluster.crash(SiteId(N - 1));
    let survivors: Vec<SiteId> = (0..N - 1).map(SiteId).collect();
    let evicted_at = ctx.await_eviction(&[SiteId(N - 1)], &survivors);
    ctx.load(0..N - 1, 200, evicted_at, 5);
    ctx.cluster
        .run_until(evicted_at + SimDuration::from_secs(2));
    ctx.assert_survivors_terminated(&survivors);
    (survivors, false)
}

fn partition_heal(mut ctx: Ctx<'_>) -> (Vec<SiteId>, bool) {
    ctx.load(0..N, 0, SimTime::from_micros(1_000), 8);
    ctx.cluster.run_until(SimTime::from_micros(200_000));
    let majority: Vec<SiteId> = (0..3).map(SiteId).collect();
    let minority: Vec<SiteId> = (3..N).map(SiteId).collect();
    ctx.cluster.partition(&majority, &minority);
    // Both sides' failure detectors fire on their own clocks: the
    // majority reconfigures to a 3-member view and keeps going, the
    // minority cannot form a majority and blocks.
    ctx.cluster.run_until(SimTime::from_micros(320_000));
    for s in &majority {
        assert!(
            ctx.cluster.replica(*s).is_operational(),
            "{}: majority side {s} blocked",
            ctx.label
        );
    }
    for s in &minority {
        assert!(
            !ctx.cluster.replica(*s).is_operational(),
            "{}: minority side {s} kept running",
            ctx.label
        );
    }
    // Majority-side load during the partition.
    ctx.load(0..3, 100, SimTime::from_micros(320_000), 5);
    ctx.cluster.run_until(SimTime::from_micros(500_000));
    // Heal, rejoin the minority by state transfer, and wait for
    // membership to re-admit it.
    ctx.cluster.heal_partitions();
    ctx.cluster.recover(SiteId(3), SiteId(0));
    ctx.cluster.recover(SiteId(4), SiteId(0));
    let back: Vec<SiteId> = (3..N).map(SiteId).collect();
    let rejoined_at = ctx.await_readmission(&back);
    // Full-cluster load after the heal: the readmitted sites serve
    // transactions again.
    ctx.load(0..N, 200, rejoined_at, 3);
    ctx.cluster
        .run_until(rejoined_at + SimDuration::from_secs(2));
    ctx.assert_survivors_terminated(&majority);
    // A cut drops messages without a Crash trace event, so transactions
    // wedged at the cut-off minority are expected — the pending-tolerant
    // invariant check applies.
    (majority, true)
}

fn cascading_views(mut ctx: Ctx<'_>) -> (Vec<SiteId>, bool) {
    ctx.load(0..N, 0, SimTime::from_micros(1_000), 8);
    ctx.cluster.run_until(SimTime::from_micros(200_000));
    ctx.cluster.crash(SiteId(4));
    // The second crash lands inside the first crash's suspicion window
    // (60 ms): the survivors are still agreeing on the 4-member view
    // when site 3 dies, so the view changes cascade.
    ctx.cluster.run_until(SimTime::from_micros(220_000));
    ctx.cluster.crash(SiteId(3));
    let survivors: Vec<SiteId> = (0..3).map(SiteId).collect();
    let evicted_at = ctx.await_eviction(&[SiteId(3), SiteId(4)], &survivors);
    for s in &survivors {
        assert!(
            ctx.cluster.replica(*s).is_operational(),
            "{}: {s} blocked after cascading view changes",
            ctx.label
        );
    }
    ctx.load(0..3, 200, evicted_at, 5);
    ctx.cluster
        .run_until(evicted_at + SimDuration::from_secs(2));
    ctx.assert_survivors_terminated(&survivors);
    (survivors, false)
}

fn crash_recover_rejoin(mut ctx: Ctx<'_>) -> (Vec<SiteId>, bool) {
    ctx.load(0..N, 0, SimTime::from_micros(1_000), 8);
    ctx.cluster.run_until(SimTime::from_micros(200_000));
    ctx.cluster.crash(SiteId(4));
    let survivors: Vec<SiteId> = (0..N - 1).map(SiteId).collect();
    let evicted_at = ctx.await_eviction(&[SiteId(4)], &survivors);
    // The majority commits a whole wave the crashed site never sees.
    ctx.load(0..N - 1, 100, evicted_at, 5);
    ctx.cluster
        .run_until(evicted_at + SimDuration::from_secs(1));
    // Catch the site up from a donor at a quiet moment and wait for
    // membership to re-admit it.
    ctx.cluster.recover(SiteId(4), SiteId(0));
    let rejoined_at = ctx.await_readmission(&[SiteId(4)]);
    // The rejoined site serves transactions again, cluster-wide.
    ctx.load(0..N, 200, rejoined_at, 3);
    ctx.cluster
        .run_until(rejoined_at + SimDuration::from_secs(2));
    ctx.assert_survivors_terminated(&survivors);
    assert!(
        ctx.cluster.replicas_converged(),
        "{}: recovered site diverged after catch-up",
        ctx.label
    );
    (survivors, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_is_serializable_under_reliable_broadcast() {
        for scenario in NemesisScenario::ALL {
            let out = run_nemesis(&NemesisConfig::new(scenario, ProtocolKind::ReliableBcast));
            assert!(out.survivors_serializable, "{scenario}");
            assert!(out.commits > 0, "{scenario}: nothing committed");
            assert_eq!(out.fast_commits, 0, "{scenario}: fast path off by default");
        }
    }

    #[test]
    fn nemesis_runs_are_deterministic() {
        let cfg = NemesisConfig::new(NemesisScenario::CrashMidTwoPhase, ProtocolKind::CausalBcast);
        let a = run_nemesis(&cfg);
        let b = run_nemesis(&cfg);
        assert_eq!(a.commits, b.commits);
        assert_eq!(a.aborts, b.aborts);
        assert_eq!(a.events, b.events);
        assert_eq!(
            format!("{:.4}", a.vote_round_ms),
            format!("{:.4}", b.vote_round_ms)
        );
    }

    /// The crash_mid_2pc fault with the ring backend: site 4 is both the
    /// ring tail and site 3's successor, so its death severs the pipeline
    /// with commit requests in flight. The view change must repair the
    /// ring (re-route stranded payloads through the 4-member ring) for
    /// the orphaned vote waits to resolve and the post-fault load to
    /// decide — `run_nemesis` panics on any undecided survivor
    /// transaction, so this test completing at all proves the repair
    /// path ran.
    #[test]
    fn ring_backend_survives_crash_mid_two_phase() {
        let ring = run_nemesis(&NemesisConfig {
            abcast: Some(AbcastImpl::Ring),
            ..NemesisConfig::new(NemesisScenario::CrashMidTwoPhase, ProtocolKind::AtomicBcast)
        });
        assert!(ring.survivors_serializable, "ring crash run is not 1SR");
        assert!(ring.commits > 0, "ring crash run committed nothing");
        // The same fault under the sequencer decides the same submission
        // schedule; equal decided counts prove the ring stranded no
        // transaction at the break.
        let seq = run_nemesis(&NemesisConfig {
            abcast: Some(AbcastImpl::Sequencer),
            ..NemesisConfig::new(NemesisScenario::CrashMidTwoPhase, ProtocolKind::AtomicBcast)
        });
        assert_eq!(
            ring.commits + ring.aborts,
            seq.commits + seq.aborts,
            "ring decided {}+{} of the schedule, sequencer {}+{}",
            ring.commits,
            ring.aborts,
            seq.commits,
            seq.aborts
        );
    }

    #[test]
    fn fast_commit_engages_and_shortens_the_vote_round() {
        for proto in [ProtocolKind::ReliableBcast, ProtocolKind::CausalBcast] {
            let base = run_nemesis(&NemesisConfig::new(
                NemesisScenario::CrashMidTwoPhase,
                proto,
            ));
            let fast = run_nemesis(&NemesisConfig {
                fast_commit: true,
                ..NemesisConfig::new(NemesisScenario::CrashMidTwoPhase, proto)
            });
            assert!(
                fast.fast_commits > 0,
                "{proto}: the speculative path never fired"
            );
            assert!(
                fast.vote_round_ms < base.vote_round_ms,
                "{proto}: fast commit must shorten the vote round \
                 ({:.3} ms -> {:.3} ms)",
                base.vote_round_ms,
                fast.vote_round_ms
            );
            assert!(fast.survivors_serializable, "{proto}: fast run not 1SR");
            assert_eq!(
                base.commits, fast.commits,
                "{proto}: speculation must not change outcomes, only timing"
            );
        }
    }
}
