//! Parallel sweep harness for the experiment binaries.
//!
//! Every experiment is a *sweep*: a list of independent `(config, seed)`
//! simulation runs whose outputs are assembled into one table. The runs
//! share nothing — each builds its own [`bcastdb_core::Cluster`] from a
//! fixed seed — so they can execute on worker threads, as long as the
//! *results* come back in config order: the console table, the mirrored
//! CSV, and `experiments_output.txt` must be byte-identical to a serial
//! run no matter how many workers raced.
//!
//! [`Sweep::run`] provides exactly that contract:
//!
//! * Workers claim config indices from a shared atomic counter and run the
//!   caller's closure entirely inside their own thread. The `Cluster` (and
//!   its `Rc`-based tracer) never crosses a thread boundary — only the
//!   `Send` result value does.
//! * Results land in an index-addressed slot table; the caller receives a
//!   plain `Vec` in config order. All printing, CSV emission, and
//!   cross-run assertions happen on the calling thread afterwards.
//! * Each run is timed with [`Instant`]; the [`SweepOutcome`] carries the
//!   per-run and whole-sweep wall-clock so [`Ledger`] can report the
//!   achieved speedup (`runs_wall_ms / wall_ms`).
//!
//! The worker count comes from `BCASTDB_JOBS` (default: the machine's
//! available parallelism). `BCASTDB_JOBS=1` forces the serial path, which
//! runs the closure on the calling thread — useful both as a baseline and
//! under a debugger.
//!
//! The wall-clock ledger (`BENCH_wallclock.json`) is written by
//! [`write_wallclock_json`]; the `run_all` driver aggregates the entries
//! of every experiment binary through the `BCASTDB_BENCH_LEDGER` relay
//! file (an internal tab-separated format produced by [`Ledger::finish`]).

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Reads `BCASTDB_JOBS`, falling back to the machine's available
/// parallelism. Invalid or zero values fall back the same way.
pub fn jobs_from_env() -> usize {
    let fallback = || {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    match std::env::var("BCASTDB_JOBS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => fallback(),
        },
        Err(_) => fallback(),
    }
}

/// A parallel sweep executor with a fixed worker count.
///
/// See the [module docs](self) for the ordering/determinism contract.
#[derive(Debug, Clone, Copy)]
pub struct Sweep {
    jobs: usize,
}

impl Sweep {
    /// A sweep sized by `BCASTDB_JOBS` (default: available parallelism).
    pub fn from_env() -> Self {
        Sweep {
            jobs: jobs_from_env(),
        }
    }

    /// A sweep with an explicit worker count (`jobs >= 1`). Used by the
    /// determinism regression test to pin both sides of the comparison.
    pub fn with_jobs(jobs: usize) -> Self {
        Sweep { jobs: jobs.max(1) }
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs `run_one` over every config, on up to [`Sweep::jobs`] worker
    /// threads, and returns the results **in config order** together with
    /// per-run wall-clock timings.
    ///
    /// A panic inside `run_one` (a failed experiment assertion) propagates
    /// to the caller once the scope joins, exactly as in a serial run.
    pub fn run<C, R, F>(&self, configs: Vec<C>, run_one: F) -> SweepOutcome<R>
    where
        C: Sync,
        R: Send,
        F: Fn(&C) -> R + Sync,
    {
        let started = Instant::now();
        let alloc_start = bcastdb_memprobe::allocation_count();
        let n = configs.len();
        let jobs = self.jobs.min(n.max(1));
        let mut timed: Vec<(R, Duration)> = Vec::with_capacity(n);
        if jobs <= 1 {
            for c in &configs {
                let t = Instant::now();
                let r = run_one(c);
                timed.push((r, t.elapsed()));
            }
        } else {
            let next = AtomicUsize::new(0);
            let slots: Vec<Mutex<Option<(R, Duration)>>> =
                (0..n).map(|_| Mutex::new(None)).collect();
            std::thread::scope(|s| {
                let workers: Vec<_> = (0..jobs)
                    .map(|_| {
                        s.spawn(|| loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            let t = Instant::now();
                            let r = run_one(&configs[i]);
                            *slots[i].lock().expect("slot lock") = Some((r, t.elapsed()));
                        })
                    })
                    .collect();
                for w in workers {
                    // Re-raise a failed run's own panic payload (the
                    // experiment's assertion message) instead of the
                    // scope's generic "a scoped thread panicked".
                    if let Err(payload) = w.join() {
                        std::panic::resume_unwind(payload);
                    }
                }
            });
            for slot in slots {
                let filled = slot
                    .into_inner()
                    .expect("slot lock")
                    .expect("every index was claimed and completed");
                timed.push(filled);
            }
        }
        let mut results = Vec::with_capacity(n);
        let mut run_wall = Vec::with_capacity(n);
        for (r, d) in timed {
            results.push(r);
            run_wall.push(d);
        }
        // Opt-in per-run timing on stderr (stdout stays byte-identical):
        // `BCASTDB_SWEEP_TIMING=1 ./t2_failures` shows which config eats
        // the wall-clock. See PERFORMANCE.md, "Profiling".
        if std::env::var_os("BCASTDB_SWEEP_TIMING").is_some() {
            for (i, d) in run_wall.iter().enumerate() {
                eprintln!("[sweep-timing] run {i}: {:.3} ms", d.as_secs_f64() * 1e3);
            }
        }
        SweepOutcome {
            results,
            run_wall,
            wall: started.elapsed(),
            allocs: bcastdb_memprobe::allocation_count() - alloc_start,
            jobs,
        }
    }
}

/// The results of one [`Sweep::run`], in config order, plus timings.
#[derive(Debug)]
pub struct SweepOutcome<R> {
    /// One result per config, at the config's index.
    pub results: Vec<R>,
    /// Wall-clock of each run (same indexing as `results`).
    pub run_wall: Vec<Duration>,
    /// Wall-clock of the whole sweep (what the user actually waited).
    pub wall: Duration,
    /// Heap allocations performed during the sweep (exact and reproducible
    /// — the harness binaries install the `bcastdb-memprobe` counting
    /// allocator), the noise-free cost metric next to `wall`.
    pub allocs: u64,
    /// Worker threads actually used (clamped to the config count).
    pub jobs: usize,
}

impl<R> SweepOutcome<R> {
    /// Sum of the per-run wall-clocks — the serial-equivalent cost, and
    /// the numerator of the achieved speedup.
    pub fn total_run_wall(&self) -> Duration {
        self.run_wall.iter().sum()
    }
}

/// One experiment's row in the wall-clock ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEntry {
    /// Experiment (sweep) name, e.g. `f1_latency_vs_n`.
    pub experiment: String,
    /// Number of simulation runs in the sweep.
    pub runs: usize,
    /// Worker threads used.
    pub jobs: usize,
    /// Whole-sweep wall-clock, milliseconds.
    pub wall_ms: f64,
    /// Sum of per-run wall-clocks, milliseconds (serial-equivalent cost).
    pub runs_wall_ms: f64,
    /// Total simulator events processed across the sweep's runs.
    pub events: u64,
    /// Heap allocations during the sweep (deterministic; see
    /// [`SweepOutcome::allocs`]).
    pub allocs: u64,
}

impl LedgerEntry {
    /// Simulator events per wall-clock second (0.0 for an instant sweep).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_ms > 0.0 {
            self.events as f64 * 1000.0 / self.wall_ms
        } else {
            0.0
        }
    }

    /// Heap allocations per simulator event (0.0 for an event-free sweep).
    /// Exactly reproducible run to run, unlike any wall-clock metric.
    pub fn allocs_per_event(&self) -> f64 {
        if self.events > 0 {
            self.allocs as f64 / self.events as f64
        } else {
            0.0
        }
    }

    /// Achieved speedup: serial-equivalent cost over actual wall-clock.
    pub fn speedup(&self) -> f64 {
        if self.wall_ms > 0.0 {
            self.runs_wall_ms / self.wall_ms
        } else {
            1.0
        }
    }

    fn to_tsv(&self) -> String {
        format!(
            "{}\t{}\t{}\t{:.3}\t{:.3}\t{}\t{}",
            self.experiment,
            self.runs,
            self.jobs,
            self.wall_ms,
            self.runs_wall_ms,
            self.events,
            self.allocs
        )
    }

    fn from_tsv(line: &str) -> Option<Self> {
        let mut it = line.split('\t');
        let experiment = it.next()?.to_owned();
        let runs = it.next()?.parse().ok()?;
        let jobs = it.next()?.parse().ok()?;
        let wall_ms = it.next()?.parse().ok()?;
        let runs_wall_ms = it.next()?.parse().ok()?;
        let events = it.next()?.parse().ok()?;
        // Absent in relay files written before the allocation probe.
        let allocs = it.next().and_then(|s| s.parse().ok()).unwrap_or(0);
        Some(LedgerEntry {
            experiment,
            runs,
            jobs,
            wall_ms,
            runs_wall_ms,
            events,
            allocs,
        })
    }
}

/// Accumulates per-sweep wall-clock entries for one experiment binary and
/// hands them to whoever is collecting — see [`Ledger::finish`].
#[derive(Debug, Default)]
pub struct Ledger {
    entries: Vec<LedgerEntry>,
}

impl Ledger {
    /// An empty ledger.
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Records one completed sweep under `name`. `events` is the total
    /// simulator event count across the sweep's runs (for events/sec).
    pub fn record<R>(&mut self, name: &str, outcome: &SweepOutcome<R>, events: u64) {
        self.entries.push(LedgerEntry {
            experiment: name.to_owned(),
            runs: outcome.results.len(),
            jobs: outcome.jobs,
            wall_ms: outcome.wall.as_secs_f64() * 1000.0,
            runs_wall_ms: outcome.total_run_wall().as_secs_f64() * 1000.0,
            events,
            allocs: outcome.allocs,
        });
    }

    /// The recorded entries, in recording order.
    pub fn entries(&self) -> &[LedgerEntry] {
        &self.entries
    }

    /// Flushes the ledger at the end of an experiment binary:
    ///
    /// * `BCASTDB_BENCH_LEDGER=<path>` — append the entries to the relay
    ///   file (one TSV line each); this is how `run_all` collects the
    ///   per-experiment timings it aggregates into `BENCH_wallclock.json`.
    /// * `BCASTDB_BENCH_WALLCLOCK=<path>` — write a standalone
    ///   `BENCH_wallclock.json` for just this binary's sweeps.
    /// * neither — print a one-line timing summary per sweep to stderr.
    pub fn finish(&self) {
        if let Some(path) = std::env::var_os("BCASTDB_BENCH_LEDGER") {
            let mut file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .expect("open BCASTDB_BENCH_LEDGER relay file");
            for e in &self.entries {
                writeln!(file, "{}", e.to_tsv()).expect("append ledger entry");
            }
        } else if let Some(path) = std::env::var_os("BCASTDB_BENCH_WALLCLOCK") {
            write_wallclock_json(Path::new(&path), &self.entries)
                .expect("write BENCH_wallclock.json");
        } else {
            for e in &self.entries {
                eprintln!(
                    "[bench] {}: {} runs, {:.1} ms wall ({:.1} ms serial-equivalent, \
                     {} jobs, {:.2}x, {:.0} events/s, {:.2} allocs/event)",
                    e.experiment,
                    e.runs,
                    e.wall_ms,
                    e.runs_wall_ms,
                    e.jobs,
                    e.speedup(),
                    e.events_per_sec(),
                    e.allocs_per_event(),
                );
            }
        }
    }
}

/// Parses the entries out of a `BCASTDB_BENCH_LEDGER` relay file (the
/// TSV lines appended by [`Ledger::finish`]). Malformed lines are skipped.
pub fn read_ledger_relay(path: &Path) -> Vec<LedgerEntry> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines().filter_map(LedgerEntry::from_tsv).collect()
}

/// The current git revision (short), or `"unknown"` outside a checkout.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Writes the wall-clock perf ledger as JSON. Schema (documented in
/// DESIGN.md §12):
///
/// ```json
/// {
///   "git_rev": "abc123def456",
///   "jobs": 4,
///   "total_wall_ms": 1234.5,
///   "total_runs_wall_ms": 4321.0,
///   "parallel_speedup": 3.50,
///   "experiments": [
///     { "experiment": "f1_latency_vs_n", "runs": 20, "jobs": 4,
///       "wall_ms": 100.0, "runs_wall_ms": 350.0, "speedup": 3.50,
///       "events": 123456, "events_per_sec": 1234560.0,
///       "allocs": 654321, "allocs_per_event": 5.30 }
///   ]
/// }
/// ```
pub fn write_wallclock_json(path: &Path, entries: &[LedgerEntry]) -> std::io::Result<()> {
    let total_wall: f64 = entries.iter().map(|e| e.wall_ms).sum();
    let total_runs_wall: f64 = entries.iter().map(|e| e.runs_wall_ms).sum();
    let jobs = entries.iter().map(|e| e.jobs).max().unwrap_or(1);
    let speedup = if total_wall > 0.0 {
        total_runs_wall / total_wall
    } else {
        1.0
    };
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"git_rev\": \"{}\",", json_escape(&git_rev()));
    let _ = writeln!(out, "  \"jobs\": {jobs},");
    let _ = writeln!(out, "  \"total_wall_ms\": {total_wall:.3},");
    let _ = writeln!(out, "  \"total_runs_wall_ms\": {total_runs_wall:.3},");
    let _ = writeln!(out, "  \"parallel_speedup\": {speedup:.3},");
    let _ = writeln!(out, "  \"experiments\": [");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{ \"experiment\": \"{}\", \"runs\": {}, \"jobs\": {}, \
             \"wall_ms\": {:.3}, \"runs_wall_ms\": {:.3}, \"speedup\": {:.3}, \
             \"events\": {}, \"events_per_sec\": {:.1}, \
             \"allocs\": {}, \"allocs_per_event\": {:.2} }}{}",
            json_escape(&e.experiment),
            e.runs,
            e.jobs,
            e.wall_ms,
            e.runs_wall_ms,
            e.speedup(),
            e.events,
            e.events_per_sec(),
            e.allocs,
            e.allocs_per_event(),
            comma,
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_config_order() {
        let configs: Vec<usize> = (0..64).collect();
        for jobs in [1, 2, 4, 7] {
            let outcome = Sweep::with_jobs(jobs).run(configs.clone(), |&c| {
                // Make later indices finish earlier to shake out ordering.
                if c % 3 == 0 {
                    std::thread::yield_now();
                }
                c * 10
            });
            let expect: Vec<usize> = configs.iter().map(|c| c * 10).collect();
            assert_eq!(outcome.results, expect, "jobs={jobs}");
            assert_eq!(outcome.run_wall.len(), configs.len());
        }
    }

    #[test]
    fn jobs_clamp_to_config_count() {
        let outcome = Sweep::with_jobs(16).run(vec![1, 2], |&c| c);
        assert_eq!(outcome.jobs, 2);
        assert_eq!(outcome.results, vec![1, 2]);
    }

    #[test]
    fn empty_sweep_is_fine() {
        let outcome = Sweep::with_jobs(4).run(Vec::<u32>::new(), |&c| c);
        assert!(outcome.results.is_empty());
        assert_eq!(outcome.total_run_wall(), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "boom at 5")]
    fn worker_panics_propagate() {
        Sweep::with_jobs(3).run((0..8).collect::<Vec<u32>>(), |&c| {
            if c == 5 {
                panic!("boom at {c}");
            }
            c
        });
    }

    #[test]
    fn ledger_entry_tsv_roundtrips() {
        let e = LedgerEntry {
            experiment: "f1_latency_vs_n".into(),
            runs: 20,
            jobs: 4,
            wall_ms: 123.456,
            runs_wall_ms: 400.5,
            events: 987654,
            allocs: 123456,
        };
        let parsed = LedgerEntry::from_tsv(&e.to_tsv()).expect("roundtrip");
        assert_eq!(parsed.experiment, e.experiment);
        assert_eq!(parsed.runs, e.runs);
        assert_eq!(parsed.events, e.events);
        assert!((parsed.wall_ms - e.wall_ms).abs() < 0.001);
    }

    #[test]
    fn ledger_records_sweep_shape() {
        let outcome = Sweep::with_jobs(2).run(vec![1u64, 2, 3], |&c| c);
        let mut ledger = Ledger::new();
        ledger.record("demo", &outcome, 300);
        let e = &ledger.entries()[0];
        assert_eq!(e.runs, 3);
        assert_eq!(e.jobs, 2);
        assert_eq!(e.events, 300);
        assert!(e.speedup() >= 0.0);
    }

    #[test]
    fn wallclock_json_is_wellformed() {
        let entries = vec![LedgerEntry {
            experiment: "demo \"quoted\"".into(),
            runs: 2,
            jobs: 1,
            wall_ms: 10.0,
            runs_wall_ms: 10.0,
            events: 42,
            allocs: 84,
        }];
        let path =
            std::env::temp_dir().join(format!("bcastdb-wallclock-{}.json", std::process::id()));
        write_wallclock_json(&path, &entries).expect("write");
        let text = std::fs::read_to_string(&path).expect("read back");
        let _ = std::fs::remove_file(&path);
        assert!(text.contains("\"experiments\": ["));
        assert!(text.contains("\\\"quoted\\\""));
        assert!(text.contains("\"parallel_speedup\": 1.000"));
        // Balanced braces/brackets — cheap well-formedness check.
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.matches('[').count(), text.matches(']').count());
    }

    #[test]
    fn jobs_env_parsing_falls_back() {
        // Can't mutate the environment safely in a parallel test binary;
        // exercise the parse logic shape instead.
        assert!(jobs_from_env() >= 1);
    }
}
