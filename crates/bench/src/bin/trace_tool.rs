//! `bcast-trace` — offline analysis of bcastdb trace JSONL files.
//!
//! Reads a trace produced with `--trace-out` (or
//! `ClusterBuilder::trace_jsonl`) and reconstructs per-transaction spans:
//!
//! ```text
//! bcast-trace summary   <trace.jsonl>             per-segment latency breakdown
//! bcast-trace timeline  <origin:num> <trace.jsonl> one transaction across sites
//! bcast-trace slowest   [-n K] <trace.jsonl>      critical path of the K slowest commits
//! bcast-trace check     [--lossy] <trace.jsonl>   offline trace invariant run
//! bcast-trace export    <trace.jsonl> <out.json> [--metrics <samples.jsonl>]
//!                                                 Chrome Trace Event / Perfetto export
//! bcast-trace perf-diff <baseline.json> <current.json> [--max-regress F]
//!                       [--max-alloc-regress F]   wall-clock ledger regression gate
//! ```
//!
//! Exit status: `0` on success, `1` when the input is well-formed but a
//! check fails (trace invariant violation, perf regression), `2` on
//! usage errors and unreadable, empty, or malformed input.
//!
//! Traces written by the harness end in a `{"type":"trace_meta",...}`
//! trailer recording the event count and how many events the in-memory
//! ring evicted; `summary` and `check` warn loudly when the ring
//! overflowed, and every subcommand cross-checks the trailer's count
//! against the lines actually parsed.

use bcastdb_bench::perfdiff::{diff_ledgers, DiffConfig, WallclockLedger};
use bcastdb_bench::perfetto::export_chrome_trace;
use bcastdb_sim::stats::Sample;
use bcastdb_sim::telemetry::{
    render_summary, render_timeline, slowest, summarize, SpanBuilder, TraceEvent, TraceInvariants,
    TxnRef,
};
use bcastdb_sim::SiteId;
use std::fs;
use std::process::ExitCode;

const USAGE: &str = "usage:
  bcast-trace summary   <trace.jsonl>
  bcast-trace timeline  <origin:num> <trace.jsonl>
  bcast-trace slowest   [-n K] <trace.jsonl>
  bcast-trace check     [--lossy] <trace.jsonl>
  bcast-trace export    <trace.jsonl> <out.json> [--metrics <samples.jsonl>]
  bcast-trace perf-diff <baseline.json> <current.json> [--max-regress F] [--max-alloc-regress F]
  bcast-trace --help";

const HELP: &str = "bcast-trace — offline analysis of bcastdb trace JSONL files

subcommands:
  summary   <trace.jsonl>
      Per-segment latency breakdown (read/disseminate/order_wait/votes/
      decide) over every committed update transaction in the trace.

  timeline  <origin:num> <trace.jsonl>
      One transaction's milestones across all sites, as an ASCII timeline.

  slowest   [-n K] <trace.jsonl>
      The K slowest commits (default 5) with their dominant segment and
      full breakdown.

  check     [--lossy] <trace.jsonl>
      Replays the offline trace invariant checker and reports spans whose
      milestones needed clamping. Exits 1 on any violation. With --lossy,
      submitted transactions still in flight at the end of the trace are
      tolerated (for runs cut short by a fault schedule or packet loss);
      every other invariant — exactly-once termination, no unsent
      deliveries, total-order agreement — still applies.

  export    <trace.jsonl> <out.json> [--metrics <samples.jsonl>]
      Converts the trace (plus optional metrics samples from a run with
      --metrics-out) into Chrome Trace Event JSON: open out.json in
      ui.perfetto.dev or chrome://tracing. Sites become threads of the
      'cluster' process, committed transactions become nested async
      slices, metrics become counter tracks.

  perf-diff <baseline.json> <current.json> [--max-regress F] [--max-alloc-regress F]
      Compares two BENCH_wallclock.json ledgers experiment by experiment.
      Fails (exit 1) when events/sec regresses by more than F (default
      0.15), when allocs/event grows by more than the ratchet slack
      (default 0.10), or when a baseline experiment is missing from the
      current ledger.

exit status:
  0  success
  1  check failed: trace invariant violation or perf regression
  2  usage error, or unreadable / empty / malformed input

Traces written by the harness end in a {\"type\":\"trace_meta\",...}
trailer; summary, check, and export warn when it records in-memory ring
evictions (in-process tail inspection was incomplete during the run —
the file itself holds the full stream), and a trailer event count that
disagrees with the parsed lines is an error.";

/// A CLI failure, split by exit code: `Check` is a well-formed input
/// failing a gate (exit 1), `Input` is a usage or IO problem (exit 2).
enum Failure {
    Check(String),
    Input(String),
}

impl Failure {
    fn input(msg: impl Into<String>) -> Failure {
        Failure::Input(msg.into())
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(Failure::Check(msg)) => {
            eprintln!("bcast-trace: {msg}");
            ExitCode::from(1)
        }
        Err(Failure::Input(msg)) => {
            eprintln!("bcast-trace: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<(), Failure> {
    let Some(cmd) = args.first() else {
        return Err(Failure::input(USAGE));
    };
    match cmd.as_str() {
        "--help" | "-h" | "help" => {
            println!("{HELP}");
            Ok(())
        }
        "summary" => {
            let path = one_operand(&args[1..])?;
            let (events, meta) = load(path)?;
            warn_on_evictions(path, &meta);
            let spans = build_spans(&events);
            let summary = summarize(spans.spans().values());
            if summary.count() == 0 {
                println!("no committed update transactions in {path}");
            } else {
                print!("{}", render_summary(&summary));
            }
            Ok(())
        }
        "timeline" => {
            let [txn, path] = two_operands(&args[1..])?;
            let txn = parse_txn(txn)?;
            let (events, _) = load(path)?;
            let spans = build_spans(&events);
            let span = spans.get(txn).ok_or_else(|| {
                Failure::input(format!(
                    "no events for txn {}:{} in {path}",
                    txn.origin.0, txn.num
                ))
            })?;
            print!("{}", render_timeline(span));
            Ok(())
        }
        "slowest" => {
            let (k, path) = parse_slowest(&args[1..])?;
            let (events, _) = load(path)?;
            let spans = build_spans(&events);
            let top = slowest(spans.spans().values(), k);
            if top.is_empty() {
                println!("no committed update transactions in {path}");
                return Ok(());
            }
            println!(
                "{:<10} {:>12} {:>14}  breakdown",
                "txn", "latency", "dominant"
            );
            for p in &top {
                let parts: Vec<String> = bcastdb_sim::telemetry::Segment::ALL
                    .iter()
                    .filter(|s| !p.breakdown.get(**s).is_zero())
                    .map(|s| format!("{}={}", s.name(), p.breakdown.get(*s)))
                    .collect();
                println!(
                    "{:<10} {:>12} {:>14}  {}",
                    format!("{}:{}", p.span.txn.origin.0, p.span.txn.num),
                    p.latency.to_string(),
                    p.dominant.name(),
                    parts.join(" ")
                );
            }
            Ok(())
        }
        "check" => {
            let (lossy, path) = parse_check(&args[1..])?;
            let (events, meta) = load(path)?;
            warn_on_evictions(path, &meta);
            let mut inv = TraceInvariants::new();
            for ev in &events {
                inv.ingest(ev);
            }
            let verdict = if lossy {
                inv.check_allowing_pending()
            } else {
                inv.check()
            };
            verdict.map_err(|v| Failure::Check(format!("invariant violated: {v}")))?;
            println!(
                "{}: {} events, invariants hold{}",
                path,
                events.len(),
                if lossy {
                    " (lossy: pending transactions tolerated)"
                } else {
                    ""
                }
            );
            // Non-monotonic milestone report: the span decomposition
            // clamps out-of-order milestones to keep its telescoping sum
            // exact; surface which spans needed that rather than hiding
            // the reordering.
            let spans = build_spans(&events);
            let noisy: Vec<String> = spans
                .spans()
                .iter()
                .filter_map(|(txn, span)| {
                    let b = span.decompose()?;
                    (b.clamped > 0)
                        .then(|| format!("{}:{} ({} milestones)", txn.origin.0, txn.num, b.clamped))
                })
                .collect();
            if noisy.is_empty() {
                println!("all committed spans have monotonic milestones");
            } else {
                println!(
                    "{} span(s) with non-monotonic milestones (clamped in decomposition):",
                    noisy.len()
                );
                for line in &noisy {
                    println!("  {line}");
                }
            }
            Ok(())
        }
        "export" => {
            let (trace_path, out_path, metrics_path) = parse_export(&args[1..])?;
            let (events, meta) = load(trace_path)?;
            warn_on_evictions(trace_path, &meta);
            let samples = match metrics_path {
                Some(p) => load_samples(p)?,
                None => Vec::new(),
            };
            let doc = export_chrome_trace(&events, &samples);
            fs::write(out_path, &doc)
                .map_err(|e| Failure::input(format!("cannot write {out_path}: {e}")))?;
            println!(
                "{out_path}: {} trace events, {} metrics samples -> open in ui.perfetto.dev",
                events.len(),
                samples.len()
            );
            Ok(())
        }
        "perf-diff" => {
            let (base_path, cur_path, config) = parse_perf_diff(&args[1..])?;
            let baseline = load_ledger(base_path)?;
            let current = load_ledger(cur_path)?;
            let report = diff_ledgers(&baseline, &current, config);
            print!("{}", report.render());
            if report.is_ok() {
                Ok(())
            } else {
                Err(Failure::Check(format!(
                    "{} perf violation(s) vs {base_path}",
                    report.violations().len()
                )))
            }
        }
        other => Err(Failure::input(format!(
            "unknown subcommand '{other}'\n{USAGE}"
        ))),
    }
}

fn one_operand(args: &[String]) -> Result<&String, Failure> {
    match args {
        [path] => Ok(path),
        _ => Err(Failure::input(USAGE)),
    }
}

fn two_operands(args: &[String]) -> Result<[&String; 2], Failure> {
    match args {
        [a, b] => Ok([a, b]),
        _ => Err(Failure::input(USAGE)),
    }
}

fn parse_check(args: &[String]) -> Result<(bool, &String), Failure> {
    match args {
        [path] => Ok((false, path)),
        [flag, path] if flag == "--lossy" => Ok((true, path)),
        _ => Err(Failure::input(USAGE)),
    }
}

fn parse_slowest(args: &[String]) -> Result<(usize, &String), Failure> {
    match args {
        [path] => Ok((5, path)),
        [flag, k, path] if flag == "-n" => {
            let k: usize = k
                .parse()
                .map_err(|_| Failure::input(format!("bad count '{k}'")))?;
            Ok((k, path))
        }
        _ => Err(Failure::input(USAGE)),
    }
}

fn parse_export(args: &[String]) -> Result<(&String, &String, Option<&String>), Failure> {
    match args {
        [trace, out] => Ok((trace, out, None)),
        [trace, out, flag, metrics] if flag == "--metrics" => Ok((trace, out, Some(metrics))),
        _ => Err(Failure::input(USAGE)),
    }
}

fn parse_perf_diff(args: &[String]) -> Result<(&String, &String, DiffConfig), Failure> {
    if args.len() < 2 {
        return Err(Failure::input(USAGE));
    }
    let (base, cur) = (&args[0], &args[1]);
    let mut rest = &args[2..];
    let mut config = DiffConfig::default();
    while !rest.is_empty() {
        match rest {
            [flag, value, tail @ ..] if flag == "--max-regress" => {
                config.max_regress = parse_fraction(flag, value)?;
                rest = tail;
            }
            [flag, value, tail @ ..] if flag == "--max-alloc-regress" => {
                config.max_alloc_regress = parse_fraction(flag, value)?;
                rest = tail;
            }
            _ => return Err(Failure::input(USAGE)),
        }
    }
    Ok((base, cur, config))
}

fn parse_fraction(flag: &str, value: &str) -> Result<f64, Failure> {
    let f: f64 = value
        .parse()
        .map_err(|_| Failure::input(format!("bad value '{value}' for {flag}")))?;
    if !(0.0..=10.0).contains(&f) {
        return Err(Failure::input(format!(
            "{flag} must be a fraction in [0, 10], got {value}"
        )));
    }
    Ok(f)
}

fn parse_txn(s: &str) -> Result<TxnRef, Failure> {
    let (origin, num) = s.split_once(':').ok_or_else(|| {
        Failure::input(format!(
            "bad transaction id '{s}' (expected origin:num, e.g. 0:3)"
        ))
    })?;
    let origin: usize = origin
        .parse()
        .map_err(|_| Failure::input(format!("bad origin site '{origin}'")))?;
    let num: u64 = num
        .parse()
        .map_err(|_| Failure::input(format!("bad transaction number '{num}'")))?;
    Ok(TxnRef {
        origin: SiteId(origin),
        num,
    })
}

/// The `{"type":"trace_meta",...}` trailer the harness appends to trace
/// files: the number of event lines written and how many events the
/// in-memory ring evicted before the file was finished.
struct TraceMeta {
    events: u64,
    ring_evicted: u64,
}

fn parse_trace_meta(line: &str) -> Result<TraceMeta, String> {
    let body = line
        .strip_prefix("{\"type\":\"trace_meta\",\"events\":")
        .ok_or("malformed trace_meta trailer")?;
    let (events, rest) = body
        .split_once(",\"ring_evicted\":")
        .ok_or("trace_meta trailer is missing \"ring_evicted\"")?;
    let ring_evicted = rest
        .strip_suffix('}')
        .ok_or("trace_meta trailer is not a closed object")?;
    Ok(TraceMeta {
        events: events
            .parse()
            .map_err(|_| format!("bad trace_meta event count '{events}'"))?,
        ring_evicted: ring_evicted
            .parse()
            .map_err(|_| format!("bad trace_meta ring_evicted '{ring_evicted}'"))?,
    })
}

fn warn_on_evictions(path: &str, meta: &Option<TraceMeta>) {
    if let Some(m) = meta {
        if m.ring_evicted > 0 {
            eprintln!(
                "bcast-trace: WARNING: {path}: the run's in-memory ring evicted {} event(s) \
                 (trace capacity exceeded) — in-process tail inspection was incomplete. This \
                 file itself holds the full stream (trailer count verified).",
                m.ring_evicted
            );
        }
    }
}

/// Loads a trace file: every JSONL event line plus the optional
/// `trace_meta` trailer. Errors (exit 2) on unreadable files, malformed
/// lines, an empty trace, or a trailer whose event count disagrees with
/// the lines actually parsed.
fn load(path: &str) -> Result<(Vec<TraceEvent>, Option<TraceMeta>), Failure> {
    let text =
        fs::read_to_string(path).map_err(|e| Failure::input(format!("cannot read {path}: {e}")))?;
    let mut events = Vec::new();
    let mut meta = None;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        if line.starts_with("{\"type\":\"trace_meta\"") {
            if meta.is_some() {
                return Err(Failure::input(format!(
                    "{path}:{}: duplicate trace_meta trailer",
                    i + 1
                )));
            }
            meta = Some(
                parse_trace_meta(line)
                    .map_err(|e| Failure::input(format!("{path}:{}: {e}", i + 1)))?,
            );
            continue;
        }
        if meta.is_some() {
            return Err(Failure::input(format!(
                "{path}:{}: event line after the trace_meta trailer",
                i + 1
            )));
        }
        let ev = TraceEvent::from_jsonl(line)
            .map_err(|e| Failure::input(format!("{path}:{}: bad trace line: {e}", i + 1)))?;
        events.push(ev);
    }
    if let Some(m) = &meta {
        if m.events != events.len() as u64 {
            return Err(Failure::input(format!(
                "{path}: trace_meta trailer claims {} events but {} were parsed \
                 (truncated or corrupted trace)",
                m.events,
                events.len()
            )));
        }
    }
    if events.is_empty() {
        return Err(Failure::input(format!("{path}: empty trace")));
    }
    Ok((events, meta))
}

/// Loads a metrics samples JSONL file (the `--metrics-out` output).
fn load_samples(path: &str) -> Result<Vec<Sample>, Failure> {
    let text =
        fs::read_to_string(path).map_err(|e| Failure::input(format!("cannot read {path}: {e}")))?;
    let mut samples = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let s = Sample::from_jsonl(line)
            .map_err(|e| Failure::input(format!("{path}:{}: bad metrics line: {e}", i + 1)))?;
        samples.push(s);
    }
    Ok(samples)
}

fn load_ledger(path: &str) -> Result<WallclockLedger, Failure> {
    let text =
        fs::read_to_string(path).map_err(|e| Failure::input(format!("cannot read {path}: {e}")))?;
    WallclockLedger::parse(&text).map_err(|e| Failure::input(format!("{path}: {e}")))
}

fn build_spans(events: &[TraceEvent]) -> SpanBuilder {
    let mut spans = SpanBuilder::new();
    for ev in events {
        spans.ingest(ev);
    }
    spans
}
