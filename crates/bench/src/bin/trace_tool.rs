//! `bcast-trace` — offline analysis of bcastdb trace JSONL files.
//!
//! Reads a trace produced with `--trace-out` (or
//! `ClusterBuilder::trace_jsonl`) and reconstructs per-transaction spans:
//!
//! ```text
//! bcast-trace summary  <trace.jsonl>             per-segment latency breakdown
//! bcast-trace timeline <origin:num> <trace.jsonl> one transaction across sites
//! bcast-trace slowest  [-n K] <trace.jsonl>      critical path of the K slowest commits
//! bcast-trace check    <trace.jsonl>             offline trace invariant run
//! ```
//!
//! Exit status is nonzero on parse errors, invariant violations, or an
//! unknown transaction.

use bcastdb_sim::telemetry::{
    check_trace, render_summary, render_timeline, slowest, summarize, SpanBuilder, TraceEvent,
    TxnRef,
};
use bcastdb_sim::SiteId;
use std::fs;
use std::process::ExitCode;

const USAGE: &str = "usage:
  bcast-trace summary  <trace.jsonl>
  bcast-trace timeline <origin:num> <trace.jsonl>
  bcast-trace slowest  [-n K] <trace.jsonl>
  bcast-trace check    <trace.jsonl>";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("bcast-trace: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err(USAGE.to_string());
    };
    match cmd.as_str() {
        "summary" => {
            let path = one_operand(&args[1..])?;
            let events = load(path)?;
            let spans = build_spans(&events);
            let summary = summarize(spans.spans().values());
            if summary.count() == 0 {
                println!("no committed update transactions in {path}");
            } else {
                print!("{}", render_summary(&summary));
            }
            Ok(())
        }
        "timeline" => {
            let [txn, path] = two_operands(&args[1..])?;
            let txn = parse_txn(txn)?;
            let events = load(path)?;
            let spans = build_spans(&events);
            let span = spans.get(txn).ok_or_else(|| {
                format!("no events for txn {}:{} in {path}", txn.origin.0, txn.num)
            })?;
            print!("{}", render_timeline(span));
            Ok(())
        }
        "slowest" => {
            let (k, path) = parse_slowest(&args[1..])?;
            let events = load(path)?;
            let spans = build_spans(&events);
            let top = slowest(spans.spans().values(), k);
            if top.is_empty() {
                println!("no committed update transactions in {path}");
                return Ok(());
            }
            println!(
                "{:<10} {:>12} {:>14}  breakdown",
                "txn", "latency", "dominant"
            );
            for p in &top {
                let parts: Vec<String> = bcastdb_sim::telemetry::Segment::ALL
                    .iter()
                    .filter(|s| !p.breakdown.get(**s).is_zero())
                    .map(|s| format!("{}={}", s.name(), p.breakdown.get(*s)))
                    .collect();
                println!(
                    "{:<10} {:>12} {:>14}  {}",
                    format!("{}:{}", p.span.txn.origin.0, p.span.txn.num),
                    p.latency.to_string(),
                    p.dominant.name(),
                    parts.join(" ")
                );
            }
            Ok(())
        }
        "check" => {
            let path = one_operand(&args[1..])?;
            let events = load(path)?;
            check_trace(&events).map_err(|v| format!("invariant violated: {v}"))?;
            println!("{}: {} events, invariants hold", path, events.len());
            // Non-monotonic milestone report: the span decomposition
            // clamps out-of-order milestones to keep its telescoping sum
            // exact; surface which spans needed that rather than hiding
            // the reordering.
            let spans = build_spans(&events);
            let noisy: Vec<String> = spans
                .spans()
                .iter()
                .filter_map(|(txn, span)| {
                    let b = span.decompose()?;
                    (b.clamped > 0)
                        .then(|| format!("{}:{} ({} milestones)", txn.origin.0, txn.num, b.clamped))
                })
                .collect();
            if noisy.is_empty() {
                println!("all committed spans have monotonic milestones");
            } else {
                println!(
                    "{} span(s) with non-monotonic milestones (clamped in decomposition):",
                    noisy.len()
                );
                for line in &noisy {
                    println!("  {line}");
                }
            }
            Ok(())
        }
        other => Err(format!("unknown subcommand '{other}'\n{USAGE}")),
    }
}

fn one_operand(args: &[String]) -> Result<&String, String> {
    match args {
        [path] => Ok(path),
        _ => Err(USAGE.to_string()),
    }
}

fn two_operands(args: &[String]) -> Result<[&String; 2], String> {
    match args {
        [a, b] => Ok([a, b]),
        _ => Err(USAGE.to_string()),
    }
}

fn parse_slowest(args: &[String]) -> Result<(usize, &String), String> {
    match args {
        [path] => Ok((5, path)),
        [flag, k, path] if flag == "-n" => {
            let k: usize = k.parse().map_err(|_| format!("bad count '{k}'"))?;
            Ok((k, path))
        }
        _ => Err(USAGE.to_string()),
    }
}

fn parse_txn(s: &str) -> Result<TxnRef, String> {
    let (origin, num) = s
        .split_once(':')
        .ok_or_else(|| format!("bad transaction id '{s}' (expected origin:num, e.g. 0:3)"))?;
    let origin: usize = origin
        .parse()
        .map_err(|_| format!("bad origin site '{origin}'"))?;
    let num: u64 = num
        .parse()
        .map_err(|_| format!("bad transaction number '{num}'"))?;
    Ok(TxnRef {
        origin: SiteId(origin),
        num,
    })
}

fn load(path: &str) -> Result<Vec<TraceEvent>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ev = TraceEvent::from_jsonl(line)
            .map_err(|e| format!("{path}:{}: bad trace line: {e}", i + 1))?;
        events.push(ev);
    }
    Ok(events)
}

fn build_spans(events: &[TraceEvent]) -> SpanBuilder {
    let mut spans = SpanBuilder::new();
    for ev in events {
        spans.ingest(ev);
    }
    spans
}
