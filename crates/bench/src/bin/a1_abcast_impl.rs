//! **A1 (ablation) — Atomic broadcast as a bandwidth problem.**
//!
//! The paper stresses that atomic broadcast is "both expensive and complex
//! to implement", but its cost model counts messages, not bytes. This
//! saturation sweep drives the three total-order engines directly on the
//! simulator under the F6 bandwidth model — every NIC transmits at
//! 200 kB/s — with a closed-loop workload (each site keeps a fixed number
//! of its own broadcasts outstanding) over N ∈ {3..32} × payload ∈
//! {64 B, 1 kB, 8 kB}, and reports *delivered payload bytes per second per
//! site* against the analytic single-link bound:
//!
//! - **sequencer** funnels every payload through the leader's NIC (the
//!   leader retransmits N-1 copies), so throughput collapses as ~1/N;
//! - **isis** disseminates from each origin (N-1 copies of that origin's
//!   own payloads), which spreads the byte cost but triples the message
//!   count;
//! - **ring** forwards each payload exactly once per NIC regardless of N,
//!   so it stays within a constant factor of the link bound at any group
//!   size.
//!
//! The `(sites, payload, impl)` sweep runs on `BCASTDB_JOBS` worker
//! threads; rows are assembled in config order, so the output is
//! byte-identical at any job count. `BCASTDB_A1_SMOKE=1` runs only the
//! N=32 × 8 kB column (the acceptance point) for the CI smoke gate.

use bcastdb_bench::{Ledger, Sweep, Table};
use bcastdb_broadcast::atomic::{IsisAbcast, IsisWire, Output, SeqWire, SequencerAbcast};
use bcastdb_broadcast::msg::{dest_iter, Outbound};
use bcastdb_broadcast::ring::{RingAbcast, RingWire};
use bcastdb_broadcast::{AtomicBcast, WireSize};
use bcastdb_sim::{Ctx, NetworkConfig, Node, SimDuration, SimTime, Simulation, SiteId};

/// Per-sender NIC rate of the saturation model, in bytes per simulated
/// second (the F6 bandwidth profile's 200 kB/s).
const NIC_BYTES_PER_SEC: u64 = 200_000;
/// Own broadcasts each site keeps outstanding (closed loop). Below the
/// ring's pipeline window so the closed loop, not the window, paces
/// submission.
const OUTSTANDING: usize = 4;
/// Measurement starts here — everything before is pipeline warm-up. At
/// N=32 the first payload alone takes 31 × 41 ms of hops to circulate, so
/// the ramp to a full pipeline is measured in seconds.
const WARMUP_US: u64 = 8_000_000;
/// Submission and measurement both stop here.
const END_US: u64 = 20_000_000;
/// Pacing-timer period. Sites whose engine delivers their own broadcasts
/// inline (the sequencer itself; a solo ring) never see a network
/// round-trip per submission, so the closed loop alone would spin — the
/// timer caps their offered load at `OUTSTANDING` per period, still far
/// above what a 200 kB/s NIC drains.
const PACE_US: u64 = 5_000;

/// An opaque payload: `wire_size` is its length, nothing is materialized.
#[derive(Debug, Clone, Copy)]
struct Blob(usize);

impl WireSize for Blob {
    fn wire_size(&self) -> usize {
        self.0
    }
}

/// Union of the three engines' wire vocabularies.
#[derive(Debug, Clone)]
enum Msg {
    Seq(SeqWire<Blob>),
    Isis(IsisWire<Blob>),
    Ring(RingWire<Blob>),
}

enum Engine {
    Seq(SequencerAbcast<Blob>),
    Isis(IsisAbcast<Blob>),
    Ring(Box<RingAbcast<Blob>>),
}

/// One site of the saturation rig: an atomic-broadcast engine plus the
/// closed-loop driver and the in-window delivery accounting.
struct AbNode {
    engine: Engine,
    n: usize,
    payload: usize,
    /// Own broadcasts submitted but not yet self-delivered.
    outstanding: usize,
    /// Payload bytes delivered inside the measurement window.
    delivered_bytes: u64,
    /// Deliveries (any origin) inside the measurement window.
    delivered_msgs: u64,
    /// Wire messages sent inside the measurement window.
    sent_msgs: u64,
}

impl AbNode {
    fn new(me: SiteId, n: usize, payload: usize, which: &str) -> Self {
        let engine = match which {
            "sequencer" => Engine::Seq(SequencerAbcast::new(me, n)),
            "isis" => Engine::Isis(IsisAbcast::new(me, n)),
            "ring" => Engine::Ring(Box::new(RingAbcast::new(me, n))),
            other => panic!("unknown backend {other}"),
        };
        AbNode {
            engine,
            n,
            payload,
            outstanding: 0,
            delivered_bytes: 0,
            delivered_msgs: 0,
            sent_msgs: 0,
        }
    }

    fn in_window(now: SimTime) -> bool {
        let t = now.as_micros();
        (WARMUP_US..END_US).contains(&t)
    }

    /// Routes an engine's output: fan out the wire messages (sized, so the
    /// NIC model sees the real bytes) and account the deliveries. Returns
    /// how many of the deliveries were this site's own broadcasts.
    fn route<W: WireSize + Clone>(
        &mut self,
        ctx: &mut Ctx<'_, Msg, ()>,
        out: Output<Blob, W>,
        wrap: fn(W) -> Msg,
    ) -> usize {
        let now = ctx.now();
        let me = ctx.me();
        let counted = Self::in_window(now);
        for Outbound { dest, wire } in out.outbound {
            let size = wire.wire_size();
            for to in dest_iter(dest, me, self.n) {
                if counted {
                    self.sent_msgs += 1;
                }
                ctx.send_sized(to, wrap(wire.clone()), size);
            }
        }
        let mut own = 0;
        for d in out.deliveries {
            if counted {
                self.delivered_bytes += d.payload.0 as u64;
                self.delivered_msgs += 1;
            }
            if d.id.origin == me {
                own += 1;
            }
        }
        own
    }

    /// The closed loop: top up to `OUTSTANDING` of our own broadcasts in
    /// flight (submission stops at the measurement horizon). Single pass —
    /// a submission the engine delivers back inline counts as one attempt,
    /// so a site with zero-feedback self-delivery cannot spin here.
    fn refill(&mut self, ctx: &mut Ctx<'_, Msg, ()>) {
        let mut attempts = OUTSTANDING.saturating_sub(self.outstanding);
        while attempts > 0 && ctx.now().as_micros() < END_US {
            attempts -= 1;
            self.outstanding += 1;
            let payload = Blob(self.payload);
            match &mut self.engine {
                Engine::Seq(e) => {
                    let (_, out) = e.broadcast(payload);
                    let own = self.route(ctx, out, Msg::Seq);
                    self.outstanding -= own;
                }
                Engine::Isis(e) => {
                    let (_, out) = e.broadcast(payload);
                    let own = self.route(ctx, out, Msg::Isis);
                    self.outstanding -= own;
                }
                Engine::Ring(e) => {
                    let (_, out) = e.broadcast(payload);
                    let own = self.route(ctx, out, Msg::Ring);
                    self.outstanding -= own;
                }
            }
        }
    }
}

impl Node for AbNode {
    type Msg = Msg;
    type Timer = ();

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg, ()>, from: SiteId, msg: Msg) {
        let own = match (msg, &mut self.engine) {
            (Msg::Seq(w), Engine::Seq(e)) => {
                let out = e.on_wire(from, w);
                self.route(ctx, out, Msg::Seq)
            }
            (Msg::Isis(w), Engine::Isis(e)) => {
                let out = e.on_wire(from, w);
                self.route(ctx, out, Msg::Isis)
            }
            (Msg::Ring(w), Engine::Ring(e)) => {
                let out = e.on_wire(from, w);
                self.route(ctx, out, Msg::Ring)
            }
            _ => unreachable!("backend mismatch"),
        };
        self.outstanding -= own;
        if own > 0 {
            self.refill(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg, ()>, _tag: ()) {
        self.refill(ctx);
        if ctx.now().as_micros() < END_US {
            ctx.set_timer(SimDuration::from_micros(PACE_US), ());
        }
    }
}

/// One measured cell of the sweep.
struct Cell {
    bytes_per_sec: f64,
    msgs_per_delivery: f64,
    events: u64,
}

fn run_one(n: usize, payload: usize, which: &str) -> Cell {
    let net = NetworkConfig::lan().with_nic_bandwidth(NIC_BYTES_PER_SEC);
    let nodes: Vec<AbNode> = (0..n)
        .map(|i| AbNode::new(SiteId(i), n, payload, which))
        .collect();
    let mut sim = Simulation::new(41, net, nodes);
    for i in 0..n {
        // Staggered kick-off so the first wave is not perfectly aligned.
        sim.schedule_timer(SimTime::from_micros(7 * i as u64), SiteId(i), ());
    }
    sim.run_until(SimTime::from_micros(END_US));
    let window_secs = (END_US - WARMUP_US) as f64 / 1e6;
    let (mut min_bytes, mut deliveries, mut sends) = (u64::MAX, 0u64, 0u64);
    for i in 0..n {
        let node = sim.node(SiteId(i));
        min_bytes = min_bytes.min(node.delivered_bytes);
        deliveries += node.delivered_msgs;
        sends += node.sent_msgs;
    }
    assert!(deliveries > 0, "{which}@{n}x{payload}: nothing delivered");
    Cell {
        // Payload bytes per second at the *slowest* site — the rate at
        // which the whole group learns the total order. (The sequencer
        // delivers its own submissions to itself for free; the min keeps
        // that from inflating a leader-bound backend's number.)
        bytes_per_sec: min_bytes as f64 / window_secs,
        msgs_per_delivery: sends as f64 * n as f64 / deliveries as f64,
        events: sim.events_processed(),
    }
}

fn main() {
    let smoke = std::env::var("BCASTDB_A1_SMOKE").is_ok_and(|v| v == "1");
    let backends = ["sequencer", "isis", "ring"];
    let mut configs = Vec::new();
    let (sites, payloads): (&[usize], &[usize]) = if smoke {
        (&[32], &[8_192])
    } else {
        (&[3, 8, 16, 24, 32], &[64, 1_024, 8_192])
    };
    for &n in sites {
        for &payload in payloads {
            for name in backends {
                configs.push((n, payload, name));
            }
        }
    }
    let mut table = Table::new(
        "a1_abcast_impl",
        &[
            "sites",
            "payload",
            "impl",
            "delivered_bytes_per_sec",
            "link_bound_pct",
            "msgs_per_broadcast",
        ],
    );
    let outcome = Sweep::from_env().run(configs.clone(), |&(n, payload, name)| {
        let cell = run_one(n, payload, name);
        let cells = vec![
            n.to_string(),
            payload.to_string(),
            name.to_string(),
            format!("{:.0}", cell.bytes_per_sec),
            format!(
                "{:.1}",
                100.0 * cell.bytes_per_sec / NIC_BYTES_PER_SEC as f64
            ),
            format!("{:.1}", cell.msgs_per_delivery),
        ];
        (cells, cell.bytes_per_sec, cell.events)
    });
    let mut events = 0u64;
    let at = |n: usize, payload: usize, name: &str| -> f64 {
        configs
            .iter()
            .zip(&outcome.results)
            .find(|((s, p, b), _)| *s == n && *p == payload && *b == name)
            .map(|(_, (_, bps, _))| *bps)
            .expect("config present")
    };
    // The acceptance point: at N=32 with 8 kB payloads the ring sustains at
    // least twice the sequencer's delivered rate and stays within 20% of
    // the 200 kB/s single-link bound.
    let ring = at(32, 8_192, "ring");
    let seq = at(32, 8_192, "sequencer");
    assert!(
        ring >= 2.0 * seq,
        "ring must beat the sequencer 2x at N=32/8kB: ring={ring:.0} seq={seq:.0}"
    );
    assert!(
        ring >= 0.8 * NIC_BYTES_PER_SEC as f64,
        "ring must reach 80% of the link bound at N=32/8kB: {ring:.0}"
    );
    for (cells, _, ev) in &outcome.results {
        table.row_strings(cells);
        events += ev;
    }
    table.emit();
    let mut ledger = Ledger::new();
    ledger.record("a1_abcast_impl", &outcome, events);
    ledger.finish();
}
