//! **A1 (ablation) — The cost of the atomic broadcast primitive itself.**
//!
//! The paper stresses that atomic broadcast is "both expensive and complex
//! to implement". This ablation runs the §5 protocol over two classical
//! implementations — a fixed sequencer (2 hops, ~N+1 messages) and the
//! decentralized ISIS agreement (3 hops, 3(N-1) messages) — and reports
//! message counts and commit latency as the system grows.
//!
//! The `(sites, impl)` sweep runs on `BCASTDB_JOBS` worker threads; rows
//! are assembled in config order, so the output is byte-identical at any
//! job count.

use bcastdb_bench::{check_traced_run, Ledger, Sweep, Table, TRACE_CAPACITY};
use bcastdb_core::{AbcastImpl, Cluster, ProtocolKind};
use bcastdb_sim::SimDuration;
use bcastdb_workload::{WorkloadConfig, WorkloadRun};

fn main() {
    let cfg = WorkloadConfig {
        n_keys: 1000,
        theta: 0.5,
        reads_per_txn: 1,
        writes_per_txn: 2,
        ..WorkloadConfig::default()
    };
    let mut table = Table::new(
        "a1_abcast_impl",
        &[
            "sites",
            "impl",
            "commits",
            "messages",
            "msgs_per_txn",
            "mean_ms",
            "p95_ms",
        ],
    );
    let mut configs = Vec::new();
    for n in [3usize, 5, 7, 9, 13] {
        for (name, imp) in [
            ("sequencer", AbcastImpl::Sequencer),
            ("isis", AbcastImpl::Isis),
        ] {
            configs.push((n, name, imp));
        }
    }
    let outcome = Sweep::from_env().run(configs, |&(n, name, imp)| {
        let mut cluster = Cluster::builder()
            .sites(n)
            .protocol(ProtocolKind::AtomicBcast)
            .abcast(imp)
            .trace(TRACE_CAPACITY)
            .seed(29)
            .build();
        let run = WorkloadRun::new(cfg.clone(), 290 + n as u64);
        let report = run.open_loop(&mut cluster, 25, SimDuration::from_millis(10));
        assert!(report.quiesced, "{name}@{n} did not quiesce");
        assert!(report.all_terminated(), "{name}@{n} wedged transactions");
        cluster.check_serializability().expect("serializable");
        check_traced_run(&cluster, &format!("{name}@{n}"));
        let m = report.metrics;
        let per_txn = report.messages as f64 / m.commits().max(1) as f64;
        let cells = vec![
            n.to_string(),
            name.to_string(),
            m.commits().to_string(),
            report.messages.to_string(),
            format!("{per_txn:.1}"),
            format!("{:.3}", m.update_latency.mean().as_millis_f64()),
            format!("{:.3}", m.update_latency.p95().as_millis_f64()),
        ];
        (cells, cluster.events_processed())
    });
    let mut events = 0u64;
    for (cells, ev) in &outcome.results {
        table.row_strings(cells);
        events += ev;
    }
    table.emit();
    let mut ledger = Ledger::new();
    ledger.record("a1_abcast_impl", &outcome, events);
    ledger.finish();
}
