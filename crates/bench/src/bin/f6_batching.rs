//! **F6 — Wire-message batching under bandwidth-limited links.**
//!
//! Sweeps the broadcast-layer batching window (off, 100 µs, 500 µs, 2 ms)
//! for all four protocols on a 4-site cluster whose links have finite
//! bandwidth, so per-message serialization delay — the cost batching
//! amortises — is visible. The workload is open-loop and conflict-free
//! (one key per transaction): submissions happen at fixed virtual times
//! and no wound/certification decision can flip with delivery timing, so
//! the *logical* per-phase message counts are a pure function of the
//! transaction structure. The harness asserts exactly that:
//!
//! * every batched run's per-phase counts equal the unbatched run's
//!   (batching changes the wire, never the protocol), and
//! * at the largest window the wire-message count drops ≥ 2×.
//!
//! Columns: `wire_msgs` is what the network carried (batch envelopes when
//! batching is on), `logical_msgs` the protocol-level sends that travelled
//! inside them, `reduction` their ratio versus the unbatched baseline.
//! `mean_lat_ms` shows the price: held-back messages add up to one window
//! of commit latency.
//!
//! Set `BCASTDB_F6_SMOKE=1` for a fast CI-sized run (fewer transactions,
//! same assertions).
//!
//! The `(protocol, window)` runs execute on `BCASTDB_JOBS` worker
//! threads; the baseline comparisons and rows are evaluated afterwards in
//! config order, so the output (and every assertion) is identical at any
//! job count.

use bcastdb_bench::{check_traced_run, f2, Ledger, Sweep, Table, TRACE_CAPACITY};
use bcastdb_core::{Cluster, ProtocolKind, TxnSpec};
use bcastdb_sim::telemetry::PhaseCounts;
use bcastdb_sim::{NetworkConfig, SimDuration, SimTime, SiteId};

/// Batch windows swept, in microseconds (`None` = batching off).
const WINDOWS_US: [Option<u64>; 4] = [None, Some(100), Some(500), Some(2_000)];
/// Per-link bandwidth (bytes/second) — slow enough that serialization
/// delay dominates propagation and batching has something to amortise.
const BANDWIDTH: u64 = 200_000;
/// Virtual-time gap between consecutive submissions.
const SUBMIT_GAP_US: u64 = 250;

struct RunStats {
    phases: PhaseCounts,
    /// Null keep-alives (`msg_null`): the causal protocol's silence-filling
    /// implicit-ack carriers. They adapt to *timing* by design — a held-back
    /// delivery leaves a transaction undecided over more ticks — so they are
    /// excluded from the "batching never changes the logical traffic"
    /// assertion, which covers every protocol-round message.
    nulls: u64,
    commits: u64,
    aborts: u64,
    logical: u64,
    wire: u64,
    batches: u64,
    bytes: u64,
    mean_lat_ms: f64,
    events: u64,
}

impl RunStats {
    /// Per-phase counts minus the timing-adaptive null keep-alives (which
    /// are recorded under [`bcastdb_sim::telemetry::Phase::Ack`]).
    fn protocol_phases(&self) -> PhaseCounts {
        let mut pc = self.phases;
        pc.ack -= self.nulls;
        pc
    }
}

fn run_once(proto: ProtocolKind, window_us: Option<u64>, txns: u64, sites: usize) -> RunStats {
    let mut b = Cluster::builder()
        .sites(sites)
        .protocol(proto)
        .network(NetworkConfig::lan().with_bandwidth(BANDWIDTH))
        .trace(TRACE_CAPACITY)
        .seed(42);
    if let Some(us) = window_us {
        b = b.batch_window(SimDuration::from_micros(us));
    }
    let mut c = b.build();
    for i in 0..txns {
        let key = format!("k{i}");
        c.submit_at(
            SimTime::from_micros(i * SUBMIT_GAP_US),
            SiteId((i % sites as u64) as usize),
            TxnSpec::new()
                .read(key.as_str())
                .write(key.as_str(), i as i64),
        );
    }
    c.run_to_quiescence();
    let label = format!("{proto}@window={window_us:?}");
    check_traced_run(&c, &label);
    assert!(c.replicas_converged(), "{label}: replicas diverged");
    let m = c.metrics();
    RunStats {
        phases: c.phase_counts(),
        nulls: m.counters.get("msg_null"),
        commits: m.commits(),
        aborts: m.aborts(),
        logical: m.messages_by_kind(),
        wire: c.messages_sent(),
        batches: m.wire_batches(),
        bytes: m.counters.get("wire_batched_bytes"),
        mean_lat_ms: m.update_latency.mean().as_millis_f64(),
        events: c.events_processed(),
    }
}

fn main() {
    let smoke = std::env::var_os("BCASTDB_F6_SMOKE").is_some();
    let txns: u64 = if smoke { 12 } else { 48 };
    let sites = 4usize;
    let mut table = Table::new(
        "f6_batching",
        &[
            "protocol",
            "window_us",
            "commits",
            "aborts",
            "logical_msgs",
            "wire_msgs",
            "wire_batches",
            "wire_kb",
            "mean_lat_ms",
            "reduction",
        ],
    );
    let mut configs = Vec::new();
    for proto in ProtocolKind::ALL {
        for window_us in WINDOWS_US {
            configs.push((proto, window_us));
        }
    }
    let outcome = Sweep::from_env().run(configs.clone(), |&(proto, window_us)| {
        eprintln!("[f6] protocol={} window={window_us:?}", proto.name());
        run_once(proto, window_us, txns, sites)
    });

    // The baseline comparisons run on the collected results, in config
    // order: each protocol's unbatched run comes first and anchors the
    // assertions for its batched runs.
    let mut events = 0u64;
    let mut baseline: Option<&RunStats> = None;
    for ((proto, window_us), stats) in configs.iter().zip(&outcome.results) {
        let proto = *proto;
        events += stats.events;
        match (&baseline, window_us) {
            (_, None) => {
                assert_eq!(stats.batches, 0, "{proto}: unbatched run recorded batches");
                assert_eq!(
                    stats.wire, stats.logical,
                    "{proto}: without batching the network carries each logical message"
                );
                baseline = None;
            }
            (Some(off), Some(us)) => {
                // The invariant the whole design hangs on: batching
                // must be invisible to the protocol layer. Null
                // keep-alives are excluded — see [`RunStats::nulls`].
                assert_eq!(
                    off.protocol_phases(),
                    stats.protocol_phases(),
                    "{proto}@{us}us: logical per-phase counts changed under batching"
                );
                assert_eq!(
                    off.commits, stats.commits,
                    "{proto}@{us}us: outcomes changed under batching"
                );
                assert_eq!(
                    stats.wire, stats.batches,
                    "{proto}@{us}us: every batched-run transmission is an envelope"
                );
                assert_eq!(
                    stats.logical,
                    stats.phases.total(),
                    "{proto}@{us}us: per-kind and per-phase totals must agree"
                );
                if *us == WINDOWS_US.iter().flatten().max().copied().unwrap_or(0) {
                    assert!(
                        stats.wire * 2 <= off.wire,
                        "{proto}@{us}us: expected >= 2x wire reduction, got {} vs {}",
                        stats.wire,
                        off.wire
                    );
                }
            }
            _ => unreachable!("baseline row runs first"),
        }
        let window = window_us.map_or_else(|| "off".to_string(), |us| us.to_string());
        let reduction = baseline.map_or_else(
            || "1.00".to_string(),
            |off| f2(off.wire as f64 / stats.wire as f64),
        );
        table.row_strings(&[
            proto.name().to_string(),
            window,
            stats.commits.to_string(),
            stats.aborts.to_string(),
            stats.logical.to_string(),
            stats.wire.to_string(),
            stats.batches.to_string(),
            f2(stats.bytes as f64 / 1024.0),
            format!("{:.3}", stats.mean_lat_ms),
            reduction,
        ]);
        if baseline.is_none() {
            baseline = Some(stats);
        }
    }
    table.emit();
    let mut ledger = Ledger::new();
    ledger.record("f6_batching", &outcome, events);
    ledger.finish();
}
