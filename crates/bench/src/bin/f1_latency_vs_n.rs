//! **F1 — Commit latency vs number of replicas.**
//!
//! Mean (and p95) update-commit latency for all four protocols as the
//! system grows. Expected shape: the point-to-point baseline grows fastest
//! (per-operation ack round trips), the reliable protocol pays a fixed
//! vote round, the causal protocol sits near it (acks ride on traffic),
//! and the atomic protocol is flattest (one ordered broadcast, no
//! acknowledgements).
//!
//! Each row also carries the mean per-segment latency decomposition
//! (`seg_*_ms`, reconstructed from the trace) so the growth can be
//! attributed: the baseline's curve lives in `seg_disseminate_ms`, the
//! reliable protocol's in `seg_votes_ms`, the atomic protocol's in
//! `seg_order_wait_ms`. With `--trace-out <base.jsonl>` (or
//! `BCASTDB_TRACE_OUT`) each run's full trace lands in
//! `<base>-<protocol>-<sites>.jsonl` for `bcast-trace`.
//!
//! The `(sites, protocol)` sweep runs on `BCASTDB_JOBS` worker threads;
//! rows are assembled in config order, so the output is byte-identical
//! at any job count.

use bcastdb_bench::{
    check_traced_run, segment_cells, segment_headers, trace_out_for, trace_out_path, Ledger, Sweep,
    Table, TRACE_CAPACITY,
};
use bcastdb_core::{Cluster, ProtocolKind};
use bcastdb_sim::telemetry::summarize;
use bcastdb_sim::SimDuration;
use bcastdb_workload::{WorkloadConfig, WorkloadRun};

fn main() {
    let cfg = WorkloadConfig {
        n_keys: 1000,
        theta: 0.6,
        reads_per_txn: 2,
        writes_per_txn: 2,
        readonly_fraction: 0.0,
        ..WorkloadConfig::default()
    };
    let trace_out = trace_out_path();
    let mut headers: Vec<String> = [
        "sites", "protocol", "commits", "aborts", "mean_ms", "p95_ms",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    headers.extend(segment_headers());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new("f1_latency_vs_n", &header_refs);

    let mut configs = Vec::new();
    for n in [3usize, 5, 7, 9, 13] {
        for proto in ProtocolKind::ALL {
            configs.push((n, proto));
        }
    }
    let outcome = Sweep::from_env().run(configs, |&(n, proto)| {
        let mut builder = Cluster::builder()
            .sites(n)
            .protocol(proto)
            .trace(TRACE_CAPACITY)
            .seed(7);
        if let Some(base) = &trace_out {
            builder = builder.trace_jsonl(trace_out_for(base, &format!("{proto}-{n}")));
        }
        let mut cluster = builder.build();
        let run = WorkloadRun::new(cfg.clone(), 70 + n as u64);
        let report = run.open_loop(&mut cluster, 30, SimDuration::from_millis(20));
        assert!(report.quiesced, "{proto}@{n} did not quiesce");
        assert!(report.all_terminated(), "{proto}@{n} wedged transactions");
        cluster.check_serializability().expect("serializable");
        check_traced_run(&cluster, &format!("{proto}@{n}"));
        let summary = summarize(cluster.txn_spans().values());
        let m = report.metrics;
        let mut cells = vec![
            n.to_string(),
            proto.name().to_string(),
            m.commits().to_string(),
            m.aborts().to_string(),
            format!("{:.3}", m.update_latency.mean().as_millis_f64()),
            format!("{:.3}", m.update_latency.p95().as_millis_f64()),
        ];
        cells.extend(segment_cells(&summary));
        if trace_out.is_some() {
            cluster.finish_trace_jsonl().expect("trace flush");
        }
        (cells, cluster.events_processed())
    });
    let mut events = 0u64;
    for (cells, ev) in &outcome.results {
        table.row_strings(cells);
        events += ev;
    }
    table.emit();
    let mut ledger = Ledger::new();
    ledger.record("f1_latency_vs_n", &outcome, events);
    ledger.finish();
}
