//! **F1 — Commit latency vs number of replicas.**
//!
//! Mean (and p95) update-commit latency for all four protocols as the
//! system grows. Expected shape: the point-to-point baseline grows fastest
//! (per-operation ack round trips), the reliable protocol pays a fixed
//! vote round, the causal protocol sits near it (acks ride on traffic),
//! and the atomic protocol is flattest (one ordered broadcast, no
//! acknowledgements).

use bcastdb_bench::{check_traced_run, Table, TRACE_CAPACITY};
use bcastdb_core::{Cluster, ProtocolKind};
use bcastdb_sim::SimDuration;
use bcastdb_workload::{WorkloadConfig, WorkloadRun};

fn main() {
    let cfg = WorkloadConfig {
        n_keys: 1000,
        theta: 0.6,
        reads_per_txn: 2,
        writes_per_txn: 2,
        readonly_fraction: 0.0,
        ..WorkloadConfig::default()
    };
    let mut table = Table::new(
        "f1_latency_vs_n",
        &[
            "sites", "protocol", "commits", "aborts", "mean_ms", "p95_ms",
        ],
    );
    for n in [3usize, 5, 7, 9, 13] {
        for proto in ProtocolKind::ALL {
            let mut cluster = Cluster::builder()
                .sites(n)
                .protocol(proto)
                .trace(TRACE_CAPACITY)
                .seed(7)
                .build();
            let run = WorkloadRun::new(cfg.clone(), 70 + n as u64);
            let report = run.open_loop(&mut cluster, 30, SimDuration::from_millis(20));
            assert!(report.quiesced, "{proto}@{n} did not quiesce");
            assert!(report.all_terminated(), "{proto}@{n} wedged transactions");
            cluster.check_serializability().expect("serializable");
            check_traced_run(&cluster, &format!("{proto}@{n}"));
            let mut m = report.metrics;
            table.row(&[
                &n,
                &proto.name(),
                &m.commits(),
                &m.aborts(),
                &format!("{:.3}", m.update_latency.mean().as_millis_f64()),
                &format!("{:.3}", m.update_latency.p95().as_millis_f64()),
            ]);
        }
    }
    table.emit();
}
