//! **F5 — Effect of the read-only fraction.**
//!
//! Read-only transactions execute entirely locally in every protocol, but
//! their *guarantees* differ: the reliable and causal protocols never abort
//! them (writers wait or are vetoed), while the atomic protocol wounds
//! conflicting local readers to keep applies acknowledgement-free.
//!
//! Reported per protocol as the read-only fraction grows: throughput,
//! read-only commit latency, and read-only aborts (nonzero only for the
//! atomic protocol under contention).
//!
//! The `(ro_frac, protocol)` sweep runs on `BCASTDB_JOBS` worker threads;
//! rows are assembled in config order, so the output is byte-identical
//! at any job count.

use bcastdb_bench::{check_traced_run, f2, Ledger, Sweep, Table, TRACE_CAPACITY};
use bcastdb_core::{Cluster, ProtocolKind};
use bcastdb_sim::SimDuration;
use bcastdb_workload::{WorkloadConfig, WorkloadRun};

fn main() {
    let mut table = Table::new(
        "f5_readonly",
        &[
            "ro_frac",
            "protocol",
            "commits",
            "ro_commits",
            "aborts",
            "ro_aborted",
            "ro_latency_ms",
            "tps",
        ],
    );
    let mut configs = Vec::new();
    for ro in [0.0f64, 0.25, 0.5, 0.75, 1.0] {
        for proto in ProtocolKind::ALL {
            configs.push((ro, proto));
        }
    }
    let outcome = Sweep::from_env().run(configs, |&(ro, proto)| {
        let cfg = WorkloadConfig {
            n_keys: 40,
            theta: 0.9,
            reads_per_txn: 1,
            writes_per_txn: 2,
            reads_per_ro_txn: 6,
            readonly_fraction: ro,
        };
        let mut cluster = Cluster::builder()
            .sites(5)
            .protocol(proto)
            // Clients issue reads sequentially (1ms think time): read
            // phases overlap remote applies, which is where the
            // protocols' read-only guarantees actually differ.
            .think_time(bcastdb_sim::SimDuration::from_millis(1))
            .trace(TRACE_CAPACITY)
            .seed(23)
            .build();
        let run = WorkloadRun::new(cfg, 230 + (ro * 100.0) as u64);
        let report = run.open_loop(&mut cluster, 25, SimDuration::from_millis(3));
        assert!(report.quiesced, "{proto}@{ro} did not quiesce");
        assert!(report.all_terminated(), "{proto}@{ro} wedged transactions");
        cluster
            .check_serializability()
            .unwrap_or_else(|v| panic!("{proto}: {v}"));
        check_traced_run(&cluster, &format!("{proto}@ro{ro}"));
        let m = report.metrics;
        let cells = vec![
            format!("{ro:.2}"),
            proto.name().to_string(),
            m.commits().to_string(),
            m.counters.get("commits_readonly").to_string(),
            m.aborts().to_string(),
            m.counters.get("aborts_readonly").to_string(),
            format!("{:.3}", m.readonly_latency.mean().as_millis_f64()),
            f2(report.throughput_tps),
        ];
        (cells, cluster.events_processed())
    });
    let mut events = 0u64;
    for (cells, ev) in &outcome.results {
        table.row_strings(cells);
        events += ev;
    }
    table.emit();
    println!(
        "\nGuarantee check: in the reliable and causal protocols every submitted\n\
         read-only transaction commits; only the atomic protocol trades read-only\n\
         stability for acknowledgement-free commitment."
    );
    let mut ledger = Ledger::new();
    ledger.record("f5_readonly", &outcome, events);
    ledger.finish();
}
