//! **F4 — The causal protocol's implicit-acknowledgement latency.**
//!
//! The paper's own caveat about §4: "the causal broadcast protocol with
//! implicit positive acknowledgment ... is most appropriate for situations
//! where all sites broadcast messages fairly frequently; otherwise the wait
//! for 'implicit' acknowledgments can become a drawback resulting in
//! substantial delays for transaction commitment."
//!
//! Two sweeps quantify that:
//!
//! 1. **Background traffic density** (null messages off): commit latency of
//!    a sparse probe stream as unrelated update traffic gets denser.
//!    Latency tracks the traffic gap.
//! 2. **Null-message period** (the paper's mitigation): commit latency on a
//!    quiet cluster as a function of the keep-alive period. Latency tracks
//!    the tick.
//!
//! Each row carries the per-phase message breakdown: the `ack` column is
//! where the keep-alive nulls land, making the implicit-acknowledgement
//! cost directly visible next to the latency it buys. The `seg_*_ms`
//! columns decompose the commit latency from the reconstructed spans —
//! the implicit-acknowledgement wait is the `seg_votes_ms` share, and it
//! shrinks as traffic densifies or the keep-alive tick tightens.
//!
//! All three series run as one sweep on `BCASTDB_JOBS` worker threads;
//! rows are assembled in series order, so the output is byte-identical
//! at any job count.

use bcastdb_bench::{
    check_traced_run, check_traced_run_allowing_pending, phase_cells, phase_headers, segment_cells,
    segment_headers, Ledger, Sweep, Table, TRACE_CAPACITY,
};
use bcastdb_core::TxnSpec;
use bcastdb_core::{Cluster, ProtocolKind};
use bcastdb_sim::telemetry::summarize;
use bcastdb_sim::{SimDuration, SimTime, SiteId};
use bcastdb_workload::{WorkloadConfig, WorkloadRun};

/// One probe-latency measurement: which series, and its swept parameter.
#[derive(Debug, Clone, Copy)]
enum Probe {
    /// Background traffic with the given submission gap, keep-alives off.
    TrafficGap { gap_ms: u64 },
    /// Quiet cluster, keep-alives on with the given period.
    NullPeriod { tick_ms: u64 },
    /// The reliable protocol's explicit votes on the same quiet cluster.
    ReliableReference,
}

/// Submits ten spread-out probe transactions at site 0, drains the
/// cluster, and returns the finished table row.
fn probe(cluster: &mut Cluster, label: &str, x: String, allow_pending: bool) -> (Vec<String>, u64) {
    // Ten probe transactions spread out at site 0, no key overlap with
    // background traffic.
    let mut ids = Vec::new();
    for i in 0..10u64 {
        let at = SimTime::from_micros(5_000 + i * 50_000);
        ids.push(cluster.submit_at(
            at,
            SiteId(0),
            TxnSpec::new().write(format!("probe{i}").as_str(), i as i64),
        ));
    }
    cluster.run_to_quiescence();
    if allow_pending {
        // With keep-alives off a probe past the background traffic's end
        // never hears its implicit acks — the wedged commit is the data
        // point, not a harness bug.
        check_traced_run_allowing_pending(cluster, &format!("{label}@{x}"));
    } else {
        check_traced_run(cluster, &format!("{label}@{x}"));
    }
    let m = cluster.metrics();
    let committed = ids.iter().filter(|t| cluster.is_committed(**t)).count();
    let mut cells = vec![
        label.to_string(),
        x,
        committed.to_string(),
        format!("{:.3}", m.update_latency.mean().as_millis_f64()),
        format!("{:.3}", m.update_latency.p95().as_millis_f64()),
    ];
    cells.extend(phase_cells(&cluster.phase_counts()));
    cells.extend(segment_cells(&summarize(cluster.txn_spans().values())));
    (cells, cluster.events_processed())
}

fn run_probe(cfg: &Probe) -> (Vec<String>, u64) {
    match *cfg {
        Probe::TrafficGap { gap_ms } => {
            let mut cluster = Cluster::builder()
                .sites(5)
                .protocol(ProtocolKind::CausalBcast)
                .null_messages(false)
                .trace(TRACE_CAPACITY)
                .seed(17)
                .build();
            // Background: steady unrelated updates from sites 1..4.
            let cfg = WorkloadConfig {
                n_keys: 2000,
                theta: 0.0,
                reads_per_txn: 0,
                writes_per_txn: 1,
                ..WorkloadConfig::default()
            };
            let run = WorkloadRun::new(cfg, 170 + gap_ms);
            // Schedule background first (probe shares the cluster run).
            let zipf = run.config.sampler();
            let mut rng = bcastdb_sim::DetRng::new(run.seed);
            for site in 1..5 {
                let mut at = SimTime::ZERO;
                let mut site_rng = rng.fork(site as u64);
                for _ in 0..40 {
                    at += SimDuration::from_millis(gap_ms);
                    let spec = run.config.gen_txn(&zipf, &mut site_rng);
                    cluster.submit_at(at, SiteId(site), spec);
                }
            }
            probe(
                &mut cluster,
                "traffic-gap(nulls-off)",
                format!("{gap_ms}ms"),
                true,
            )
        }
        Probe::NullPeriod { tick_ms } => {
            let mut cluster = Cluster::builder()
                .sites(5)
                .protocol(ProtocolKind::CausalBcast)
                .tick_every(SimDuration::from_millis(tick_ms))
                .trace(TRACE_CAPACITY)
                .seed(18)
                .build();
            probe(
                &mut cluster,
                "null-period(quiet)",
                format!("{tick_ms}ms"),
                false,
            )
        }
        Probe::ReliableReference => {
            // Reference: the reliable protocol's explicit votes on the same
            // quiet cluster (its latency does not depend on traffic at all).
            let mut cluster = Cluster::builder()
                .sites(5)
                .protocol(ProtocolKind::ReliableBcast)
                .trace(TRACE_CAPACITY)
                .seed(19)
                .build();
            probe(&mut cluster, "reliable-reference", "-".into(), false)
        }
    }
}

fn main() {
    let mut headers: Vec<String> = ["series", "x", "probe_commits", "mean_ms", "p95_ms"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    headers.extend(phase_headers().iter().map(|s| s.to_string()));
    headers.extend(segment_headers());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new("f4_implicit_ack", &header_refs);

    let mut configs = Vec::new();
    for gap_ms in [2u64, 5, 10, 20, 50] {
        configs.push(Probe::TrafficGap { gap_ms });
    }
    for tick_ms in [1u64, 2, 5, 10, 20, 50] {
        configs.push(Probe::NullPeriod { tick_ms });
    }
    configs.push(Probe::ReliableReference);

    let outcome = Sweep::from_env().run(configs, run_probe);
    let mut events = 0u64;
    for (cells, ev) in &outcome.results {
        table.row_strings(cells);
        events += ev;
    }
    table.emit();
    let mut ledger = Ledger::new();
    ledger.record("f4_implicit_ack", &outcome, events);
    ledger.finish();
}
