//! **chaos — randomized packet-fault campaign with automatic shrinking.**
//!
//! VOPR-style robustness testing: generate hundreds of random fault
//! plans (duplication, reordering, burst loss / gray links, delay
//! spikes, probabilistic drops — see [`bcastdb_bench::faultplan`]) and
//! replay each against every protocol configuration of the chaos matrix
//! ([`ChaosCell::ALL`]: the four paper protocols plus the ring
//! atomic-broadcast backend). Every run drives a seeded Zipf workload
//! and is validated four ways:
//!
//! 1. the streaming trace invariant checker (delivery, exactly-once
//!    termination, total order);
//! 2. a `has_undecided` sweep at the deadline (liveness under faults);
//! 3. replica convergence (all stores byte-identical);
//! 4. one-copy serializability across all sites.
//!
//! A run is fully determined by `(seed, cell)`; on a violation the
//! failing plan is **shrunk** — clauses bisected away, then windows
//! halved, re-running the cell each time — and a one-line repro is
//! printed:
//!
//! ```text
//! BCASTDB_CHAOS_SEED=17 cargo run --release --bin chaos -- --replay 'causal|drop(0.25)@1>2@0..600000'
//! ```
//!
//! Runs execute on `BCASTDB_JOBS` workers; rows are assembled in config
//! order, so stdout is byte-identical at any job count.
//!
//! Usage:
//!
//! ```text
//! chaos [--seeds N]            campaign over seeds BASE..BASE+N (BASE from
//!                              BCASTDB_CHAOS_SEED, default 1) x all cells
//! chaos --replay 'CELL|PLAN'   one run: the given plan against CELL, with
//!                              the cluster seed from BCASTDB_CHAOS_SEED
//! ```
//!
//! With `BCASTDB_CHAOS_ARTIFACTS=<dir>` every shrunk failing plan is
//! also written to `<dir>/<cell>-<seed>.plan` (CI uploads these).

use bcastdb_bench::faultplan::{gen_plan, parse_plan, plan_to_string, shrink_plan, ChaosCell};
use bcastdb_bench::{Ledger, Sweep, Table, TRACE_CAPACITY};
use bcastdb_core::Cluster;
use bcastdb_sim::{DetRng, FaultPlan, SimDuration, SimTime, SiteId};
use bcastdb_workload::WorkloadConfig;

/// Sites per chaos cluster.
const SITES: usize = 4;
/// Load window: submissions stop here, and generated fault windows all
/// start inside it.
const HORIZON: SimDuration = SimDuration::from_millis(600);
/// Hard deadline: every transaction must be decided by now — generated
/// faults are all over by ~1.5x [`HORIZON`], leaving recovery time.
const DEADLINE: SimTime = SimTime::from_micros(3_000_000);
/// Cap on shrinking re-runs per failing plan.
const SHRINK_BUDGET: usize = 64;

/// What one `(seed, cell)` run produced.
struct CellRun {
    violations: Vec<String>,
    commits: u64,
    aborts: u64,
    duplicated: u64,
    reordered: u64,
    burst_dropped: u64,
    loss_dropped: u64,
    events: u64,
}

/// Replays `plan` against `cell` with the cluster seeded from `seed`,
/// and validates the execution. Never panics on a violation — the
/// shrinker needs to re-run failing plans.
fn run_cell(cell: ChaosCell, seed: u64, plan: &FaultPlan) -> CellRun {
    let mut builder = Cluster::builder()
        .sites(SITES)
        .protocol(cell.protocol())
        .seed(seed)
        .trace(TRACE_CAPACITY)
        .fault_plan(plan.clone());
    if cell.relay() {
        builder = builder.relay(true).retransmit_backoff(true);
    }
    if let Some(imp) = cell.abcast() {
        builder = builder.abcast(imp);
    }
    let mut cluster = builder.build();

    let wl = WorkloadConfig {
        n_keys: 300,
        theta: 0.5,
        reads_per_txn: 1,
        writes_per_txn: 2,
        ..WorkloadConfig::default()
    };
    let zipf = wl.sampler();
    let mut rng = DetRng::new(seed ^ 0x9e3779b9).fork(cell as u64);
    // One update transaction per site every 15 ms across the load
    // window, each site on its own forked stream.
    for site in 0..SITES {
        let mut site_rng = rng.fork(site as u64);
        let mut at = SimTime::from_micros(1_000);
        while at.as_micros() < HORIZON.as_micros() {
            cluster.submit_at(at, SiteId(site), wl.gen_txn(&zipf, &mut site_rng));
            at += SimDuration::from_millis(15);
        }
    }
    cluster.run_until(DEADLINE);

    let mut violations = Vec::new();
    if let Err(v) = cluster.check_trace_invariants() {
        violations.push(format!("trace invariant: {v}"));
    }
    for site in 0..SITES {
        if cluster.replica(SiteId(site)).state().has_undecided() {
            violations.push(format!("site {site} still undecided at {DEADLINE}"));
        }
    }
    if !cluster.replicas_converged() {
        violations.push("replicas diverged".to_string());
    }
    let all: Vec<SiteId> = (0..SITES).map(SiteId).collect();
    if let Err(v) = cluster.check_serializability_among(&all) {
        violations.push(format!("not one-copy serializable: {v:?}"));
    }

    let metrics = cluster.metrics();
    let net = cluster.network();
    CellRun {
        violations,
        commits: metrics.commits(),
        aborts: metrics.aborts(),
        duplicated: net.messages_duplicated(),
        reordered: net.messages_reordered(),
        burst_dropped: net.drop_breakdown().burst,
        loss_dropped: net.drop_breakdown().loss,
        events: cluster.events_processed(),
    }
}

/// One campaign row: the run plus, on failure, the shrunk plan.
struct Outcome {
    cell: ChaosCell,
    seed: u64,
    plan: FaultPlan,
    run: CellRun,
    shrunk: Option<(FaultPlan, usize)>,
}

fn run_campaign_cell(cell: ChaosCell, seed: u64) -> Outcome {
    let plan = gen_plan(seed, cell, SITES, HORIZON);
    let run = run_cell(cell, seed, &plan);
    let shrunk = (!run.violations.is_empty()).then(|| {
        shrink_plan(&plan, SHRINK_BUDGET, |cand| {
            !run_cell(cell, seed, cand).violations.is_empty()
        })
    });
    Outcome {
        cell,
        seed,
        plan,
        run,
        shrunk,
    }
}

fn replay(arg: &str) -> ! {
    let (cell_s, plan_s) = arg
        .split_once('|')
        .unwrap_or_else(|| die(&format!("--replay wants 'CELL|PLAN', got {arg:?}")));
    let cell = ChaosCell::parse(cell_s).unwrap_or_else(|| {
        die(&format!(
            "unknown cell {cell_s:?} (one of: p2p, reliable, causal, atomic-seq, atomic-ring)"
        ))
    });
    let plan = parse_plan(plan_s).unwrap_or_else(|e| die(&e));
    let seed = base_seed();
    println!(
        "replay: cell={cell} seed={seed} plan={}",
        plan_to_string(&plan)
    );
    let run = run_cell(cell, seed, &plan);
    println!(
        "commits={} aborts={} dup={} reordered={} burst_dropped={} loss_dropped={}",
        run.commits, run.aborts, run.duplicated, run.reordered, run.burst_dropped, run.loss_dropped
    );
    if run.violations.is_empty() {
        println!("ok: all invariants hold");
        std::process::exit(0);
    }
    for v in &run.violations {
        println!("VIOLATION: {v}");
    }
    std::process::exit(1);
}

fn die(msg: &str) -> ! {
    eprintln!("chaos: {msg}");
    std::process::exit(2);
}

fn base_seed() -> u64 {
    std::env::var("BCASTDB_CHAOS_SEED")
        .ok()
        .map(|s| {
            s.parse()
                .unwrap_or_else(|_| die(&format!("BCASTDB_CHAOS_SEED={s:?} is not a u64")))
        })
        .unwrap_or(1)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seeds = 25u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seeds" => {
                i += 1;
                seeds = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seeds wants a count"));
            }
            "--replay" => {
                i += 1;
                let arg = args
                    .get(i)
                    .unwrap_or_else(|| die("--replay wants 'CELL|PLAN'"));
                replay(arg);
            }
            other => die(&format!("unknown argument {other:?}")),
        }
        i += 1;
    }

    let base = base_seed();
    let configs: Vec<(u64, ChaosCell)> = (base..base + seeds)
        .flat_map(|seed| ChaosCell::ALL.into_iter().map(move |cell| (seed, cell)))
        .collect();
    let outcome = Sweep::from_env().run(configs, |&(seed, cell)| run_campaign_cell(cell, seed));

    // Per-cell aggregate rows, in campaign order.
    let mut table = Table::new(
        "chaos",
        &[
            "cell",
            "seeds",
            "clauses",
            "commits",
            "aborts",
            "dup",
            "reordered",
            "burst_dropped",
            "loss_dropped",
            "violations",
        ],
    );
    let mut events = 0u64;
    let mut failures: Vec<&Outcome> = Vec::new();
    for cell in ChaosCell::ALL {
        let mut agg = (0u64, 0u64, 0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
        for o in outcome.results.iter().filter(|o| o.cell == cell) {
            agg.0 += o.plan.clauses.len() as u64;
            agg.1 += o.run.commits;
            agg.2 += o.run.aborts;
            agg.3 += o.run.duplicated;
            agg.4 += o.run.reordered;
            agg.5 += o.run.burst_dropped;
            agg.6 += o.run.loss_dropped;
            agg.7 += o.run.violations.len() as u64;
            events += o.run.events;
            if !o.run.violations.is_empty() {
                failures.push(o);
            }
        }
        table.row_strings(&[
            cell.name().to_string(),
            seeds.to_string(),
            agg.0.to_string(),
            agg.1.to_string(),
            agg.2.to_string(),
            agg.3.to_string(),
            agg.4.to_string(),
            agg.5.to_string(),
            agg.6.to_string(),
            agg.7.to_string(),
        ]);
    }
    table.emit();

    let artifacts = std::env::var("BCASTDB_CHAOS_ARTIFACTS").ok();
    for o in &failures {
        let (shrunk, shrink_runs) = o.shrunk.as_ref().expect("failures carry a shrunk plan");
        let text = plan_to_string(shrunk);
        println!();
        println!(
            "VIOLATION cell={} seed={} (plan of {} clauses shrunk to {} in {} re-runs)",
            o.cell,
            o.seed,
            o.plan.clauses.len(),
            shrunk.clauses.len(),
            shrink_runs
        );
        for v in &o.run.violations {
            println!("  - {v}");
        }
        println!(
            "  repro: BCASTDB_CHAOS_SEED={} cargo run --release --bin chaos -- --replay '{}|{text}'",
            o.seed, o.cell
        );
        if let Some(dir) = &artifacts {
            let _ = std::fs::create_dir_all(dir);
            let path = format!("{dir}/{}-{}.plan", o.cell, o.seed);
            if let Err(e) = std::fs::write(&path, format!("{}|{text}\n", o.cell)) {
                eprintln!("chaos: writing {path}: {e}");
            }
        }
    }
    println!();
    println!(
        "chaos: {} runs ({} seeds x {} cells), {} violations",
        outcome.results.len(),
        seeds,
        ChaosCell::ALL.len(),
        failures.len()
    );

    let mut ledger = Ledger::new();
    ledger.record("chaos", &outcome, events);
    ledger.finish();
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
