//! **T3 — Where does commit latency go, per protocol.**
//!
//! Reconstructs per-transaction spans from the trace of a fixed workload
//! and decomposes every committed update's latency into the five segments
//! (read / disseminate / order_wait / votes / decide), per protocol. This
//! is the per-phase story behind figure F1: the point-to-point baseline's
//! time sits in `disseminate` (per-operation ack round trips), the
//! reliable protocol's in the vote round, the causal protocol's in the
//! implicit-acknowledgement wait, and the atomic protocol's in the
//! ordering wait.
//!
//! The decomposition is exact: for every committed update transaction the
//! five segments sum to the end-to-end latency in `Metrics`, to the
//! microsecond (asserted here on every run, and by the tier-1 test
//! `tests/span_decomposition.rs`).
//!
//! With `--trace-out <base.jsonl>` (or `BCASTDB_TRACE_OUT`), each
//! protocol's full trace is written to `<base>-<protocol>.jsonl` for
//! `bcast-trace` to consume. With `--metrics-out <base.jsonl>` (or
//! `BCASTDB_METRICS_OUT`), the deterministic metrics sampler runs at a
//! 1 ms virtual-time interval and each protocol's samples land in
//! `<base>-<protocol>.jsonl` — feed both to `bcast-trace export` for a
//! Perfetto view of the run.
//!
//! The per-protocol runs execute on `BCASTDB_JOBS` worker threads; rows
//! are assembled in protocol order, so the output is byte-identical at
//! any job count.

use bcastdb_bench::{
    check_traced_run, f2, metrics_out_path, segment_cells, segment_headers, trace_out_for,
    trace_out_path, Ledger, Sweep, Table, TRACE_CAPACITY,
};
use bcastdb_core::{Cluster, ProtocolKind};
use bcastdb_sim::telemetry::summarize;
use bcastdb_sim::SimDuration;
use bcastdb_workload::{WorkloadConfig, WorkloadRun};

fn main() {
    let cfg = WorkloadConfig {
        n_keys: 1000,
        theta: 0.6,
        reads_per_txn: 2,
        writes_per_txn: 2,
        readonly_fraction: 0.0,
        ..WorkloadConfig::default()
    };
    let trace_out = trace_out_path();
    let metrics_out = metrics_out_path();
    let mut headers: Vec<String> = ["protocol", "commits"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    headers.extend(segment_headers());
    headers.extend(
        ["mean_ms", "p95_ms", "dominant"]
            .iter()
            .map(|s| s.to_string()),
    );
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new("t3_latency_breakdown", &header_refs);

    let outcome = Sweep::from_env().run(ProtocolKind::ALL.to_vec(), |&proto| {
        let mut builder = Cluster::builder()
            .sites(5)
            .protocol(proto)
            .trace(TRACE_CAPACITY)
            .seed(23);
        if let Some(base) = &trace_out {
            builder = builder.trace_jsonl(trace_out_for(base, proto.name()));
        }
        if let Some(base) = &metrics_out {
            builder = builder.metrics_jsonl(trace_out_for(base, proto.name()));
        }
        let mut cluster = builder.build();
        let run = WorkloadRun::new(cfg.clone(), 230);
        let report = run.open_loop(&mut cluster, 40, SimDuration::from_millis(15));
        assert!(report.quiesced, "{proto} did not quiesce");
        assert!(report.all_terminated(), "{proto} wedged transactions");
        cluster.check_serializability().expect("serializable");
        check_traced_run(&cluster, proto.name());

        let spans = cluster.txn_spans();
        let summary = summarize(spans.values());

        // The whole point of the decomposition: per transaction, the five
        // segments sum exactly to the latency the metrics layer recorded.
        let mut span_totals: Vec<u64> = spans
            .values()
            .filter(|s| !s.read_only)
            .filter_map(|s| s.decompose())
            .map(|b| b.total().as_micros())
            .collect();
        let mut recorded: Vec<u64> = report.metrics.update_latency.samples().to_vec();
        span_totals.sort_unstable();
        recorded.sort_unstable();
        assert_eq!(
            span_totals, recorded,
            "{proto}: segment sums must equal recorded end-to-end latencies"
        );

        // Dominant segment of the mean breakdown (largest mean segment).
        let dominant = bcastdb_sim::telemetry::Segment::ALL
            .iter()
            .max_by_key(|s| summary.segment(**s).mean().as_micros())
            .expect("nonempty");
        let mut cells = vec![proto.name().to_string(), summary.count().to_string()];
        cells.extend(segment_cells(&summary));
        cells.push(f2(summary.end_to_end.mean().as_millis_f64()));
        cells.push(f2(summary.end_to_end.p95().as_millis_f64()));
        cells.push(dominant.name().to_string());

        if trace_out.is_some() {
            let lines = cluster.finish_trace_jsonl().expect("trace flush");
            eprintln!("[t3] {}: {} trace events written", proto.name(), lines);
        }
        if metrics_out.is_some() {
            let samples = cluster.finish_metrics_jsonl().expect("metrics flush");
            eprintln!("[t3] {}: {} metrics samples written", proto.name(), samples);
        }
        (cells, cluster.events_processed())
    });
    let mut events = 0u64;
    for (cells, ev) in &outcome.results {
        table.row_strings(cells);
        events += ev;
    }
    table.emit();
    let mut ledger = Ledger::new();
    ledger.record("t3_latency_breakdown", &outcome, events);
    ledger.finish();
}
