//! **A2 (ablation) — Wound-wait vs wait-die in the reliable protocol.**
//!
//! The §3 protocol prevents deadlock with a priority scheme; this ablation
//! compares the two classical choices under rising contention. Expected
//! shape: wait-die aborts more (every younger requester dies immediately)
//! but keeps latencies slightly lower; wound-wait aborts fewer and favours
//! old transactions.
//!
//! The `(keys, policy)` sweep runs on `BCASTDB_JOBS` worker threads; rows
//! are assembled in config order, so the output is byte-identical at any
//! job count.

use bcastdb_bench::{check_traced_run, f2, Ledger, Sweep, Table, TRACE_CAPACITY};
use bcastdb_core::{Cluster, ConflictPolicy, ProtocolKind};
use bcastdb_sim::SimDuration;
use bcastdb_workload::{WorkloadConfig, WorkloadRun};

fn main() {
    let mut table = Table::new(
        "a2_conflict_policy",
        &[
            "keys",
            "policy",
            "commits",
            "aborts",
            "abort_rate",
            "mean_ms",
        ],
    );
    let mut configs = Vec::new();
    for n_keys in [200usize, 50, 20, 10, 5] {
        for (name, policy) in [
            ("wound-wait", ConflictPolicy::WoundWait),
            ("wait-die", ConflictPolicy::WaitDie),
        ] {
            configs.push((n_keys, name, policy));
        }
    }
    let outcome = Sweep::from_env().run(configs, |&(n_keys, name, policy)| {
        let cfg = WorkloadConfig {
            n_keys,
            theta: 0.8,
            reads_per_txn: 1,
            writes_per_txn: 2,
            ..WorkloadConfig::default()
        };
        let mut cluster = Cluster::builder()
            .sites(5)
            .protocol(ProtocolKind::ReliableBcast)
            .policy(policy)
            .trace(TRACE_CAPACITY)
            .seed(31)
            .build();
        let run = WorkloadRun::new(cfg, 310 + n_keys as u64);
        let report = run.open_loop(&mut cluster, 20, SimDuration::from_millis(4));
        assert!(report.quiesced, "{name}@{n_keys} did not quiesce");
        assert!(
            report.all_terminated(),
            "{name}@{n_keys} wedged transactions"
        );
        cluster.check_serializability().expect("serializable");
        check_traced_run(&cluster, &format!("{name}@{n_keys}"));
        let m = report.metrics;
        let cells = vec![
            n_keys.to_string(),
            name.to_string(),
            m.commits().to_string(),
            m.aborts().to_string(),
            f2(m.abort_rate()),
            format!("{:.3}", m.update_latency.mean().as_millis_f64()),
        ];
        (cells, cluster.events_processed())
    });
    let mut events = 0u64;
    for (cells, ev) in &outcome.results {
        table.row_strings(cells);
        events += ev;
    }
    table.emit();
    let mut ledger = Ledger::new();
    ledger.record("a2_conflict_policy", &outcome, events);
    ledger.finish();
}
