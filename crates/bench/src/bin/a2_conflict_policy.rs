//! **A2 (ablation) — Wound-wait vs wait-die in the reliable protocol.**
//!
//! The §3 protocol prevents deadlock with a priority scheme; this ablation
//! compares the two classical choices under rising contention. Expected
//! shape: wait-die aborts more (every younger requester dies immediately)
//! but keeps latencies slightly lower; wound-wait aborts fewer and favours
//! old transactions.

use bcastdb_bench::{check_traced_run, f2, Table, TRACE_CAPACITY};
use bcastdb_core::{Cluster, ConflictPolicy, ProtocolKind};
use bcastdb_sim::SimDuration;
use bcastdb_workload::{WorkloadConfig, WorkloadRun};

fn main() {
    let mut table = Table::new(
        "a2_conflict_policy",
        &[
            "keys",
            "policy",
            "commits",
            "aborts",
            "abort_rate",
            "mean_ms",
        ],
    );
    for n_keys in [200usize, 50, 20, 10, 5] {
        let cfg = WorkloadConfig {
            n_keys,
            theta: 0.8,
            reads_per_txn: 1,
            writes_per_txn: 2,
            ..WorkloadConfig::default()
        };
        for (name, policy) in [
            ("wound-wait", ConflictPolicy::WoundWait),
            ("wait-die", ConflictPolicy::WaitDie),
        ] {
            let mut cluster = Cluster::builder()
                .sites(5)
                .protocol(ProtocolKind::ReliableBcast)
                .policy(policy)
                .trace(TRACE_CAPACITY)
                .seed(31)
                .build();
            let run = WorkloadRun::new(cfg.clone(), 310 + n_keys as u64);
            let report = run.open_loop(&mut cluster, 20, SimDuration::from_millis(4));
            assert!(report.quiesced, "{name}@{n_keys} did not quiesce");
            assert!(
                report.all_terminated(),
                "{name}@{n_keys} wedged transactions"
            );
            cluster.check_serializability().expect("serializable");
            check_traced_run(&cluster, &format!("{name}@{n_keys}"));
            let m = report.metrics;
            table.row(&[
                &n_keys,
                &name,
                &m.commits(),
                &m.aborts(),
                &f2(m.abort_rate()),
                &format!("{:.3}", m.update_latency.mean().as_millis_f64()),
            ]);
        }
    }
    table.emit();
}
