//! **Profiling driver** — runs one t2-style crash scenario in a loop so a
//! sampling profiler has something to sample.
//!
//! A single experiment finishes in tens of milliseconds, which is below
//! the useful resolution of `gprofng collect app` (~10 ms sampling
//! period): profiling the real binaries yields a handful of samples and
//! an empty report. This driver repeats one scenario long enough for the
//! profile to converge:
//!
//! ```text
//! cargo build --release --workspace
//! gprofng collect app -o /tmp/prof.er ./target/release/profile_loop causal 200
//! gprofng display text -functions /tmp/prof.er | head -40
//! ```
//!
//! Usage: `profile_loop [reliable|causal|atomic] [iterations]`
//! (defaults: `causal`, 100). The scenario is identical to the matching
//! `t2_failures` crash run (minus tracing), so what this profiles is what
//! that experiment's wall-clock measures. See PERFORMANCE.md,
//! "Profiling".

use bcastdb_bench::scenarios::crash_scenario;
use bcastdb_core::ProtocolKind;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let proto = match args.next().as_deref() {
        None | Some("causal") => ProtocolKind::CausalBcast,
        Some("reliable") => ProtocolKind::ReliableBcast,
        Some("atomic") => ProtocolKind::AtomicBcast,
        Some(other) => {
            eprintln!("unknown protocol {other:?}: use reliable|causal|atomic");
            std::process::exit(2);
        }
    };
    let iters: u64 = args
        .next()
        .map(|s| s.parse().expect("iterations must be a number"))
        .unwrap_or(100);

    let started = Instant::now();
    let mut events = 0u64;
    for _ in 0..iters {
        events += crash_scenario(proto);
    }
    let wall = started.elapsed();
    eprintln!(
        "{proto}: {iters} iterations, {events} events, {:.1} ms, {:.0} events/s",
        wall.as_secs_f64() * 1e3,
        events as f64 / wall.as_secs_f64()
    );
}
