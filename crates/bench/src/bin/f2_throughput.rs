//! **F2 — Throughput vs multiprogramming level.**
//!
//! Closed-loop: every site runs `MPL` clients, each submitting its next
//! transaction the moment the previous one terminates. Committed
//! transactions per virtual second, for all four protocols on a 5-site
//! cluster. Expected shape: throughput rises with MPL until contention
//! (and, for the baseline, per-operation ack round trips) flattens it;
//! the atomic protocol peaks highest, the baseline lowest.
//!
//! Commits are also bucketed into a per-run time series
//! ([`bcastdb_sim::trace::TimeSeries`], 50 ms windows): the
//! `win_commits_*` columns show how commit throughput ramps over the run
//! and `peak_tps` is the busiest window's rate — the sustained-vs-burst
//! distinction a single `tps` number hides.
//!
//! The `(mpl, protocol)` sweep runs on `BCASTDB_JOBS` worker threads;
//! rows are assembled in config order, so the output is byte-identical
//! at any job count (progress lines on stderr may interleave).

use bcastdb_bench::{check_traced_run, f2, Ledger, Sweep, Table, TRACE_CAPACITY};
use bcastdb_core::{Cluster, ProtocolKind};
use bcastdb_sim::SimDuration;
use bcastdb_workload::{WorkloadConfig, WorkloadRun};

/// Commit time-series bucket width.
const WINDOW_MS: u64 = 50;
/// How many leading windows get their own CSV column.
const SHOWN_WINDOWS: usize = 4;

fn main() {
    let cfg = WorkloadConfig {
        n_keys: 500,
        theta: 0.8,
        reads_per_txn: 2,
        writes_per_txn: 2,
        readonly_fraction: 0.2,
        ..WorkloadConfig::default()
    };
    let mut headers: Vec<String> = ["mpl", "protocol", "commits", "aborts", "tps", "mean_lat_ms"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    for i in 0..SHOWN_WINDOWS {
        headers.push(format!("win_commits_{i}"));
    }
    headers.push("peak_tps".to_string());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new("f2_throughput", &header_refs);
    let mut configs = Vec::new();
    for mpl in [1usize, 2, 4, 8, 16] {
        for proto in ProtocolKind::ALL {
            configs.push((mpl, proto));
        }
    }
    let outcome = Sweep::from_env().run(configs, |&(mpl, proto)| {
        eprintln!("[f2] mpl={mpl} protocol={}", proto.name());
        let mut cluster = Cluster::builder()
            .sites(5)
            .protocol(proto)
            .trace(TRACE_CAPACITY)
            .commit_window(SimDuration::from_millis(WINDOW_MS))
            .seed(11)
            .build();
        let run = WorkloadRun::new(cfg.clone(), 110 + mpl as u64);
        let report = run.closed_loop(&mut cluster, mpl, 12);
        assert!(report.quiesced, "{proto}@mpl{mpl} did not drain");
        assert!(
            report.all_terminated(),
            "{proto}@mpl{mpl} wedged transactions"
        );
        cluster
            .check_serializability()
            .unwrap_or_else(|v| panic!("{proto}: {v}"));
        check_traced_run(&cluster, &format!("{proto}@mpl{mpl}"));
        let m = report.metrics;
        let series = m
            .commit_series
            .as_ref()
            .unwrap_or_else(|| panic!("{proto}@mpl{mpl}: commit series not recorded"));
        assert_eq!(
            series.total(),
            m.commits(),
            "{proto}@mpl{mpl}: commit series must account for every commit"
        );
        let buckets = series.buckets();
        let peak_tps = series
            .peak()
            .map(|(_, c)| c as f64 * 1000.0 / WINDOW_MS as f64)
            .unwrap_or(0.0);
        let mut cells = vec![
            mpl.to_string(),
            proto.name().to_string(),
            m.commits().to_string(),
            m.aborts().to_string(),
            f2(report.throughput_tps),
            format!("{:.3}", m.update_latency.mean().as_millis_f64()),
        ];
        for i in 0..SHOWN_WINDOWS {
            cells.push(buckets.get(i).copied().unwrap_or(0).to_string());
        }
        cells.push(f2(peak_tps));
        (cells, cluster.events_processed())
    });
    let mut events = 0u64;
    for (cells, ev) in &outcome.results {
        table.row_strings(cells);
        events += ev;
    }
    table.emit();
    let mut ledger = Ledger::new();
    ledger.record("f2_throughput", &outcome, events);
    ledger.finish();
}
