//! **F2 — Throughput vs multiprogramming level.**
//!
//! Closed-loop: every site runs `MPL` clients, each submitting its next
//! transaction the moment the previous one terminates. Committed
//! transactions per virtual second, for all four protocols on a 5-site
//! cluster. Expected shape: throughput rises with MPL until contention
//! (and, for the baseline, per-operation ack round trips) flattens it;
//! the atomic protocol peaks highest, the baseline lowest.

use bcastdb_bench::{check_traced_run, f2, Table, TRACE_CAPACITY};
use bcastdb_core::{Cluster, ProtocolKind};
use bcastdb_workload::{WorkloadConfig, WorkloadRun};

fn main() {
    let cfg = WorkloadConfig {
        n_keys: 500,
        theta: 0.8,
        reads_per_txn: 2,
        writes_per_txn: 2,
        readonly_fraction: 0.2,
        ..WorkloadConfig::default()
    };
    let mut table = Table::new(
        "f2_throughput",
        &["mpl", "protocol", "commits", "aborts", "tps", "mean_lat_ms"],
    );
    for mpl in [1usize, 2, 4, 8, 16] {
        for proto in ProtocolKind::ALL {
            eprintln!("[f2] mpl={mpl} protocol={}", proto.name());
            let mut cluster = Cluster::builder()
                .sites(5)
                .protocol(proto)
                .trace(TRACE_CAPACITY)
                .seed(11)
                .build();
            let run = WorkloadRun::new(cfg.clone(), 110 + mpl as u64);
            let report = run.closed_loop(&mut cluster, mpl, 12);
            assert!(report.quiesced, "{proto}@mpl{mpl} did not drain");
            assert!(
                report.all_terminated(),
                "{proto}@mpl{mpl} wedged transactions"
            );
            cluster
                .check_serializability()
                .unwrap_or_else(|v| panic!("{proto}: {v}"));
            check_traced_run(&cluster, &format!("{proto}@mpl{mpl}"));
            let m = report.metrics;
            table.row(&[
                &mpl,
                &proto.name(),
                &m.commits(),
                &m.aborts(),
                &f2(report.throughput_tps),
                &format!("{:.3}", m.update_latency.mean().as_millis_f64()),
            ]);
        }
    }
    table.emit();
}
