//! **T2 — Behaviour under site failure.**
//!
//! The paper's fault-tolerance story: "as long as the view has majority
//! membership, the system remains operational." This experiment crashes a
//! replica mid-run under each broadcast protocol and reports
//!
//! - commits before the crash,
//! - the view-change delay (crash → last survivor installs the new view),
//! - in-flight transactions aborted by the view change,
//! - commits after the crash (the majority keeps going),
//! - and the blocked state of a minority partition.
//!
//! The per-protocol crash scenarios (and the minority-partition run) are
//! independent clusters and execute on `BCASTDB_JOBS` worker threads;
//! rows are assembled in scenario order, so the output is byte-identical
//! at any job count.

use bcastdb_bench::{check_traced_run, Ledger, Sweep, Table, TRACE_CAPACITY};
use bcastdb_core::{Cluster, ProtocolKind};
use bcastdb_sim::DetRng;
use bcastdb_sim::{SimDuration, SimTime, SiteId};
use bcastdb_workload::WorkloadConfig;

const N: usize = 5;
const CRASH_AT_US: u64 = 200_000;

/// Crashes site `N-1` mid-run under `proto` and returns the table row.
fn crash_run(proto: ProtocolKind) -> (Vec<String>, u64) {
    let mut cluster = Cluster::builder()
        .sites(N)
        .protocol(proto)
        .seed(37)
        .membership(true)
        .suspect_after(SimDuration::from_millis(60))
        .trace(TRACE_CAPACITY)
        .build();
    let cfg = WorkloadConfig {
        n_keys: 300,
        theta: 0.5,
        reads_per_txn: 1,
        writes_per_txn: 2,
        ..WorkloadConfig::default()
    };
    let zipf = cfg.sampler();
    let mut rng = DetRng::new(370);
    // Pre-crash load on all sites.
    for site in 0..N {
        let mut at = SimTime::from_micros(1_000);
        let mut site_rng = rng.fork(site as u64);
        for _ in 0..10 {
            at += SimDuration::from_millis(15);
            cluster.submit_at(at, SiteId(site), cfg.gen_txn(&zipf, &mut site_rng));
        }
    }
    cluster.run_until(SimTime::from_micros(CRASH_AT_US));
    let pre_commits = cluster.metrics().commits();

    cluster.crash(SiteId(N - 1));
    // Run until every survivor has evicted the crashed site.
    let mut view_change_done = SimTime::from_micros(CRASH_AT_US);
    loop {
        view_change_done += SimDuration::from_millis(5);
        cluster.run_until(view_change_done);
        let all_evicted = (0..N - 1).all(|s| {
            !cluster
                .replica(SiteId(s))
                .view_members()
                .contains(&SiteId(N - 1))
        });
        if all_evicted {
            break;
        }
        assert!(
            view_change_done < SimTime::from_micros(CRASH_AT_US + 2_000_000),
            "{proto}: view change never completed"
        );
    }
    let view_change_ms = (view_change_done.as_micros() - CRASH_AT_US) as f64 / 1_000.0;
    let aborted_by_view = cluster.metrics().counters.get("abort_view_change");

    // Post-crash load on the survivors.
    for site in 0..N - 1 {
        let mut at = view_change_done + SimDuration::from_millis(5);
        let mut site_rng = rng.fork(100 + site as u64);
        for _ in 0..10 {
            at += SimDuration::from_millis(15);
            cluster.submit_at(at, SiteId(site), cfg.gen_txn(&zipf, &mut site_rng));
        }
    }
    cluster.run_until(view_change_done + SimDuration::from_secs(2));
    let post_commits = cluster.metrics().commits() - pre_commits;
    let survivors: Vec<SiteId> = (0..N - 1).map(SiteId).collect();
    let serializable = cluster.check_serializability_among(&survivors).is_ok();
    check_traced_run(&cluster, &format!("{proto} crash run"));

    let cells = vec![
        proto.name().to_string(),
        pre_commits.to_string(),
        format!("{view_change_ms:.1}"),
        aborted_by_view.to_string(),
        post_commits.to_string(),
        serializable.to_string(),
    ];
    (cells, cluster.events_processed())
}

/// Crashes 3 of 5 sites and returns whether the minority blocked.
fn minority_run() -> (bool, u64) {
    let mut cluster = Cluster::builder()
        .sites(N)
        .protocol(ProtocolKind::ReliableBcast)
        .seed(38)
        .membership(true)
        .suspect_after(SimDuration::from_millis(60))
        .trace(TRACE_CAPACITY)
        .build();
    cluster.run_until(SimTime::from_micros(50_000));
    for s in 2..N {
        cluster.crash(SiteId(s));
    }
    cluster.run_until(SimTime::from_micros(600_000));
    let blocked = (0..2).all(|s| !cluster.replica(SiteId(s)).is_operational());
    check_traced_run(&cluster, "minority partition");
    (blocked, cluster.events_processed())
}

/// One independent failure scenario.
#[derive(Debug, Clone, Copy)]
enum Scenario {
    Crash(ProtocolKind),
    MinorityPartition,
}

enum ScenarioResult {
    Row(Vec<String>, u64),
    Blocked(bool, u64),
}

fn main() {
    let mut table = Table::new(
        "t2_failures",
        &[
            "protocol",
            "pre_commits",
            "view_change_ms",
            "aborted_by_view",
            "post_commits",
            "survivors_serializable",
        ],
    );
    let configs = vec![
        Scenario::Crash(ProtocolKind::ReliableBcast),
        Scenario::Crash(ProtocolKind::CausalBcast),
        Scenario::Crash(ProtocolKind::AtomicBcast),
        Scenario::MinorityPartition,
    ];
    let outcome = Sweep::from_env().run(configs, |&scenario| match scenario {
        Scenario::Crash(proto) => {
            let (cells, events) = crash_run(proto);
            ScenarioResult::Row(cells, events)
        }
        Scenario::MinorityPartition => {
            let (blocked, events) = minority_run();
            ScenarioResult::Blocked(blocked, events)
        }
    });
    let mut events = 0u64;
    let mut minority_blocked = None;
    for r in &outcome.results {
        match r {
            ScenarioResult::Row(cells, ev) => {
                table.row_strings(cells);
                events += ev;
            }
            ScenarioResult::Blocked(blocked, ev) => {
                minority_blocked = Some(*blocked);
                events += ev;
            }
        }
    }
    table.emit();
    let blocked = minority_blocked.expect("minority scenario ran");
    println!("\nminority partition (2 of 5 survivors): blocked = {blocked}");
    assert!(blocked, "a minority view must not remain operational");
    let mut ledger = Ledger::new();
    ledger.record("t2_failures", &outcome, events);
    ledger.finish();
}
