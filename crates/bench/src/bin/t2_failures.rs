//! **T2 — Behaviour under site failure: the nemesis campaign.**
//!
//! The paper's fault-tolerance story: "as long as the view has majority
//! membership, the system remains operational." This experiment replays
//! the full deterministic nemesis matrix — five fault schedules
//! ([`NemesisScenario::ALL`]: a participant crash mid-2PC, an origin
//! crash, a partition + heal + rejoin, cascading view changes, and a
//! crash/recover/rejoin cycle) under each of the four protocols — and
//! reports per cell: commits, aborts, the mean vote-round latency of the
//! committed updates, and one-copy serializability among the survivors.
//!
//! Every run is validated by the trace invariant checker and explicit
//! survivor-termination sweeps inside [`run_nemesis`]; a violation panics
//! the experiment rather than producing a row.
//!
//! Two extra rows rerun `crash_mid_2pc` under the reliable and causal
//! protocols with **speculative fast commit** enabled: transactions
//! orphaned by the crash are decided from the surviving quorum's votes at
//! the speculative suspicion threshold instead of waiting out the view
//! change, and the vote-round column shrinks accordingly (asserted, not
//! just reported).
//!
//! The runs are independent clusters and execute on `BCASTDB_JOBS` worker
//! threads; rows are assembled in config order, so the output is
//! byte-identical at any job count. With `--trace-out <base>` every run
//! streams its full JSONL trace to `<base>-<scenario>-<protocol>.jsonl`
//! for `bcast-trace check`.

use bcastdb_bench::nemesis::{run_nemesis, NemesisConfig, NemesisOutcome, NemesisScenario};
use bcastdb_bench::{trace_out_for, trace_out_path, Ledger, Sweep, Table};
use bcastdb_core::ProtocolKind;

fn main() {
    let trace_base = trace_out_path();
    let mut configs: Vec<NemesisConfig> = Vec::new();
    for scenario in NemesisScenario::ALL {
        for proto in ProtocolKind::ALL {
            let mut cfg = NemesisConfig::new(scenario, proto);
            cfg.trace_out = trace_base
                .as_ref()
                .map(|b| trace_out_for(b, &format!("{}-{}", scenario.name(), proto.name())));
            configs.push(cfg);
        }
    }
    // The speculative fast-commit comparison pair: same crash schedule,
    // fast path on (only meaningful for the two vote/ack-quorum
    // protocols).
    for proto in [ProtocolKind::ReliableBcast, ProtocolKind::CausalBcast] {
        let mut cfg = NemesisConfig::new(NemesisScenario::CrashMidTwoPhase, proto);
        cfg.fast_commit = true;
        cfg.trace_out = trace_base
            .as_ref()
            .map(|b| trace_out_for(b, &format!("crash_mid_2pc-{}-fast", proto.name())));
        configs.push(cfg);
    }

    let outcome = Sweep::from_env().run(configs, run_nemesis);

    let headers = NemesisOutcome::headers();
    let mut table = Table::new("t2_failures", &headers);
    let mut events = 0u64;
    for r in &outcome.results {
        assert!(
            r.survivors_serializable,
            "{}/{}: survivors are not one-copy serializable",
            r.scenario.name(),
            r.protocol.name()
        );
        table.row_strings(&r.cells());
        events += r.events;
    }
    table.emit();

    // The speculation must have engaged and must have shortened the
    // orphaned transactions' decision wait, run for run.
    let find = |proto: ProtocolKind, fast: bool| -> &NemesisOutcome {
        outcome
            .results
            .iter()
            .find(|r| {
                r.scenario == NemesisScenario::CrashMidTwoPhase
                    && r.protocol == proto
                    && r.fast_commit == fast
            })
            .expect("matrix row")
    };
    println!();
    for proto in [ProtocolKind::ReliableBcast, ProtocolKind::CausalBcast] {
        let base = find(proto, false);
        let fast = find(proto, true);
        assert!(fast.fast_commits > 0, "{proto}: fast path never engaged");
        assert!(
            fast.vote_round_ms < base.vote_round_ms,
            "{proto}: fast commit did not shorten the vote round"
        );
        assert_eq!(
            base.commits, fast.commits,
            "{proto}: speculation changed outcomes"
        );
        println!(
            "fast commit under {proto}: vote round {:.2} ms -> {:.2} ms \
             ({} speculative decisions, same {} commits)",
            base.vote_round_ms, fast.vote_round_ms, fast.fast_commits, fast.commits
        );
    }

    let mut ledger = Ledger::new();
    ledger.record("t2_failures", &outcome, events);
    ledger.finish();
}
