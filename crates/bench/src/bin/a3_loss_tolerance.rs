//! **A3 (ablation) — The price of loss tolerance.**
//!
//! Reliable broadcast's *agreement* property is what the replication
//! protocols buy their simplicity with. On a lossless network the direct
//! implementation (one copy per receiver) suffices; tolerating message
//! loss costs an eager relay flood plus keep-alive/retransmission traffic.
//! This ablation measures that price and verifies the guarantees survive
//! actual loss.
//!
//! The `(protocol, loss, relay)` sweep runs on `BCASTDB_JOBS` worker
//! threads; rows are assembled in config order, so the output is
//! byte-identical at any job count.

use bcastdb_bench::{check_traced_run, f2, Ledger, Sweep, Table, TRACE_CAPACITY};
use bcastdb_core::{Cluster, ProtocolKind};
use bcastdb_sim::{NetworkConfig, SimDuration};
use bcastdb_workload::{WorkloadConfig, WorkloadRun};

fn main() {
    let cfg = WorkloadConfig {
        n_keys: 300,
        theta: 0.5,
        reads_per_txn: 1,
        writes_per_txn: 2,
        ..WorkloadConfig::default()
    };
    let mut table = Table::new(
        "a3_loss_tolerance",
        &[
            "protocol", "loss", "relay", "commits", "aborts", "messages", "mean_ms",
        ],
    );
    let mut configs = Vec::new();
    for proto in [ProtocolKind::ReliableBcast, ProtocolKind::CausalBcast] {
        for (loss, relay) in [
            (0.0, false),
            (0.0, true),
            (0.02, true),
            (0.05, true),
            (0.10, true),
        ] {
            configs.push((proto, loss, relay));
        }
    }
    let outcome = Sweep::from_env().run(configs, |&(proto, loss, relay)| {
        let mut cluster = Cluster::builder()
            .sites(4)
            .protocol(proto)
            .network(NetworkConfig::lan().with_loss(loss))
            .relay(relay)
            .trace(TRACE_CAPACITY)
            .seed(83)
            .build();
        let run = WorkloadRun::new(cfg.clone(), 830);
        let report = run.open_loop(&mut cluster, 15, SimDuration::from_millis(8));
        assert!(report.quiesced, "{proto}@loss{loss}");
        assert!(
            report.all_terminated(),
            "{proto}@loss{loss} wedged transactions"
        );
        assert!(report.converged, "{proto}@loss{loss} diverged");
        cluster
            .check_serializability()
            .unwrap_or_else(|v| panic!("{proto}@loss{loss}: {v}"));
        check_traced_run(&cluster, &format!("{proto}@loss{loss}"));
        let m = report.metrics;
        let cells = vec![
            proto.name().to_string(),
            format!("{:.0}%", loss * 100.0),
            relay.to_string(),
            m.commits().to_string(),
            m.aborts().to_string(),
            report.messages.to_string(),
            f2(m.update_latency.mean().as_millis_f64()),
        ];
        (cells, cluster.events_processed())
    });
    let mut events = 0u64;
    for (cells, ev) in &outcome.results {
        table.row_strings(cells);
        events += ev;
    }
    table.emit();
    println!(
        "\nEvery lossy run stayed one-copy serializable with all replicas converged —\n\
         the relay flood plus origin-retransmission buys agreement under loss."
    );
    let mut ledger = Ledger::new();
    ledger.record("a3_loss_tolerance", &outcome, events);
    ledger.finish();
}
