//! **run_all — drive every experiment and write the perf ledger.**
//!
//! Replaces the shell for-loop in EXPERIMENTS.md: runs the twelve
//! experiment binaries plus the chaos campaign in canonical order,
//! mirrors each table to
//! `$BCASTDB_RESULTS_DIR` (default `results/`), concatenates their stdout
//! into `experiments_output.txt`, and writes the wall-clock perf ledger
//! `BENCH_wallclock.json` at the repository root.
//!
//! ```console
//! $ cargo run --release -p bcastdb-bench --bin run_all
//! $ BCASTDB_JOBS=8 cargo run --release -p bcastdb-bench --bin run_all
//! ```
//!
//! Each experiment binary parallelises its own `(config, seed)` sweep
//! across `BCASTDB_JOBS` worker threads (default: available parallelism)
//! and reports per-sweep timings through the `BCASTDB_BENCH_LEDGER` relay
//! file; this driver aggregates them. The experiments themselves run
//! sequentially — their outputs (console, CSV, trace files) are therefore
//! byte-identical to the old for-loop at any job count.

use bcastdb_bench::{jobs_from_env, read_ledger_relay, write_wallclock_json};
use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Stdio};

/// The experiment binaries, in the canonical EXPERIMENTS.md order. The
/// chaos campaign runs last: it is a robustness gate, not a paper
/// table, and appending it keeps the twelve experiments' slice of
/// `experiments_output.txt` byte-identical to previous revisions.
const EXPERIMENTS: [&str; 13] = [
    "t1_messages",
    "t2_failures",
    "t3_latency_breakdown",
    "f1_latency_vs_n",
    "f2_throughput",
    "f3_aborts",
    "f4_implicit_ack",
    "f5_readonly",
    "f6_batching",
    "a1_abcast_impl",
    "a2_conflict_policy",
    "a3_loss_tolerance",
    "chaos",
];

fn main() {
    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(PathBuf::from))
        .expect("locate the build directory of the experiment binaries");
    let results_dir =
        std::env::var("BCASTDB_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    let relay = std::env::temp_dir().join(format!("bcastdb-ledger-{}.tsv", std::process::id()));
    let _ = std::fs::remove_file(&relay);

    let jobs = jobs_from_env();
    eprintln!(
        "[run_all] {} experiments, {jobs} sweep worker(s), results -> {results_dir}/",
        EXPERIMENTS.len()
    );

    let mut output = Vec::new();
    for bin in EXPERIMENTS {
        let path = exe_dir.join(bin);
        eprintln!("[run_all] {bin}");
        let out = Command::new(&path)
            .env("BCASTDB_RESULTS_DIR", &results_dir)
            .env("BCASTDB_BENCH_LEDGER", &relay)
            .stdout(Stdio::piped())
            .output()
            .unwrap_or_else(|e| panic!("spawn {}: {e}", path.display()));
        assert!(
            out.status.success(),
            "{bin} failed with {}; stderr above",
            out.status
        );
        // Echo to the console and keep the bytes for the transcript file —
        // concatenated child stdout is exactly what the old shell loop
        // redirected into experiments_output.txt.
        std::io::stdout()
            .write_all(&out.stdout)
            .expect("echo experiment output");
        output.extend_from_slice(&out.stdout);
    }
    std::fs::write("experiments_output.txt", &output).expect("write experiments_output.txt");

    let entries = read_ledger_relay(&relay);
    let _ = std::fs::remove_file(&relay);
    assert!(
        !entries.is_empty(),
        "no ledger entries collected — experiment binaries out of date?"
    );
    write_wallclock_json(std::path::Path::new("BENCH_wallclock.json"), &entries)
        .expect("write BENCH_wallclock.json");

    let total_wall: f64 = entries.iter().map(|e| e.wall_ms).sum();
    let total_serial: f64 = entries.iter().map(|e| e.runs_wall_ms).sum();
    let speedup = if total_wall > 0.0 {
        total_serial / total_wall
    } else {
        1.0
    };
    eprintln!(
        "[run_all] done: {} sweeps, {:.1}s wall ({:.1}s serial-equivalent, {:.2}x with {jobs} \
         job(s)) — ledger in BENCH_wallclock.json, transcript in experiments_output.txt",
        entries.len(),
        total_wall / 1000.0,
        total_serial / 1000.0,
        speedup,
    );
}
