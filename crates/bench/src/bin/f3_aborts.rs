//! **F3 — Abort rate vs data contention.**
//!
//! The database shrinks from 1000 keys to 5 while the offered load stays
//! fixed, driving up conflicts. Reported per protocol: abort fraction and
//! the dominant abort reason. Expected shape: all protocols abort more as
//! contention rises; the baseline adds timeout (deadlock) aborts, the
//! causal protocol converts conflicts into deterministic concurrent-loser
//! aborts, and the atomic protocol into certification failures.
//!
//! The `(keys, protocol)` sweep runs on `BCASTDB_JOBS` worker threads;
//! rows are assembled in config order, so the output is byte-identical
//! at any job count.

use bcastdb_bench::{check_traced_run, f2, Ledger, Sweep, Table, TRACE_CAPACITY};
use bcastdb_core::{Cluster, ProtocolKind};
use bcastdb_sim::SimDuration;
use bcastdb_workload::{WorkloadConfig, WorkloadRun};

fn main() {
    let mut table = Table::new(
        "f3_aborts",
        &[
            "keys",
            "protocol",
            "commits",
            "aborts",
            "abort_rate",
            "wounded",
            "concurrent",
            "certif",
            "timeout",
            "neg_vote",
        ],
    );
    let mut configs = Vec::new();
    for n_keys in [1000usize, 100, 50, 20, 10, 5] {
        for proto in ProtocolKind::ALL {
            configs.push((n_keys, proto));
        }
    }
    let outcome = Sweep::from_env().run(configs, |&(n_keys, proto)| {
        let cfg = WorkloadConfig {
            n_keys,
            theta: 0.8,
            reads_per_txn: 1,
            writes_per_txn: 2,
            readonly_fraction: 0.0,
            ..WorkloadConfig::default()
        };
        let mut cluster = Cluster::builder()
            .sites(5)
            .protocol(proto)
            .trace(TRACE_CAPACITY)
            .seed(13)
            .build();
        let run = WorkloadRun::new(cfg, 130 + n_keys as u64);
        let report = run.open_loop(&mut cluster, 20, SimDuration::from_millis(4));
        assert!(report.quiesced, "{proto}@{n_keys} did not quiesce");
        assert!(
            report.all_terminated(),
            "{proto}@{n_keys} wedged transactions"
        );
        cluster
            .check_serializability()
            .unwrap_or_else(|v| panic!("{proto}: {v}"));
        check_traced_run(&cluster, &format!("{proto}@{n_keys}"));
        let m = report.metrics;
        let cells = vec![
            n_keys.to_string(),
            proto.name().to_string(),
            m.commits().to_string(),
            m.aborts().to_string(),
            f2(m.abort_rate()),
            m.counters.get("abort_wounded").to_string(),
            m.counters.get("abort_concurrent").to_string(),
            m.counters.get("abort_certification").to_string(),
            m.counters.get("abort_timeout").to_string(),
            m.counters.get("abort_negative_vote").to_string(),
        ];
        (cells, cluster.events_processed())
    });
    let mut events = 0u64;
    for (cells, ev) in &outcome.results {
        table.row_strings(cells);
        events += ev;
    }
    table.emit();
    let mut ledger = Ledger::new();
    ledger.record("f3_aborts", &outcome, events);
    ledger.finish();
}
