//! **T1 — Message complexity per update transaction.**
//!
//! The paper's central cost argument: each protocol needs progressively
//! fewer messages to commit one update transaction of `w` write operations
//! over `N` sites.
//!
//! Analytic model (point-to-point messages, commit of one update txn, no
//! contention, origin ≠ sequencer):
//!
//! | protocol | messages |
//! |---|---|
//! | p2p-2pc   | `w(N-1)` writes + `w(N-1)` acks + `(N-1)` commit-req + `N(N-1)` votes |
//! | reliable  | `w(N-1)` writes + `(N-1)` commit-req + `N(N-1)` votes |
//! | causal    | `w(N-1)` writes + `(N-1)` commit-req (+ ≤ `N-1` null keep-alives when quiet) |
//! | atomic    | `w(N-1)` causal writes + `1` submit + `(N-1)` ordered |
//!
//! This binary measures the real counts in the simulator and prints them
//! next to the analytic values, decomposed per protocol phase (prepare /
//! vote / ack / decision / retransmit / membership) so the table shows
//! *where* each protocol spends its messages, not just how many.
//!
//! Both `(sites, protocol)` sweeps run on `BCASTDB_JOBS` worker threads;
//! rows are assembled in config order, so the output is byte-identical
//! at any job count.

use bcastdb_bench::{
    check_traced_run, phase_cells, phase_headers, Ledger, Sweep, Table, TRACE_CAPACITY,
};
use bcastdb_core::{Cluster, ProtocolKind, TxnSpec};
use bcastdb_sim::{SimDuration, SiteId};
use bcastdb_workload::{WorkloadConfig, WorkloadRun};

const WRITES: usize = 2;

fn analytic(proto: ProtocolKind, n: u64, w: u64) -> u64 {
    match proto {
        ProtocolKind::PointToPoint => w * (n - 1) * 2 + (n - 1) + n * (n - 1),
        ProtocolKind::ReliableBcast => w * (n - 1) + (n - 1) + n * (n - 1),
        ProtocolKind::CausalBcast => w * (n - 1) + (n - 1), // + keep-alives
        ProtocolKind::AtomicBcast => w * (n - 1) + 1 + (n - 1),
    }
}

fn main() {
    let mut configs = Vec::new();
    for n in [3usize, 5, 7, 9, 13] {
        for proto in ProtocolKind::ALL {
            configs.push((n, proto));
        }
    }

    let mut headers = vec!["sites", "protocol", "analytic", "measured", "per-site"];
    headers.extend(phase_headers());
    let mut table = Table::new("t1_messages", &headers);
    let single = Sweep::from_env().run(configs.clone(), |&(n, proto)| {
        let mut cluster = Cluster::builder()
            .sites(n)
            .protocol(proto)
            .trace(TRACE_CAPACITY)
            .seed(1)
            .build();
        // One update transaction with WRITES writes from a
        // non-coordinator site.
        let mut spec = TxnSpec::new().read("r0");
        for i in 0..WRITES {
            spec = spec.write(format!("w{i}").as_str(), i as i64);
        }
        let id = cluster.submit(SiteId(1), spec);
        cluster.run_to_quiescence();
        assert!(cluster.is_committed(id), "{proto}@{n}: txn failed");
        cluster.check_serializability().expect("serializable");
        check_traced_run(&cluster, &format!("{proto}@{n}"));
        let measured = cluster.messages_sent();
        let pc = cluster.phase_counts();
        // Lossless network: the per-phase totals account for every
        // message the network carried.
        assert_eq!(pc.total(), measured, "{proto}@{n}: phase accounting leak");
        let a = analytic(proto, n as u64, WRITES as u64);
        let mut cells = vec![
            n.to_string(),
            proto.name().to_string(),
            a.to_string(),
            measured.to_string(),
            format!("{:.1}", measured as f64 / n as f64),
        ];
        cells.extend(phase_cells(&pc));
        (cells, cluster.events_processed())
    });
    let mut events = 0u64;
    for (cells, ev) in &single.results {
        table.row_strings(cells);
        events += ev;
    }
    table.emit();
    println!(
        "\nSingle isolated transaction: the causal protocol's keep-alive nulls cost as\n\
         much as the votes they replace — the paper's own caveat about quiet systems.\n\
         Amortized over a busy stream the implicit acks ride on real traffic:"
    );

    // Phase 2: messages per transaction amortized over a dense stream.
    let mut headers = vec!["sites", "protocol", "txns", "messages", "msgs_per_txn"];
    headers.extend(phase_headers());
    let mut table = Table::new("t1_messages_amortized", &headers);
    let cfg = WorkloadConfig {
        n_keys: 5000,
        theta: 0.0,
        reads_per_txn: 1,
        writes_per_txn: WRITES,
        ..WorkloadConfig::default()
    };
    let amortized = Sweep::from_env().run(configs, |&(n, proto)| {
        let mut cluster = Cluster::builder()
            .sites(n)
            .protocol(proto)
            .trace(TRACE_CAPACITY)
            .seed(2)
            .build();
        let run = WorkloadRun::new(cfg.clone(), 20 + n as u64);
        let report = run.open_loop(&mut cluster, 40, SimDuration::from_millis(5));
        assert!(report.quiesced, "{proto}@{n}");
        cluster.check_serializability().expect("serializable");
        check_traced_run(&cluster, &format!("{proto}@{n} amortized"));
        let done = report.metrics.commits() + report.metrics.aborts();
        let mut cells = vec![
            n.to_string(),
            proto.name().to_string(),
            done.to_string(),
            report.messages.to_string(),
            format!("{:.1}", report.messages as f64 / done.max(1) as f64),
        ];
        cells.extend(phase_cells(&cluster.phase_counts()));
        (cells, cluster.events_processed())
    });
    let mut amortized_events = 0u64;
    for (cells, ev) in &amortized.results {
        table.row_strings(cells);
        amortized_events += ev;
    }
    table.emit();

    let mut ledger = Ledger::new();
    ledger.record("t1_messages", &single, events);
    ledger.record("t1_messages_amortized", &amortized, amortized_events);
    ledger.finish();
}
