//! Perf-regression gate over two `BENCH_wallclock.json` ledgers.
//!
//! [`write_wallclock_json`](crate::write_wallclock_json) records, per
//! experiment, the wall-clock throughput (`events_per_sec`) and the
//! deterministic allocation cost (`allocs_per_event`). This module parses
//! two such ledgers — a committed baseline and a fresh run — and compares
//! them experiment by experiment:
//!
//! * **events/sec** may regress by at most a configurable fraction
//!   ([`DiffConfig::max_regress`], default 15%). Wall-clock throughput is
//!   the one noisy number in the ledger, so the threshold is generous.
//! * **allocs/event** is a *ratchet*: in a deterministic simulator the
//!   allocation count is exactly reproducible, so any growth beyond a
//!   small slack ([`DiffConfig::max_alloc_regress`], default 10%) is a
//!   real cost regression, not noise.
//! * an experiment present in the baseline but **missing from the current
//!   ledger** is a violation — a silently dropped benchmark must not pass
//!   the gate.
//!
//! Experiments present only in the **current** ledger are *added*: they
//! are reported (with their fresh numbers and an `added` status) and
//! never fail the gate, so a PR that introduces a new experiment does not
//! have to regenerate the committed baseline just to get CI past the perf
//! gate. The CLI entry point is `bcast-trace perf-diff`; CI runs it
//! against the committed ledger (see `.github/workflows/ci.yml`).
//!
//! The parser is hand-rolled for the fixed ledger schema — the workspace
//! deliberately has no JSON dependency.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Default allowed fractional `events_per_sec` regression (15%).
pub const DEFAULT_MAX_REGRESS: f64 = 0.15;

/// Default allowed fractional `allocs_per_event` growth (10%).
pub const DEFAULT_MAX_ALLOC_REGRESS: f64 = 0.10;

/// Thresholds for [`diff_ledgers`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffConfig {
    /// Maximum tolerated fractional drop in `events_per_sec`
    /// (`0.15` = a 15% slowdown fails).
    pub max_regress: f64,
    /// Maximum tolerated fractional growth in `allocs_per_event`.
    pub max_alloc_regress: f64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            max_regress: DEFAULT_MAX_REGRESS,
            max_alloc_regress: DEFAULT_MAX_ALLOC_REGRESS,
        }
    }
}

/// One experiment's row from a `BENCH_wallclock.json` ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentPerf {
    /// Experiment name (binary name, e.g. `f2_throughput`).
    pub experiment: String,
    /// Simulator events processed across all runs.
    pub events: u64,
    /// Wall-clock time for the experiment, milliseconds.
    pub wall_ms: f64,
    /// Events per wall-clock second (the throughput headline).
    pub events_per_sec: f64,
    /// Heap allocations per simulator event (deterministic).
    pub allocs_per_event: f64,
}

/// A parsed `BENCH_wallclock.json` ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct WallclockLedger {
    /// Git revision the ledger was recorded at.
    pub git_rev: String,
    /// Worker count (`BCASTDB_JOBS`) of the recording run.
    pub jobs: u64,
    /// Total wall-clock time across all experiments, milliseconds.
    pub total_wall_ms: f64,
    /// Per-experiment rows, in file order.
    pub experiments: Vec<ExperimentPerf>,
}

impl WallclockLedger {
    /// Parses the JSON text of a `BENCH_wallclock.json` file.
    pub fn parse(text: &str) -> Result<WallclockLedger, String> {
        let root = Json::parse(text)?;
        let obj = root.as_obj("ledger")?;
        let experiments = obj
            .get("experiments")
            .ok_or("ledger is missing \"experiments\"")?
            .as_arr("experiments")?
            .iter()
            .map(parse_experiment)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(WallclockLedger {
            git_rev: get_str(obj, "git_rev")?,
            jobs: get_num(obj, "jobs")? as u64,
            total_wall_ms: get_num(obj, "total_wall_ms")?,
            experiments,
        })
    }
}

fn parse_experiment(v: &Json) -> Result<ExperimentPerf, String> {
    let obj = v.as_obj("experiment entry")?;
    Ok(ExperimentPerf {
        experiment: get_str(obj, "experiment")?,
        events: get_num(obj, "events")? as u64,
        wall_ms: get_num(obj, "wall_ms")?,
        events_per_sec: get_num(obj, "events_per_sec")?,
        allocs_per_event: get_num(obj, "allocs_per_event")?,
    })
}

fn get_str(obj: &BTreeMap<String, Json>, key: &str) -> Result<String, String> {
    match obj.get(key) {
        Some(Json::Str(s)) => Ok(s.clone()),
        Some(_) => Err(format!("\"{key}\" is not a string")),
        None => Err(format!("missing \"{key}\"")),
    }
}

fn get_num(obj: &BTreeMap<String, Json>, key: &str) -> Result<f64, String> {
    match obj.get(key) {
        Some(Json::Num(n)) => Ok(*n),
        Some(_) => Err(format!("\"{key}\" is not a number")),
        None => Err(format!("missing \"{key}\"")),
    }
}

/// How one experiment fared between the two ledgers.
#[derive(Debug, Clone, PartialEq)]
pub enum DiffStatus {
    /// Within thresholds (possibly faster).
    Ok,
    /// Failed a threshold; the strings say which.
    Regressed(Vec<String>),
    /// Present in the baseline but absent from the current ledger.
    MissingInCurrent,
    /// Added: present only in the current ledger (informational, never a
    /// violation — new experiments must not force a baseline refresh).
    NewInCurrent,
}

/// One experiment's comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentDiff {
    /// Experiment name.
    pub experiment: String,
    /// Baseline row, when present.
    pub baseline: Option<ExperimentPerf>,
    /// Current row, when present.
    pub current: Option<ExperimentPerf>,
    /// The verdict for this experiment.
    pub status: DiffStatus,
}

/// The full comparison: one row per experiment seen in either ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Rows in baseline file order, then current-only rows.
    pub rows: Vec<ExperimentDiff>,
    /// The thresholds the report was produced under.
    pub config: DiffConfig,
}

impl DiffReport {
    /// True iff no experiment regressed or went missing.
    pub fn is_ok(&self) -> bool {
        self.rows
            .iter()
            .all(|r| matches!(r.status, DiffStatus::Ok | DiffStatus::NewInCurrent))
    }

    /// All violation messages, one per failed experiment check.
    pub fn violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        for r in &self.rows {
            match &r.status {
                DiffStatus::Regressed(msgs) => {
                    for m in msgs {
                        out.push(format!("{}: {m}", r.experiment));
                    }
                }
                DiffStatus::MissingInCurrent => {
                    out.push(format!(
                        "{}: present in baseline but missing from current ledger",
                        r.experiment
                    ));
                }
                DiffStatus::Ok | DiffStatus::NewInCurrent => {}
            }
        }
        out
    }

    /// Human-readable table plus a verdict line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:>14} {:>14} {:>8} {:>12} {:>12}  status",
            "experiment", "base ev/s", "cur ev/s", "delta", "base a/ev", "cur a/ev"
        );
        for r in &self.rows {
            let (beps, bape) = r.baseline.as_ref().map_or(("-".into(), "-".into()), |b| {
                (
                    format!("{:.0}", b.events_per_sec),
                    format!("{:.2}", b.allocs_per_event),
                )
            });
            let (ceps, cape) = r.current.as_ref().map_or(("-".into(), "-".into()), |c| {
                (
                    format!("{:.0}", c.events_per_sec),
                    format!("{:.2}", c.allocs_per_event),
                )
            });
            let delta = match (&r.baseline, &r.current) {
                (Some(b), Some(c)) if b.events_per_sec > 0.0 => format!(
                    "{:+.1}%",
                    (c.events_per_sec / b.events_per_sec - 1.0) * 100.0
                ),
                _ => "-".into(),
            };
            let status = match &r.status {
                DiffStatus::Ok => "ok".to_string(),
                DiffStatus::Regressed(_) => "REGRESSED".to_string(),
                DiffStatus::MissingInCurrent => "MISSING".to_string(),
                DiffStatus::NewInCurrent => "added".to_string(),
            };
            let _ = writeln!(
                out,
                "{:<24} {:>14} {:>14} {:>8} {:>12} {:>12}  {status}",
                r.experiment, beps, ceps, delta, bape, cape
            );
        }
        let violations = self.violations();
        let added = self
            .rows
            .iter()
            .filter(|r| r.status == DiffStatus::NewInCurrent)
            .count();
        if violations.is_empty() {
            let added_note = if added > 0 {
                format!(", {added} added without baseline")
            } else {
                String::new()
            };
            let _ = writeln!(
                out,
                "perf-diff: ok ({} experiments within thresholds: events/sec -{:.0}%, allocs/event +{:.0}%{added_note})",
                self.rows.len(),
                self.config.max_regress * 100.0,
                self.config.max_alloc_regress * 100.0
            );
        } else {
            let _ = writeln!(out, "perf-diff: {} violation(s):", violations.len());
            for v in &violations {
                let _ = writeln!(out, "  {v}");
            }
        }
        out
    }
}

/// Compares `current` against `baseline` under `config`.
pub fn diff_ledgers(
    baseline: &WallclockLedger,
    current: &WallclockLedger,
    config: DiffConfig,
) -> DiffReport {
    let cur_by_name: BTreeMap<&str, &ExperimentPerf> = current
        .experiments
        .iter()
        .map(|e| (e.experiment.as_str(), e))
        .collect();
    let base_names: std::collections::BTreeSet<&str> = baseline
        .experiments
        .iter()
        .map(|e| e.experiment.as_str())
        .collect();
    let mut rows = Vec::new();
    for b in &baseline.experiments {
        let row = match cur_by_name.get(b.experiment.as_str()) {
            None => ExperimentDiff {
                experiment: b.experiment.clone(),
                baseline: Some(b.clone()),
                current: None,
                status: DiffStatus::MissingInCurrent,
            },
            Some(c) => {
                let mut msgs = Vec::new();
                if b.events_per_sec > 0.0 {
                    let drop = 1.0 - c.events_per_sec / b.events_per_sec;
                    if drop > config.max_regress {
                        msgs.push(format!(
                            "events/sec regressed {:.1}% ({:.0} -> {:.0}, limit {:.0}%)",
                            drop * 100.0,
                            b.events_per_sec,
                            c.events_per_sec,
                            config.max_regress * 100.0
                        ));
                    }
                }
                if b.allocs_per_event > 0.0 {
                    let growth = c.allocs_per_event / b.allocs_per_event - 1.0;
                    if growth > config.max_alloc_regress {
                        msgs.push(format!(
                            "allocs/event ratchet broken: grew {:.1}% ({:.2} -> {:.2}, limit {:.0}%)",
                            growth * 100.0,
                            b.allocs_per_event,
                            c.allocs_per_event,
                            config.max_alloc_regress * 100.0
                        ));
                    }
                }
                ExperimentDiff {
                    experiment: b.experiment.clone(),
                    baseline: Some(b.clone()),
                    current: Some((*c).clone()),
                    status: if msgs.is_empty() {
                        DiffStatus::Ok
                    } else {
                        DiffStatus::Regressed(msgs)
                    },
                }
            }
        };
        rows.push(row);
    }
    for c in &current.experiments {
        if !base_names.contains(c.experiment.as_str()) {
            rows.push(ExperimentDiff {
                experiment: c.experiment.clone(),
                baseline: None,
                current: Some(c.clone()),
                status: DiffStatus::NewInCurrent,
            });
        }
    }
    DiffReport { rows, config }
}

/// Minimal JSON value — just enough to read the ledger schema.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn parse(text: &str) -> Result<Json, String> {
        let b = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(v)
    }

    fn as_obj(&self, what: &str) -> Result<&BTreeMap<String, Json>, String> {
        match self {
            Json::Obj(m) => Ok(m),
            _ => Err(format!("{what} is not a JSON object")),
        }
    }

    fn as_arr(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Arr(a) => Ok(a),
            _ => Err(format!("{what} is not a JSON array")),
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at offset {pos}"));
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                map.insert(key, val);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(arr));
            }
            loop {
                arr.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(arr));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at offset {pos}"));
    }
    *pos += 1;
    let start = *pos;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                let s = std::str::from_utf8(&b[start..*pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?;
                *pos += 1;
                return Ok(s.to_string());
            }
            // The ledger writer never emits escapes; rejecting them keeps
            // the parser honest instead of silently mangling input.
            b'\\' => return Err(format!("escape sequences unsupported (offset {pos})")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while let Some(&c) = b.get(*pos) {
        if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        } else {
            break;
        }
    }
    let s = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad number".to_string())?;
    s.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number '{s}' at offset {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger(rows: &[(&str, f64, f64)]) -> WallclockLedger {
        WallclockLedger {
            git_rev: "deadbeef".into(),
            jobs: 1,
            total_wall_ms: 100.0,
            experiments: rows
                .iter()
                .map(|&(name, eps, ape)| ExperimentPerf {
                    experiment: name.into(),
                    events: 1000,
                    wall_ms: 10.0,
                    events_per_sec: eps,
                    allocs_per_event: ape,
                })
                .collect(),
        }
    }

    #[test]
    fn parses_the_committed_ledger_schema() {
        let text = r#"{
  "git_rev": "906a4b849d0a",
  "jobs": 1,
  "total_wall_ms": 3270.112,
  "total_runs_wall_ms": 3269.990,
  "parallel_speedup": 1.000,
  "experiments": [
    { "experiment": "t1_messages", "runs": 20, "jobs": 1, "wall_ms": 2.522, "runs_wall_ms": 2.517, "speedup": 0.998, "events": 1509, "events_per_sec": 598334.7, "allocs": 10003, "allocs_per_event": 6.63 }
  ]
}"#;
        let l = WallclockLedger::parse(text).expect("parse");
        assert_eq!(l.git_rev, "906a4b849d0a");
        assert_eq!(l.jobs, 1);
        assert_eq!(l.experiments.len(), 1);
        let e = &l.experiments[0];
        assert_eq!(e.experiment, "t1_messages");
        assert_eq!(e.events, 1509);
        assert!((e.events_per_sec - 598334.7).abs() < 1e-6);
        assert!((e.allocs_per_event - 6.63).abs() < 1e-9);
    }

    #[test]
    fn rejects_malformed_ledgers() {
        assert!(WallclockLedger::parse("").is_err());
        assert!(WallclockLedger::parse("[]").is_err());
        assert!(WallclockLedger::parse("{\"git_rev\": 3}").is_err());
        assert!(WallclockLedger::parse("{\"x\":1} trailing").is_err());
        assert!(
            WallclockLedger::parse(
                "{\"git_rev\":\"a\",\"jobs\":1,\"total_wall_ms\":1,\"experiments\":[{}]}"
            )
            .is_err(),
            "experiment entries must carry the perf fields"
        );
    }

    #[test]
    fn within_threshold_passes() {
        let base = ledger(&[("f2", 100_000.0, 5.0)]);
        let cur = ledger(&[("f2", 90_000.0, 5.2)]); // -10% eps, +4% allocs
        let report = diff_ledgers(&base, &cur, DiffConfig::default());
        assert!(report.is_ok(), "{:?}", report.violations());
        assert_eq!(report.rows[0].status, DiffStatus::Ok);
    }

    #[test]
    fn throughput_regression_fails() {
        let base = ledger(&[("f2", 100_000.0, 5.0)]);
        let cur = ledger(&[("f2", 80_000.0, 5.0)]); // -20% > 15%
        let report = diff_ledgers(&base, &cur, DiffConfig::default());
        assert!(!report.is_ok());
        let v = report.violations();
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("events/sec regressed 20.0%"), "{}", v[0]);
    }

    #[test]
    fn alloc_ratchet_break_fails() {
        let base = ledger(&[("f2", 100_000.0, 5.0)]);
        let cur = ledger(&[("f2", 100_000.0, 6.0)]); // +20% > 10%
        let report = diff_ledgers(&base, &cur, DiffConfig::default());
        assert!(!report.is_ok());
        let v = report.violations();
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("allocs/event ratchet broken"), "{}", v[0]);
    }

    #[test]
    fn improvement_passes_and_renders() {
        let base = ledger(&[("f2", 100_000.0, 5.0)]);
        let cur = ledger(&[("f2", 150_000.0, 4.0)]);
        let report = diff_ledgers(&base, &cur, DiffConfig::default());
        assert!(report.is_ok());
        let text = report.render();
        assert!(text.contains("+50.0%"), "{text}");
        assert!(text.contains("perf-diff: ok"), "{text}");
    }

    #[test]
    fn missing_experiment_is_a_violation() {
        let base = ledger(&[("f2", 100_000.0, 5.0), ("f3", 50_000.0, 4.0)]);
        let cur = ledger(&[("f2", 100_000.0, 5.0)]);
        let report = diff_ledgers(&base, &cur, DiffConfig::default());
        assert!(!report.is_ok());
        assert_eq!(report.rows[1].status, DiffStatus::MissingInCurrent);
        let v = report.violations();
        assert!(v[0].contains("missing from current ledger"), "{}", v[0]);
    }

    #[test]
    fn added_experiment_is_informational_and_passes_the_gate() {
        let base = ledger(&[("f2", 100_000.0, 5.0)]);
        let cur = ledger(&[("f2", 100_000.0, 5.0), ("f9", 10_000.0, 2.0)]);
        let report = diff_ledgers(&base, &cur, DiffConfig::default());
        assert!(report.is_ok(), "added experiments must not fail the gate");
        assert!(report.violations().is_empty());
        assert_eq!(report.rows[1].status, DiffStatus::NewInCurrent);
        let text = report.render();
        assert!(text.contains("added"), "{text}");
        assert!(text.contains("1 added without baseline"), "{text}");
        assert!(text.contains("perf-diff: ok"), "{text}");
    }

    /// The combination the satellite exists for: a PR adds an experiment
    /// *and* a baseline experiment regresses. The added row stays
    /// informational while the regression still fails — the two paths must
    /// not be lumped together.
    #[test]
    fn added_experiment_does_not_mask_a_real_regression() {
        let base = ledger(&[("f2", 100_000.0, 5.0)]);
        let cur = ledger(&[("f2", 50_000.0, 5.0), ("a1_saturation", 10_000.0, 2.0)]);
        let report = diff_ledgers(&base, &cur, DiffConfig::default());
        assert!(!report.is_ok());
        let v = report.violations();
        assert_eq!(v.len(), 1, "only the regression is a violation: {v:?}");
        assert!(v[0].contains("f2"), "{}", v[0]);
        assert_eq!(report.rows[1].status, DiffStatus::NewInCurrent);
    }

    #[test]
    fn custom_thresholds_apply() {
        let base = ledger(&[("f2", 100_000.0, 5.0)]);
        let cur = ledger(&[("f2", 95_000.0, 5.0)]); // -5%
        let tight = DiffConfig {
            max_regress: 0.02,
            max_alloc_regress: 0.0,
        };
        assert!(!diff_ledgers(&base, &cur, tight).is_ok());
        assert!(diff_ledgers(&base, &cur, DiffConfig::default()).is_ok());
    }
}
