//! Criterion micro-benchmarks over the substrate hot paths and one
//! end-to-end transaction per protocol.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use bcastdb_broadcast::atomic::{AtomicBcast, IsisAbcast, SequencerAbcast};
use bcastdb_broadcast::msg::expand_dest;
use bcastdb_broadcast::{CausalBcast, ReliableBcast, VectorClock};
use bcastdb_core::{Cluster, ProtocolKind};
use bcastdb_db::lock::LockMode;
use bcastdb_db::{Key, LockManager, Store, TxnId, TxnSpec, WriteOp};
use bcastdb_sim::{EventKind, EventQueue, SimTime, SiteId};
use std::sync::Arc;

fn bench_vector_clock(c: &mut Criterion) {
    let mut g = c.benchmark_group("vclock");
    let mut a = VectorClock::new(16);
    let mut b = VectorClock::new(16);
    for i in 0..16 {
        a.set(SiteId(i), (i * 7) as u64);
        b.set(SiteId(i), (i * 5 + 3) as u64);
    }
    g.bench_function("merge_16", |bench| {
        bench.iter(|| {
            let mut m = black_box(&a).clone();
            m.merge(black_box(&b));
            m
        })
    });
    g.bench_function("relation_16", |bench| {
        bench.iter(|| black_box(&a).relation(black_box(&b)))
    });
    g.finish();
}

fn bench_lock_manager(c: &mut Criterion) {
    let mut g = c.benchmark_group("locks");
    g.bench_function("grant_release_1000", |bench| {
        bench.iter_batched(
            LockManager::new,
            |mut lm| {
                for i in 0..1000u64 {
                    let t = TxnId::new(SiteId(0), i);
                    let k = Key::new(format!("k{}", i % 64));
                    let _ = lm.request(t, &k, LockMode::Exclusive);
                    lm.release_all(t);
                }
                lm
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("contended_queue_drain", |bench| {
        bench.iter_batched(
            || {
                let mut lm = LockManager::new();
                let k = Key::new("hot");
                lm.request(TxnId::new(SiteId(0), 0), &k, LockMode::Exclusive);
                for i in 1..100u64 {
                    lm.enqueue(TxnId::new(SiteId(0), i), &k, LockMode::Exclusive, i);
                }
                lm
            },
            |mut lm| {
                for i in 0..100u64 {
                    lm.release_all(TxnId::new(SiteId(0), i));
                }
                lm
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_store(c: &mut Criterion) {
    c.bench_function("store_apply_read", |bench| {
        bench.iter_batched(
            Store::new,
            |mut s| {
                for i in 0..256u64 {
                    let t = TxnId::new(SiteId(0), i);
                    s.apply(
                        t,
                        &[WriteOp {
                            key: Key::new(format!("k{}", i % 32)),
                            value: i as i64,
                        }],
                    );
                }
                black_box(s.value(&Key::new("k7")));
                s
            },
            BatchSize::SmallInput,
        )
    });
}

/// Drives a broadcast engine fleet synchronously until quiet, counting
/// deliveries (transport-free: wires move through an in-memory queue).
fn drive_reliable(n: usize, msgs: usize) -> usize {
    let mut engines: Vec<ReliableBcast<u64>> =
        (0..n).map(|i| ReliableBcast::new(SiteId(i), n)).collect();
    let mut wires = std::collections::VecDeque::new();
    let mut delivered = 0;
    for m in 0..msgs {
        let origin = m % n;
        let (_, out) = engines[origin].broadcast(m as u64);
        delivered += out.deliveries.len();
        for ob in out.outbound {
            for to in expand_dest(ob.dest, SiteId(origin), n) {
                wires.push_back((SiteId(origin), to, ob.wire.clone()));
            }
        }
    }
    while let Some((from, to, w)) = wires.pop_front() {
        delivered += engines[to.0].on_wire(from, w).deliveries.len();
    }
    delivered
}

fn drive_causal(n: usize, msgs: usize) -> usize {
    let mut engines: Vec<CausalBcast<u64>> =
        (0..n).map(|i| CausalBcast::new(SiteId(i), n)).collect();
    let mut wires = std::collections::VecDeque::new();
    let mut delivered = 0;
    for m in 0..msgs {
        let origin = m % n;
        let (_, out) = engines[origin].broadcast(m as u64);
        delivered += out.deliveries.len();
        for ob in out.outbound {
            for to in expand_dest(ob.dest, SiteId(origin), n) {
                wires.push_back((SiteId(origin), to, ob.wire.clone()));
            }
        }
    }
    while let Some((from, to, w)) = wires.pop_front() {
        delivered += engines[to.0].on_wire(from, w).deliveries.len();
    }
    delivered
}

fn drive_abcast<A: AtomicBcast<u64>>(mut engines: Vec<A>, msgs: usize) -> usize {
    let n = engines.len();
    let mut wires = std::collections::VecDeque::new();
    let mut delivered = 0;
    for m in 0..msgs {
        let origin = m % n;
        let (_, out) = engines[origin].broadcast(m as u64);
        delivered += out.deliveries.len();
        for ob in out.outbound {
            for to in expand_dest(ob.dest, SiteId(origin), n) {
                wires.push_back((SiteId(origin), to, ob.wire.clone()));
            }
        }
    }
    while let Some((from, to, w)) = wires.pop_front() {
        let out = engines[to.0].on_wire(from, w);
        delivered += out.deliveries.len();
        for ob in out.outbound {
            for dest in expand_dest(ob.dest, to, n) {
                wires.push_back((to, dest, ob.wire.clone()));
            }
        }
    }
    delivered
}

fn bench_broadcast_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("broadcast_5x100");
    g.bench_function("reliable", |b| b.iter(|| drive_reliable(5, 100)));
    g.bench_function("causal", |b| b.iter(|| drive_causal(5, 100)));
    g.bench_function("abcast_sequencer", |b| {
        b.iter(|| {
            let engines: Vec<SequencerAbcast<u64>> =
                (0..5).map(|i| SequencerAbcast::new(SiteId(i), 5)).collect();
            drive_abcast(engines, 100)
        })
    });
    g.bench_function("abcast_isis", |b| {
        b.iter(|| {
            let engines: Vec<IsisAbcast<u64>> =
                (0..5).map(|i| IsisAbcast::new(SiteId(i), 5)).collect();
            drive_abcast(engines, 100)
        })
    });
    g.finish();
}

/// The simulator's event queue under an interleaved schedule/pop load —
/// the single hottest structure in every run. The pre-sized variant
/// ([`EventQueue::with_capacity`]) is what `Simulation::new` uses.
fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.bench_function("schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64, ()> = EventQueue::with_capacity(10_000);
            // Scramble the times so the heap actually works for its pops.
            for i in 0..10_000u64 {
                q.schedule(
                    SimTime::from_micros(black_box(i.wrapping_mul(2_654_435_761) % 10_000)),
                    EventKind::Deliver {
                        from: SiteId(0),
                        to: SiteId((i % 5) as usize),
                        msg: i,
                    },
                );
            }
            let mut sum = 0u64;
            while let Some(e) = q.pop() {
                sum = sum.wrapping_add(e.time.as_micros());
            }
            sum
        })
    });
    g.finish();
}

/// The engine's fan-out hot path in miniature: one broadcast payload,
/// thirteen destinations. The payload mirrors the engine's real one — a
/// nested structure of heap-allocated keys and values, so a deep clone
/// is one allocation per key, not a single flat memcpy. `deep_clone`
/// copies the payload body per destination (the pre-optimization
/// behaviour); `arc_share` wraps it in an [`Arc`] once and bumps the
/// refcount per destination, which is what the replica engine does now —
/// O(1) payload copies per broadcast regardless of fan-out.
fn bench_fanout(c: &mut Criterion) {
    let mut g = c.benchmark_group("fanout");
    let payload: Vec<(String, i64)> = (0..16)
        .map(|i| (format!("key-{i:04}-abcdefgh"), i as i64))
        .collect();
    g.bench_function("clone_vs_arc_n13/deep_clone", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for _ in 0..13 {
                let copy = black_box(&payload).clone();
                // Force the copy to materialize — without this the
                // allocation+memcpy is dead code and LLVM elides it.
                total += black_box(&copy).len();
            }
            total
        })
    });
    g.bench_function("clone_vs_arc_n13/arc_share", |b| {
        b.iter(|| {
            let shared = Arc::new(black_box(&payload).clone());
            let mut total = 0usize;
            for _ in 0..13 {
                let copy = Arc::clone(&shared);
                total += black_box(&copy).len();
            }
            total
        })
    });
    g.finish();
}

/// The whole simulator, end to end: the `t2_failures` crash scenario
/// (five sites, Zipf load, one mid-run crash, view change, survivor
/// load) per protocol. Each iteration processes a fixed, deterministic
/// number of events — asserted below and ratcheted by the scenario's own
/// unit test — so `events/iteration ÷ time/iteration` is the repo's
/// headline events-per-second figure. `BENCH_wallclock.json` records the
/// same figure from the real experiment runs.
fn bench_whole_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("whole_sim");
    g.sample_size(10);
    for (proto, events) in [
        (ProtocolKind::ReliableBcast, 10129u64),
        (ProtocolKind::CausalBcast, 9149),
        (ProtocolKind::AtomicBcast, 8723),
    ] {
        g.bench_function(proto.name(), |b| {
            b.iter(|| {
                let processed = bcastdb_bench::scenarios::crash_scenario(black_box(proto));
                assert_eq!(processed, events, "{proto}: event count drifted");
                processed
            })
        });
    }
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2e_txn_5sites");
    g.sample_size(20);
    for proto in ProtocolKind::ALL {
        g.bench_function(proto.name(), |b| {
            b.iter(|| {
                let mut cluster = Cluster::builder().sites(5).protocol(proto).seed(1).build();
                let id = cluster.submit(
                    SiteId(1),
                    TxnSpec::new().read("a").write("b", 1).write("c", 2),
                );
                cluster.run_to_quiescence();
                assert!(cluster.is_committed(id));
                black_box(cluster.messages_sent())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_vector_clock,
    bench_lock_manager,
    bench_store,
    bench_broadcast_engines,
    bench_event_queue,
    bench_fanout,
    bench_whole_sim,
    bench_end_to_end
);
criterion_main!(benches);
