//! Replica placement — lifting the paper's simplifying assumption.
//!
//! The paper assumes a fully replicated database "for simplicity". This
//! module generalizes to **partial replication**: each key is stored by a
//! deterministic subset of the sites. The broadcast dissemination is
//! unchanged (the medium reaches everyone — exactly the paper's setting);
//! what changes is *who acts on a write*:
//!
//! - only holders acquire locks and install values;
//! - non-holders still participate in commitment (their votes/acks are
//!   trivially positive for keys they do not store);
//! - reads stay local, so a transaction's read set must be held at its
//!   origin — [`Placement::local_keys`] gives workload generators the
//!   legal key space per site.
//!
//! Placement is deterministic from the key alone, so every site agrees on
//! who holds what without any directory service.

use bcastdb_db::Key;
use bcastdb_sim::SiteId;
use std::collections::BTreeSet;

/// How keys map to replica sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// Every site stores every key (the paper's model; the default).
    #[default]
    Full,
    /// Each key is stored by `replicas` sites chosen deterministically
    /// (a hash of the key selects a start position on the site ring).
    Ring {
        /// Copies per key (clamped to the site count at evaluation time).
        replicas: usize,
    },
}

/// FNV-1a — a tiny deterministic hash, stable across runs and platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl Placement {
    /// True iff `site` stores `key` in an `n`-site system.
    pub fn is_holder(&self, site: SiteId, key: &Key, n: usize) -> bool {
        match *self {
            Placement::Full => true,
            Placement::Ring { replicas } => {
                let r = replicas.clamp(1, n);
                let start = (fnv1a(key.as_str().as_bytes()) % n as u64) as usize;
                let offset = (site.0 + n - start) % n;
                offset < r
            }
        }
    }

    /// The set of sites storing `key`.
    pub fn holders(&self, key: &Key, n: usize) -> BTreeSet<SiteId> {
        (0..n)
            .map(SiteId)
            .filter(|&s| self.is_holder(s, key, n))
            .collect()
    }

    /// Filters `keys` down to those stored at `site` (the legal read set
    /// for transactions originating there).
    pub fn local_keys<'a, I>(&self, site: SiteId, n: usize, keys: I) -> Vec<Key>
    where
        I: IntoIterator<Item = &'a Key>,
    {
        keys.into_iter()
            .filter(|k| self.is_holder(site, k, n))
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_placement_holds_everywhere() {
        let p = Placement::Full;
        for s in 0..5 {
            assert!(p.is_holder(SiteId(s), &Key::new("anything"), 5));
        }
        assert_eq!(p.holders(&Key::new("k"), 4).len(), 4);
    }

    #[test]
    fn ring_placement_has_exactly_r_holders() {
        let p = Placement::Ring { replicas: 3 };
        for i in 0..50 {
            let k = Key::new(format!("key{i}"));
            assert_eq!(p.holders(&k, 5).len(), 3, "{k}");
        }
    }

    #[test]
    fn ring_holders_are_consecutive_on_the_ring() {
        let p = Placement::Ring { replicas: 2 };
        let n = 5;
        for i in 0..30 {
            let k = Key::new(format!("key{i}"));
            let hs: Vec<usize> = p.holders(&k, n).iter().map(|s| s.0).collect();
            let consecutive = (0..n)
                .any(|start| (0..2).all(|off| hs.contains(&((start + off) % n))))
                && hs.len() == 2;
            assert!(consecutive, "{k}: {hs:?}");
        }
    }

    #[test]
    fn replicas_clamp_to_site_count() {
        let p = Placement::Ring { replicas: 10 };
        assert_eq!(p.holders(&Key::new("k"), 3).len(), 3);
        let p = Placement::Ring { replicas: 0 };
        assert_eq!(p.holders(&Key::new("k"), 3).len(), 1);
    }

    #[test]
    fn placement_is_deterministic() {
        let p = Placement::Ring { replicas: 2 };
        let a = p.holders(&Key::new("stable"), 7);
        let b = p.holders(&Key::new("stable"), 7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_keys_spread_over_sites() {
        let p = Placement::Ring { replicas: 1 };
        let mut seen = BTreeSet::new();
        for i in 0..100 {
            seen.extend(p.holders(&Key::new(format!("k{i}")), 5));
        }
        assert_eq!(seen.len(), 5, "hashing should reach every site");
    }

    #[test]
    fn local_keys_filters_by_holdership() {
        let p = Placement::Ring { replicas: 2 };
        let keys: Vec<Key> = (0..40).map(|i| Key::new(format!("k{i}"))).collect();
        let local = p.local_keys(SiteId(0), 5, keys.iter());
        assert!(!local.is_empty() && local.len() < keys.len());
        for k in &local {
            assert!(p.is_holder(SiteId(0), k, 5));
        }
    }
}
