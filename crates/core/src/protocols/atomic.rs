//! §5 — the Atomic Broadcast protocol.
//!
//! Write operations are disseminated by **causal broadcast** (cheap), while
//! commit requests go through **atomic broadcast**: every site delivers
//! them in the same total order. Because each site applies the same
//! deterministic **certification** rule to the same sequence, all sites
//! reach the same verdict with *no acknowledgements at all* — the paper's
//! headline result.
//!
//! Certification: the commit request carries, for every key the transaction
//! read or wrote, the identity of the committed version current at the
//! origin when the request was broadcast. A site processing the request at
//! its slot in the total order commits the transaction iff every one of
//! those versions is still current — i.e. no transaction that committed
//! earlier in the total order overwrote them (first-committer-wins on both
//! read-write and write-write conflicts). Committed write sets are applied
//! immediately in delivery order; conflicting *local* transactions still in
//! their read phase are wounded — this is the one protocol in which
//! read-only transactions can abort, the price of acknowledgement-free
//! commitment (experiment F5 measures it).
//!
//! Commit requests are processed strictly in total order; a request whose
//! causally-broadcast writes have not all arrived stalls the queue (they
//! arrive shortly — both primitives run on the same FIFO links).

use crate::metrics::AbortReason;
use crate::payload::{AbcastImpl, Payload, ReplicaMsg, TxnPriority};
use crate::protocols::Effects;
use crate::state::{txn_ref, EventBuf, LocalEvent, SiteState};
use bcastdb_broadcast::atomic::{
    AtomicBcast, IsisAbcast, IsisWire, SeqWire, SequencerAbcast, TotalDelivery,
};
use bcastdb_broadcast::causal::{self, CausalBcast};
use bcastdb_broadcast::ring::{RingAbcast, RingWire};
use bcastdb_db::lock::LockMode;
use bcastdb_db::sg::ObservedVersion;
use bcastdb_db::{Key, TxnId};
use bcastdb_sim::telemetry::TraceEvent;
use bcastdb_sim::{SimTime, SiteId};
use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;

/// One of the atomic-broadcast engines, selected by [`AbcastImpl`].
///
/// All engines carry `Arc<Payload>` so their holdback/pending buffers and
/// the per-destination fan-out share one payload allocation per broadcast.
#[derive(Debug)]
enum Abcast {
    Seq(SequencerAbcast<Arc<Payload>>),
    Isis(IsisAbcast<Arc<Payload>>),
    // Boxed: the ring engine's repair/pipeline state dwarfs the other
    // variants (clippy::large_enum_variant).
    Ring(Box<RingAbcast<Arc<Payload>>>),
}

#[derive(Debug)]
enum Work {
    Event(LocalEvent),
    CausalDeliver(causal::Delivery<Arc<Payload>>),
    TotalDeliver(TotalDelivery<Arc<Payload>>),
}

/// A commit request waiting in (or at the head of) the certification queue.
#[derive(Debug, Clone)]
struct PendingCert {
    txn: TxnId,
    prio: TxnPriority,
    n_writes: usize,
    read_versions: Vec<(Key, ObservedVersion)>,
    write_versions: Vec<(Key, ObservedVersion)>,
}

/// State-transfer snapshot of the atomic protocol's engines and version
/// directory.
#[derive(Debug, Clone)]
pub struct AbSnapshot {
    causal: bcastdb_broadcast::VectorClock,
    seq: Option<u64>,
    isis: Option<(u64, u64)>,
    ring: Option<(u64, Vec<(SiteId, u64)>)>,
    latest_writer: std::collections::BTreeMap<Key, TxnId>,
}

/// The atomic-broadcast replication protocol at one site.
#[derive(Debug)]
pub struct AtomicProto {
    cb: CausalBcast<Arc<Payload>>,
    ab: Abcast,
    view: BTreeSet<SiteId>,
    /// Commit requests in total order, certified strictly head-first.
    cert_queue: VecDeque<PendingCert>,
    /// Paced write phases: next operation index per local transaction.
    writing: std::collections::BTreeMap<TxnId, usize>,
    /// The version directory: last committed writer of every key, updated
    /// at every certification in total order. Unlike the store (which only
    /// holds replicated keys), every site maintains the full directory —
    /// it is what keeps certification deterministic under partial
    /// replication.
    latest_writer: std::collections::BTreeMap<Key, TxnId>,
    /// Reusable work queue: taken at each protocol entry point and
    /// handed back (empty) by `pump`, so steady-state message handling
    /// never allocates a fresh queue.
    idle_work: VecDeque<Work>,
}

impl AtomicProto {
    /// Creates the protocol instance for site `me` of `n`, using the given
    /// atomic-broadcast implementation.
    pub fn new(me: SiteId, n: usize, imp: AbcastImpl) -> Self {
        AtomicProto {
            // The atomic protocol never serves retransmissions from its
            // causal stream, so skip the per-message archive clone.
            cb: CausalBcast::new(me, n).without_archive(),
            ab: match imp {
                AbcastImpl::Sequencer => Abcast::Seq(SequencerAbcast::new(me, n)),
                AbcastImpl::Isis => Abcast::Isis(IsisAbcast::new(me, n)),
                AbcastImpl::Ring => Abcast::Ring(Box::new(RingAbcast::new(me, n))),
            },
            view: (0..n).map(SiteId).collect(),
            cert_queue: VecDeque::new(),
            writing: std::collections::BTreeMap::new(),
            latest_writer: std::collections::BTreeMap::new(),
            idle_work: VecDeque::new(),
        }
    }

    /// Engine snapshots for state transfer: the causal clock plus the
    /// sequencer delivery watermark, the ISIS `(lamport, delivered)` pair,
    /// or the ring `(watermark, per-origin sequence floors)` pair.
    pub fn snapshot(&self) -> AbSnapshot {
        let cb = self.cb.clock().clone();
        let (seq, isis, ring) = match &self.ab {
            Abcast::Seq(a) => (Some(a.delivered_watermark()), None, None),
            Abcast::Isis(a) => (None, Some((a.lamport(), a.delivered_count())), None),
            Abcast::Ring(a) => (None, None, Some((a.delivered_watermark(), a.seq_floors()))),
        };
        AbSnapshot {
            causal: cb,
            seq,
            isis,
            ring,
            latest_writer: self.latest_writer.clone(),
        }
    }

    /// Resumes a recovered site from a donor's snapshot and view. The ring
    /// engine only fast-forwards its counters here; its membership (and the
    /// repair round that refills undelivered payloads) is installed by the
    /// view change that readmits this site.
    pub fn resume(&mut self, donor: &AbSnapshot, view: BTreeSet<SiteId>) {
        self.cb.resume_from(&donor.causal);
        match (&mut self.ab, donor.seq, donor.isis, &donor.ring) {
            (Abcast::Seq(a), Some(w), _, _) => a.resume_from(w),
            (Abcast::Isis(a), _, Some((l, d)), _) => a.resume_from(l, d),
            (Abcast::Ring(a), _, _, Some((w, floors))) => a.resume_from(*w, floors),
            _ => {}
        }
        self.latest_writer = donor.latest_writer.clone();
        self.cert_queue.clear();
        if let (Abcast::Seq(a), Some(&coord)) = (&mut self.ab, view.iter().next()) {
            a.set_sequencer(coord);
        }
        self.view = view;
    }

    /// Handles events produced outside the protocol.
    pub fn handle_events(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        events: EventBuf,
    ) {
        let work = events.into_iter().map(Work::Event).collect();
        self.pump(st, fx, now, work);
    }

    /// Handles incoming causal-broadcast wire traffic (write operations).
    pub fn on_causal_wire(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        from: SiteId,
        wire: causal::Wire<Arc<Payload>>,
    ) {
        let out = self.cb.on_wire(from, wire);
        let mut work = std::mem::take(&mut self.idle_work);
        self.route_causal(fx, out, &mut work);
        self.pump(st, fx, now, work);
    }

    /// Handles incoming sequencer-abcast wire traffic.
    pub fn on_seq_wire(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        from: SiteId,
        wire: SeqWire<Arc<Payload>>,
    ) {
        let Abcast::Seq(ab) = &mut self.ab else {
            return; // configured for ISIS; stray message
        };
        let out = ab.on_wire(from, wire);
        let mut work = std::mem::take(&mut self.idle_work);
        Self::route_total_out(fx, out, &mut work);
        self.pump(st, fx, now, work);
    }

    /// Handles incoming ISIS-abcast wire traffic.
    pub fn on_isis_wire(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        from: SiteId,
        wire: IsisWire<Arc<Payload>>,
    ) {
        let Abcast::Isis(ab) = &mut self.ab else {
            return;
        };
        let out = ab.on_wire(from, wire);
        let mut work = std::mem::take(&mut self.idle_work);
        Self::route_isis_out(fx, out, &mut work);
        self.pump(st, fx, now, work);
    }

    /// Handles incoming ring-abcast wire traffic.
    pub fn on_ring_wire(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        from: SiteId,
        wire: RingWire<Arc<Payload>>,
    ) {
        let Abcast::Ring(ab) = &mut self.ab else {
            return;
        };
        let out = ab.on_wire(from, wire);
        let mut work = std::mem::take(&mut self.idle_work);
        Self::route_ring_out(fx, out, &mut work);
        self.pump(st, fx, now, work);
    }

    /// The ring engine's pipeline gauges, when this protocol runs the ring
    /// backend: `(inflight, forwarded)`.
    pub fn ring_gauges(&self) -> Option<(u64, u64)> {
        match &self.ab {
            Abcast::Ring(a) => Some((a.inflight(), a.forwarded_count())),
            _ => None,
        }
    }

    /// Installs a new view: the sequencer moves to the view coordinator
    /// (the ring recomputes successors and starts its repair round, keyed
    /// by the view id), and transactions from departed origins abort
    /// (their commit request may never be ordered).
    pub fn set_view(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        view_id: u64,
        members: BTreeSet<SiteId>,
    ) {
        self.view = members.clone();
        if let (Abcast::Seq(ab), Some(&coord)) = (&mut self.ab, members.iter().next()) {
            ab.set_sequencer(coord);
        }
        let mut ring_work = std::mem::take(&mut self.idle_work);
        if let Abcast::Ring(ab) = &mut self.ab {
            let roster: Vec<SiteId> = members.iter().copied().collect();
            let out = ab.set_ring(&roster, view_id);
            Self::route_ring_out(fx, out, &mut ring_work);
        }
        let undecided: Vec<TxnId> = st
            .remote
            .keys()
            .filter(|t| !st.decided.contains_key(t) && !members.contains(&t.origin))
            .copied()
            .collect();
        let mut work = ring_work;
        for txn in undecided {
            self.cert_queue.retain(|p| p.txn != txn);
            let mut events = EventBuf::new();
            st.apply_remote_abort(txn, AbortReason::ViewChange, now, &mut events);
            work.extend(events.into_iter().map(Work::Event));
        }
        self.drain_cert_queue(st, now, &mut work);
        self.pump(st, fx, now, work);
    }

    fn route_causal(
        &mut self,
        fx: &mut Effects,
        out: causal::Output<Arc<Payload>>,
        work: &mut VecDeque<Work>,
    ) {
        for ob in out.outbound {
            fx.send(ob.dest, ReplicaMsg::C(ob.wire));
        }
        for d in out.deliveries {
            work.push_back(Work::CausalDeliver(d));
        }
    }

    fn route_total_out(
        fx: &mut Effects,
        out: bcastdb_broadcast::atomic::Output<Arc<Payload>, SeqWire<Arc<Payload>>>,
        work: &mut VecDeque<Work>,
    ) {
        for ob in out.outbound {
            fx.send(ob.dest, ReplicaMsg::ASeq(ob.wire));
        }
        for d in out.deliveries {
            work.push_back(Work::TotalDeliver(d));
        }
    }

    fn route_isis_out(
        fx: &mut Effects,
        out: bcastdb_broadcast::atomic::Output<Arc<Payload>, IsisWire<Arc<Payload>>>,
        work: &mut VecDeque<Work>,
    ) {
        for ob in out.outbound {
            fx.send(ob.dest, ReplicaMsg::AIsis(ob.wire));
        }
        for d in out.deliveries {
            work.push_back(Work::TotalDeliver(d));
        }
    }

    fn route_ring_out(
        fx: &mut Effects,
        out: bcastdb_broadcast::atomic::Output<Arc<Payload>, RingWire<Arc<Payload>>>,
        work: &mut VecDeque<Work>,
    ) {
        for ob in out.outbound {
            fx.send(ob.dest, ReplicaMsg::ARing(ob.wire));
        }
        for d in out.deliveries {
            work.push_back(Work::TotalDeliver(d));
        }
    }

    fn abcast(&mut self, fx: &mut Effects, payload: Payload, work: &mut VecDeque<Work>) {
        // The single payload allocation of this broadcast.
        let payload = Arc::new(payload);
        match &mut self.ab {
            Abcast::Seq(ab) => {
                let (_, out) = ab.broadcast(payload);
                Self::route_total_out(fx, out, work);
            }
            Abcast::Isis(ab) => {
                let (_, out) = ab.broadcast(payload);
                Self::route_isis_out(fx, out, work);
            }
            Abcast::Ring(ab) => {
                let (_, out) = ab.broadcast(payload);
                Self::route_ring_out(fx, out, work);
            }
        }
    }

    fn pump(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        mut work: VecDeque<Work>,
    ) {
        while let Some(item) = work.pop_front() {
            match item {
                Work::Event(ev) => self.on_event(st, fx, now, ev, &mut work),
                Work::CausalDeliver(d) => self.on_causal_deliver(st, now, d, &mut work),
                Work::TotalDeliver(d) => self.on_total_deliver(st, now, d, &mut work),
            }
        }
        // The queue is empty again: hand it back for the next entry point.
        self.idle_work = work;
    }

    fn on_event(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        ev: LocalEvent,
        work: &mut VecDeque<Work>,
    ) {
        match ev {
            LocalEvent::ReadsComplete(id) => self.start_write_phase(st, fx, now, id, work),
            LocalEvent::ReadPaused(id) => fx.pauses.push(id),
            // No lock-driven machinery in this protocol: applies are
            // immediate and certification replaces voting.
            LocalEvent::RemotePrepared(..)
            | LocalEvent::RemoteDoomed(..)
            | LocalEvent::RemoteKeyGranted(..) => {}
        }
    }

    /// Origin side: release read locks (certification validates the reads
    /// instead), broadcast write ops causally, then the commit request
    /// atomically. With think time configured, operations go out one per
    /// step; the version vectors are snapshotted when the commit request is
    /// finally broadcast (its slot in the total order validates them).
    fn start_write_phase(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        id: TxnId,
        work: &mut VecDeque<Work>,
    ) {
        if !st.local.contains_key(&id) {
            return;
        }
        // Read locks are released now: from here on the version vectors in
        // the commit request carry the validation burden.
        let granted = st.locks.release_all(id);
        let mut events = EventBuf::new();
        st.process_grants(granted, now, &mut events);
        work.extend(events.into_iter().map(Work::Event));

        if st.think.is_zero() {
            self.emit_write_step(st, fx, now, id, usize::MAX, work);
        } else {
            self.writing.insert(id, 0);
            self.emit_write_step(st, fx, now, id, 1, work);
            if self.writing.contains_key(&id) {
                fx.write_pauses.push(id);
            }
        }
    }

    /// Resumes a paced write phase (next step after think time).
    pub fn continue_write(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        id: TxnId,
    ) {
        if st.decided.contains_key(&id) || !st.local.contains_key(&id) {
            self.writing.remove(&id);
            return;
        }
        let mut work = std::mem::take(&mut self.idle_work);
        self.emit_write_step(st, fx, now, id, 1, &mut work);
        if self.writing.contains_key(&id) {
            fx.write_pauses.push(id);
        }
        self.pump(st, fx, now, work);
    }

    /// Broadcasts up to `budget` write operations causally, then the
    /// atomically-broadcast commit request carrying the version snapshot.
    fn emit_write_step(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        id: TxnId,
        budget: usize,
        work: &mut VecDeque<Work>,
    ) {
        let Some(local) = st.local.get(&id) else {
            self.writing.remove(&id);
            return;
        };
        let prio = local.prio;
        let writes = local.spec.writes();
        let n_writes = writes.len();
        let read_versions = local.reads_observed.clone();
        let start = self.writing.get(&id).copied().unwrap_or(0);
        let end = start.saturating_add(budget).min(n_writes);
        for (index, op) in writes.iter().enumerate().take(end).skip(start) {
            let (_, out) = self.cb.broadcast(Arc::new(Payload::Write {
                txn: id,
                prio,
                op: op.clone(),
                index,
                of: n_writes,
            }));
            self.route_causal(fx, out, work);
        }
        if end >= n_writes {
            self.writing.remove(&id);
            let write_versions: Vec<(Key, ObservedVersion)> = writes
                .iter()
                .map(|w| (w.key.clone(), self.latest_writer.get(&w.key).copied()))
                .collect();
            st.trace_commit_req_out(id, now);
            self.abcast(
                fx,
                Payload::CommitReq {
                    txn: id,
                    prio,
                    n_writes,
                    read_versions,
                    write_versions,
                },
                work,
            );
        } else {
            self.writing.insert(id, end);
        }
    }

    fn on_causal_deliver(
        &mut self,
        st: &mut SiteState,
        now: SimTime,
        d: causal::Delivery<Arc<Payload>>,
        work: &mut VecDeque<Work>,
    ) {
        if let Payload::Write {
            txn, prio, op, of, ..
        } = &*d.payload
        {
            let (txn, prio, of) = (*txn, *prio, *of);
            if st.decided.contains_key(&txn) {
                return;
            }
            // Record the op only — no locks; applies happen in total order.
            let entry = st.remote_entry(txn, prio);
            entry.ops.push(op.clone());
            entry.n_writes = Some(of);
            // A commit request stalled on this write set may now proceed.
            self.drain_cert_queue(st, now, work);
        }
    }

    fn on_total_deliver(
        &mut self,
        st: &mut SiteState,
        now: SimTime,
        d: TotalDelivery<Arc<Payload>>,
        work: &mut VecDeque<Work>,
    ) {
        if let Payload::CommitReq {
            txn,
            prio,
            n_writes,
            read_versions,
            write_versions,
        } = &*d.payload
        {
            let txn = *txn;
            let gseq = d.gseq;
            let me = st.me;
            st.tracer.emit(|| TraceEvent::TotalOrder {
                at: now,
                site: me,
                txn: txn_ref(txn),
                gseq,
            });
            self.cert_queue.push_back(PendingCert {
                txn,
                prio: *prio,
                n_writes: *n_writes,
                read_versions: read_versions.clone(),
                write_versions: write_versions.clone(),
            });
            self.drain_cert_queue(st, now, work);
        }
    }

    /// Certifies queued commit requests strictly in total order; stalls
    /// when the head's write set is not fully delivered yet.
    fn drain_cert_queue(&mut self, st: &mut SiteState, now: SimTime, work: &mut VecDeque<Work>) {
        while let Some(head) = self.cert_queue.front() {
            let txn = head.txn;
            if st.decided.contains_key(&txn) {
                self.cert_queue.pop_front();
                continue;
            }
            let ops_ready = head.n_writes == 0
                || st
                    .remote
                    .get(&txn)
                    .is_some_and(|e| e.ops.len() == head.n_writes);
            if !ops_ready {
                return; // stall: causal writes still in flight
            }
            let head = self.cert_queue.pop_front().expect("front checked");
            // Make sure an entry exists even for write-free transactions.
            let entry = st.remote_entry(txn, head.prio);
            if entry.n_writes.is_none() {
                entry.n_writes = Some(0);
            }
            let pass = head
                .read_versions
                .iter()
                .chain(head.write_versions.iter())
                .all(|(key, expected)| self.latest_writer.get(key).copied() == *expected);
            st.trace_vote(txn, pass, now);
            let mut events = EventBuf::new();
            if pass {
                self.wound_conflicting_readers(st, &head, now, &mut events);
                // Advance the version directory in total order (all keys,
                // held here or not).
                if let Some(entry) = st.remote.get(&txn) {
                    for op in &entry.ops {
                        self.latest_writer.insert(op.key.clone(), txn);
                    }
                }
                st.apply_commit(txn, now, &mut events);
            } else {
                st.apply_remote_abort(txn, AbortReason::Certification, now, &mut events);
            }
            work.extend(events.into_iter().map(Work::Event));
        }
    }

    /// Aborts local transactions still holding read locks on keys the
    /// committing transaction writes. This protocol's applies never wait —
    /// that is what keeps them acknowledgement-free — so conflicting local
    /// readers (read-only included) are wounded.
    fn wound_conflicting_readers(
        &mut self,
        st: &mut SiteState,
        cert: &PendingCert,
        now: SimTime,
        events: &mut EventBuf,
    ) {
        let write_keys: Vec<Key> = st
            .remote
            .get(&cert.txn)
            .map(|e| e.ops.iter().map(|o| o.key.clone()).collect())
            .unwrap_or_default();
        for key in write_keys {
            let holders = st.locks.holders(&key);
            for (holder, mode) in holders {
                if mode == LockMode::Shared && holder != cert.txn && st.local.contains_key(&holder)
                {
                    st.abort_local(holder, AbortReason::Wounded, now, events);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ConflictPolicy;
    use bcastdb_broadcast::msg::expand_dest;
    use bcastdb_db::TxnSpec;
    use std::collections::VecDeque as Q;

    struct Rig {
        protos: Vec<AtomicProto>,
        states: Vec<SiteState>,
        wires: Q<(SiteId, SiteId, ReplicaMsg)>,
    }

    impl Rig {
        fn new(n: usize, imp: AbcastImpl) -> Rig {
            let mut states: Vec<SiteState> = (0..n)
                .map(|i| SiteState::new(SiteId(i), n, ConflictPolicy::WoundWait))
                .collect();
            for st in states.iter_mut() {
                st.wound_remote = false;
            }
            Rig {
                protos: (0..n)
                    .map(|i| AtomicProto::new(SiteId(i), n, imp))
                    .collect(),
                states,
                wires: Q::new(),
            }
        }

        fn absorb(&mut self, me: SiteId, fx: Effects) {
            let n = self.protos.len();
            for (dest, msg) in fx.sends {
                for to in expand_dest(dest, me, n) {
                    if to != me {
                        self.wires.push_back((me, to, msg.clone()));
                    }
                }
            }
        }

        fn submit(&mut self, site: usize, ts: u64, spec: TxnSpec) -> TxnId {
            let mut fx = Effects::new();
            let (id, events) = self.states[site].begin_txn(SimTime::from_micros(ts), spec);
            self.protos[site].handle_events(&mut self.states[site], &mut fx, SimTime::ZERO, events);
            self.absorb(SiteId(site), fx);
            id
        }

        fn settle(&mut self) {
            while let Some((from, to, msg)) = self.wires.pop_front() {
                let mut fx = Effects::new();
                let t = SimTime::from_micros(2);
                match msg {
                    ReplicaMsg::C(w) => self.protos[to.0].on_causal_wire(
                        &mut self.states[to.0],
                        &mut fx,
                        t,
                        from,
                        w,
                    ),
                    ReplicaMsg::ASeq(w) => {
                        self.protos[to.0].on_seq_wire(&mut self.states[to.0], &mut fx, t, from, w)
                    }
                    ReplicaMsg::AIsis(w) => {
                        self.protos[to.0].on_isis_wire(&mut self.states[to.0], &mut fx, t, from, w)
                    }
                    ReplicaMsg::ARing(w) => {
                        self.protos[to.0].on_ring_wire(&mut self.states[to.0], &mut fx, t, from, w)
                    }
                    _ => {}
                }
                self.absorb(to, fx);
            }
        }
    }

    #[test]
    fn commits_with_no_acknowledgement_traffic() {
        for imp in [AbcastImpl::Sequencer, AbcastImpl::Isis, AbcastImpl::Ring] {
            let mut rig = Rig::new(3, imp);
            let id = rig.submit(1, 1, TxnSpec::new().write("x", 4));
            rig.settle();
            for (i, st) in rig.states.iter().enumerate() {
                assert_eq!(st.decided.get(&id), Some(&true), "{imp:?} site {i}");
                assert_eq!(st.store.value(&"x".into()), 4, "{imp:?} site {i}");
                // No votes, no NACK bookkeeping.
                assert!(st.remote[&id].votes_yes.is_empty());
                assert!(st.remote[&id].my_vote.is_none());
            }
        }
    }

    #[test]
    fn certification_aborts_the_later_conflicting_writer() {
        let mut rig = Rig::new(3, AbcastImpl::Sequencer);
        // Both broadcast against the same (initial) version of x without
        // seeing each other: the one ordered second fails certification.
        let a = rig.submit(0, 10, TxnSpec::new().write("x", 1));
        let b = rig.submit(1, 20, TxnSpec::new().write("x", 2));
        rig.settle();
        let (winner, loser) = if rig.states[0].decided[&a] {
            (a, b)
        } else {
            (b, a)
        };
        for (i, st) in rig.states.iter().enumerate() {
            assert_eq!(st.decided.get(&winner), Some(&true), "site {i}");
            assert_eq!(st.decided.get(&loser), Some(&false), "site {i}");
        }
        // The abort is a certification failure at the origin.
        let origin = &rig.states[loser.origin.0];
        assert_eq!(origin.metrics.counters.get("abort_certification"), 1);
    }

    #[test]
    fn stale_read_fails_certification() {
        let mut rig = Rig::new(3, AbcastImpl::Sequencer);
        // T reads x (initial version) at site 2 but its commit request is
        // ordered after W's commit of x: the read-version check fails.
        let t = {
            // Begin T's read phase but do not finish the write phase yet:
            // craft by submitting with a read of x and a write of y, while
            // W's commit slips in between T's read and T's ordering slot.
            // With the in-memory rig everything is instantaneous, so order
            // the wires manually: submit W first but deliver T's commit
            // request last.
            let w = rig.submit(0, 10, TxnSpec::new().write("x", 7));
            let t = rig.submit(2, 20, TxnSpec::new().read("x").write("y", 1));
            // T read the initial version of x (W not yet delivered), and
            // its commit request is sequenced after W's.
            rig.settle();
            assert!(rig.states[0].decided[&w], "w committed");
            t
        };
        for (i, st) in rig.states.iter().enumerate() {
            assert_eq!(
                st.decided.get(&t),
                Some(&false),
                "site {i}: stale read must fail certification"
            );
        }
    }

    #[test]
    fn applies_follow_total_order_on_every_site() {
        let mut rig = Rig::new(4, AbcastImpl::Isis);
        let mut ids = Vec::new();
        for i in 0..4 {
            ids.push(rig.submit(
                i,
                10 + i as u64,
                TxnSpec::new().write(format!("k{i}").as_str(), i as i64),
            ));
        }
        rig.settle();
        // Disjoint keys: all four commit, and every site installed each key
        // exactly once.
        for st in &rig.states {
            for (i, id) in ids.iter().enumerate() {
                assert_eq!(st.decided.get(id), Some(&true));
                assert_eq!(st.store.value(&format!("k{i}").into()), i as i64);
            }
        }
    }
}
