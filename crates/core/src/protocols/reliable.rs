//! §3 — the Reliable Broadcast protocol.
//!
//! Write operations and the commit request are **reliably broadcast**
//! (FIFO per origin, so the commit request arrives after the writes at
//! every site). Commitment is **decentralized two-phase commit** \[Ske82\]:
//! every site broadcasts its YES/NO vote to all sites, and each site
//! decides locally once it has heard from the whole view.
//!
//! Deadlock freedom comes from the priority conflict policy in the shared
//! state layer (wound-wait by default): conflicting update transactions
//! never form waiting cycles, and a site that wounds a transaction simply
//! votes NO — the decentralized votes make site-local wounds globally
//! visible. Read-only transactions execute entirely locally, never
//! broadcast anything, and are never aborted.

use crate::metrics::AbortReason;
use crate::payload::{Payload, ReplicaMsg, TxnPriority};
use crate::protocols::{Effects, RetransmitBackoff};
use crate::state::{EventBuf, LocalEvent, SiteState};
use bcastdb_broadcast::reliable::{self, ReliableBcast};
use bcastdb_db::TxnId;
use bcastdb_sim::{SimTime, SiteId};
use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;

/// One unit of pending protocol work.
#[derive(Debug)]
enum Work {
    Event(LocalEvent),
    Deliver(Arc<Payload>),
}

/// The reliable-broadcast replication protocol at one site.
///
/// The broadcast engine is instantiated with `Arc<Payload>` so its archive,
/// holdback, and per-destination fan-out share one payload allocation per
/// broadcast instead of deep-cloning it N−1 times.
#[derive(Debug)]
pub struct ReliableProto {
    rb: ReliableBcast<Arc<Payload>>,
    view: BTreeSet<SiteId>,
    /// Paced write phases: next operation index per local transaction
    /// (only used when the cluster configures per-operation think time).
    writing: std::collections::BTreeMap<TxnId, usize>,
    /// Speculative fast commit (Emerson & Ezhilchelvan): when the failure
    /// detector suspects a view member, decide from the surviving quorum's
    /// votes instead of waiting for the suspect — see `try_decide`.
    pub fast_commit: bool,
    /// View members the local failure detector currently suspects
    /// (refreshed by the engine on every membership tick).
    suspected: BTreeSet<SiteId>,
    /// Reusable work queue: taken at each protocol entry point and
    /// handed back (empty) by `pump`, so steady-state message handling
    /// never allocates a fresh queue.
    idle_work: VecDeque<Work>,
    /// Cadence control of the periodic `RSync` solicitation (fires every
    /// tick unless [`ReliableProto::enable_backoff`] was called).
    backoff: RetransmitBackoff,
    /// Delivery watermarks at the last solicitation, the progress signal
    /// that resets the backoff.
    last_watermarks: Vec<u64>,
}

impl ReliableProto {
    /// Creates the protocol instance for site `me` of `n`.
    pub fn new(me: SiteId, n: usize) -> Self {
        ReliableProto {
            idle_work: VecDeque::new(),
            // Without loss recovery nobody ever sends a sync round, so no
            // retransmission is ever requested: skip the per-message
            // archive insert.
            rb: ReliableBcast::new(me, n).without_archive(),
            view: (0..n).map(SiteId).collect(),
            writing: std::collections::BTreeMap::new(),
            fast_commit: false,
            suspected: BTreeSet::new(),
            backoff: RetransmitBackoff::new(me),
            last_watermarks: Vec::new(),
        }
    }

    /// Creates the protocol with eager relaying enabled: the broadcast
    /// layer re-forwards first copies so agreement survives message loss
    /// (at `O(N²)` message cost).
    pub fn new_with_relay(me: SiteId, n: usize) -> Self {
        ReliableProto {
            idle_work: VecDeque::new(),
            rb: ReliableBcast::new(me, n).with_relay(),
            view: (0..n).map(SiteId).collect(),
            writing: std::collections::BTreeMap::new(),
            fast_commit: false,
            suspected: BTreeSet::new(),
            backoff: RetransmitBackoff::new(me),
            last_watermarks: Vec::new(),
        }
    }

    /// Switches the periodic `RSync` solicitation from fire-every-tick to
    /// bounded exponential backoff with deterministic jitter.
    pub fn enable_backoff(&mut self) {
        self.backoff.enable();
    }

    /// Per-origin reliable-broadcast delivery watermarks (state transfer).
    pub fn watermarks(&self) -> Vec<u64> {
        self.rb.watermarks()
    }

    /// Resumes a recovered site from a donor's watermarks and view.
    pub fn resume(&mut self, watermarks: &[u64], view: BTreeSet<SiteId>) {
        self.rb.resume_from(watermarks);
        self.view = view;
        self.suspected.clear();
    }

    /// Refreshes the failure detector's suspicion set and re-evaluates
    /// every undecided transaction: a fresh suspicion may complete a
    /// surviving quorum that the fast-commit rule can decide from now,
    /// before the view change that would evict the suspect lands.
    pub fn on_suspect(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        suspected: &BTreeSet<SiteId>,
    ) {
        if self.suspected == *suspected {
            return;
        }
        self.suspected = suspected.clone();
        if self.suspected.is_empty() {
            return;
        }
        let undecided: Vec<TxnId> = st
            .remote
            .keys()
            .filter(|t| !st.decided.contains_key(t))
            .copied()
            .collect();
        let mut work = std::mem::take(&mut self.idle_work);
        for txn in undecided {
            self.try_decide(st, now, txn, &mut work);
        }
        self.pump(st, fx, now, work);
    }

    /// Handles events produced outside the protocol (submission read
    /// phases, lock grants after releases).
    pub fn handle_events(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        events: EventBuf,
    ) {
        let work = events.into_iter().map(Work::Event).collect();
        self.pump(st, fx, now, work);
    }

    /// Handles an incoming reliable-broadcast wire message.
    pub fn on_wire(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        from: SiteId,
        wire: reliable::Wire<Arc<Payload>>,
    ) {
        let out = self.rb.on_wire(from, wire);
        let mut work = std::mem::take(&mut self.idle_work);
        self.route(fx, out, &mut work);
        self.pump(st, fx, now, work);
    }

    /// Handles a peer's loss-recovery sync: retransmit archived messages
    /// the peer is missing (its duplicate suppression absorbs extras).
    pub fn on_sync(&mut self, fx: &mut Effects, from: SiteId, watermarks: &[u64]) {
        // Answer only for our own messages: one authoritative responder per
        // gap keeps lossy-mode recovery traffic linear.
        let me = self.rb.me();
        for wire in self.rb.retransmissions_for(watermarks, 32) {
            if wire.id.origin == me {
                fx.send_to(from, ReplicaMsg::R(wire));
            }
        }
    }

    /// Periodic tick in loss-recovery (relay) mode: publish our delivery
    /// watermarks so peers can fill our gaps. With backoff enabled, the
    /// solicitation cadence doubles while the watermarks stand still and
    /// snaps back to every tick the moment they move.
    pub fn on_tick(&mut self, fx: &mut Effects) {
        let marks = self.rb.watermarks();
        if marks != self.last_watermarks {
            self.backoff.reset();
            self.last_watermarks = marks.clone();
        }
        if self.backoff.due() {
            fx.send_others(ReplicaMsg::RSync(marks));
        }
    }

    /// Installs a new view: departed sites are no longer expected to vote,
    /// and transactions originated by departed sites abort.
    pub fn set_view(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        members: BTreeSet<SiteId>,
    ) {
        self.view = members;
        let undecided: Vec<TxnId> = st
            .remote
            .keys()
            .filter(|t| !st.decided.contains_key(t))
            .copied()
            .collect();
        let mut work = std::mem::take(&mut self.idle_work);
        for txn in undecided {
            if !self.view.contains(&txn.origin) {
                let mut events = EventBuf::new();
                st.apply_remote_abort(txn, AbortReason::ViewChange, now, &mut events);
                work.extend(events.into_iter().map(Work::Event));
            } else {
                self.try_decide(st, now, txn, &mut work);
            }
        }
        self.pump(st, fx, now, work);
    }

    /// Broadcasts `payload`, routing wire traffic to `fx` and the local
    /// self-delivery into the work queue.
    fn bcast(&mut self, fx: &mut Effects, payload: Payload, work: &mut VecDeque<Work>) {
        // The single payload allocation of this broadcast: every wire copy
        // and archive entry from here on is a refcount bump.
        let (_, out) = self.rb.broadcast(Arc::new(payload));
        self.route(fx, out, work);
    }

    fn route(
        &mut self,
        fx: &mut Effects,
        out: reliable::Output<Arc<Payload>>,
        work: &mut VecDeque<Work>,
    ) {
        for ob in out.outbound {
            fx.send(ob.dest, ReplicaMsg::R(ob.wire));
        }
        for d in out.deliveries {
            work.push_back(Work::Deliver(d.payload));
        }
    }

    /// Drains the work queue to a fixed point.
    fn pump(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        mut work: VecDeque<Work>,
    ) {
        while let Some(item) = work.pop_front() {
            match item {
                Work::Event(ev) => self.on_event(st, fx, now, ev, &mut work),
                Work::Deliver(p) => self.on_deliver(st, fx, now, p, &mut work),
            }
        }
        // The queue is empty again: hand it back for the next entry point.
        self.idle_work = work;
    }

    fn on_event(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        ev: LocalEvent,
        work: &mut VecDeque<Work>,
    ) {
        match ev {
            LocalEvent::ReadsComplete(id) => self.start_write_phase(st, fx, now, id, work),
            LocalEvent::RemotePrepared(id) => self.maybe_vote(st, fx, now, id, work),
            LocalEvent::RemoteDoomed(id, _reason) => {
                if id.origin == st.me {
                    // Our own transaction was condemned here: abort it
                    // globally right away rather than waiting for the vote
                    // round.
                    self.bcast(fx, Payload::AbortDecision { txn: id }, work);
                } else {
                    self.maybe_vote(st, fx, now, id, work);
                }
            }
            LocalEvent::RemoteKeyGranted(..) => {}
            LocalEvent::ReadPaused(id) => fx.pauses.push(id),
        }
    }

    /// Origin side: reads done → broadcast the write set, then the commit
    /// request (FIFO delivers them in this order everywhere). With think
    /// time configured, operations go out one per step instead.
    fn start_write_phase(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        id: TxnId,
        work: &mut VecDeque<Work>,
    ) {
        if !st.local.contains_key(&id) {
            return; // wounded in the meantime
        };
        if st.think.is_zero() {
            self.emit_write_step(st, fx, now, id, usize::MAX, work);
        } else {
            self.writing.insert(id, 0);
            self.emit_write_step(st, fx, now, id, 1, work);
            if self.writing.contains_key(&id) {
                fx.write_pauses.push(id);
            }
        }
    }

    /// Resumes a paced write phase (next step after think time).
    pub fn continue_write(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        id: TxnId,
    ) {
        if st.decided.contains_key(&id) || !st.local.contains_key(&id) {
            self.writing.remove(&id);
            return;
        }
        let mut work = std::mem::take(&mut self.idle_work);
        self.emit_write_step(st, fx, now, id, 1, &mut work);
        if self.writing.contains_key(&id) {
            fx.write_pauses.push(id);
        }
        self.pump(st, fx, now, work);
    }

    /// Broadcasts up to `budget` write operations of `id` (usize::MAX = all
    /// of them plus the commit request in one go), then the commit request
    /// once the write set is out.
    fn emit_write_step(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        id: TxnId,
        budget: usize,
        work: &mut VecDeque<Work>,
    ) {
        let Some(local) = st.local.get(&id) else {
            self.writing.remove(&id);
            return;
        };
        let prio = local.prio;
        let writes = local.spec.writes();
        let n_writes = writes.len();
        let start = self.writing.get(&id).copied().unwrap_or(0);
        let end = start.saturating_add(budget).min(n_writes);
        for (index, op) in writes.iter().enumerate().take(end).skip(start) {
            self.bcast(
                fx,
                Payload::Write {
                    txn: id,
                    prio,
                    op: op.clone(),
                    index,
                    of: n_writes,
                },
                work,
            );
        }
        if end >= n_writes {
            self.writing.remove(&id);
            st.trace_commit_req_out(id, now);
            self.bcast(
                fx,
                Payload::CommitReq {
                    txn: id,
                    prio,
                    n_writes,
                    read_versions: Vec::new(),
                    write_versions: Vec::new(),
                },
                work,
            );
        } else {
            self.writing.insert(id, end);
        }
    }

    fn on_deliver(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        payload: Arc<Payload>,
        work: &mut VecDeque<Work>,
    ) {
        match &*payload {
            Payload::Write {
                txn, prio, op, of, ..
            } => {
                let mut events = EventBuf::new();
                st.deliver_write_op(*txn, *prio, op.clone(), *of, now, &mut events);
                work.extend(events.into_iter().map(Work::Event));
            }
            &Payload::CommitReq {
                txn,
                prio,
                n_writes,
                ..
            } => {
                if st.decided.contains_key(&txn) {
                    return;
                }
                let entry = st.remote_entry(txn, prio);
                entry.commit_req_seen = true;
                entry.n_writes = Some(n_writes);
                // THE GATE (mirror of the causal protocol's): conflicts
                // between this writer and *local readers* must be settled
                // now, or the site's vote could wait on a reader that —
                // across sites — waits back on this writer: a distributed
                // cycle no local waits-for graph can see. Read-only readers
                // veto the writer (they are never aborted); update readers
                // still in their read phase are wounded (purely local);
                // readers that already broadcast are governed by the
                // priority rules, which votes make globally visible.
                self.gate_local_readers(st, now, txn, work);
                self.maybe_vote(st, fx, now, txn, work);
            }
            &Payload::Vote { txn, site, yes } => {
                if st.decided.contains_key(&txn) {
                    return;
                }
                // A vote can arrive before any write op (no cross-origin
                // ordering); the priority on the entry is fixed up when the
                // ops arrive.
                let placeholder = TxnPriority {
                    ts: u64::MAX,
                    origin: txn.origin,
                    num: txn.num,
                };
                let entry = st.remote_entry(txn, placeholder);
                if yes {
                    entry.votes_yes.insert(site);
                } else {
                    entry.votes_no.insert(site);
                }
                self.try_decide(st, now, txn, work);
            }
            &Payload::AbortDecision { txn } => {
                let reason = st
                    .remote
                    .get(&txn)
                    .and_then(|e| e.doomed)
                    .unwrap_or(AbortReason::Wounded);
                let mut events = EventBuf::new();
                st.apply_remote_abort(txn, reason, now, &mut events);
                work.extend(events.into_iter().map(Work::Event));
            }
            Payload::Nack { .. } | Payload::Null => {
                // Not used by this protocol.
            }
        }
    }

    /// Settles conflicts between a commit-requesting writer and local
    /// readers before this site's vote can be held hostage by them.
    fn gate_local_readers(
        &mut self,
        st: &mut SiteState,
        now: SimTime,
        txn: TxnId,
        work: &mut VecDeque<Work>,
    ) {
        use bcastdb_db::lock::LockMode;
        use bcastdb_db::Key;
        let write_keys: Vec<Key> = st
            .remote
            .get(&txn)
            .map(|e| e.ops.iter().map(|o| o.key.clone()).collect())
            .unwrap_or_default();
        let mut veto_writer = false;
        let mut wound: Vec<TxnId> = Vec::new();
        for key in &write_keys {
            for (holder, mode) in st.locks.holders(key) {
                if holder == txn || mode != LockMode::Shared {
                    continue;
                }
                let Some(local) = st.local.get(&holder) else {
                    continue;
                };
                if local.spec.is_read_only() {
                    veto_writer = true;
                } else if matches!(local.phase, crate::state::LocalPhase::AcquiringReads { .. }) {
                    wound.push(holder);
                }
                // Write phase: priority rules + votes handle it.
            }
        }
        for reader in wound {
            let mut events = EventBuf::new();
            st.abort_local(reader, AbortReason::Wounded, now, &mut events);
            work.extend(events.into_iter().map(Work::Event));
        }
        if veto_writer {
            let mut events = EventBuf::new();
            st.doom_remote(txn, AbortReason::Wounded, &mut events);
            work.extend(events.into_iter().map(Work::Event));
        }
    }

    /// Casts this site's vote for `txn` if the commit request has been
    /// delivered and the outcome here is known.
    fn maybe_vote(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        txn: TxnId,
        work: &mut VecDeque<Work>,
    ) {
        if st.decided.contains_key(&txn) {
            return;
        }
        let Some(entry) = st.remote.get_mut(&txn) else {
            return;
        };
        if !entry.commit_req_seen || entry.my_vote.is_some() {
            return;
        }
        let vote = if entry.doomed.is_some() {
            Some(false)
        } else if entry.fully_prepared() {
            Some(true)
        } else {
            None // still waiting for locks or write ops
        };
        let Some(yes) = vote else { return };
        entry.my_vote = Some(yes);
        st.trace_vote(txn, yes, now);
        if yes {
            // Older transactions queued behind this now-prepared holder
            // must not wait for an irrevocable vote: doom them here (we
            // vote NO for them when their commit requests arrive).
            let mut events = EventBuf::new();
            st.doom_older_waiters_behind(txn, &mut events);
            work.extend(events.into_iter().map(Work::Event));
        }
        let site = st.me;
        self.bcast(fx, Payload::Vote { txn, site, yes }, work);
    }

    /// Decides `txn` once the view's votes are in (decentralized 2PC: each
    /// site decides independently from the same votes).
    ///
    /// With [`ReliableProto::fast_commit`] enabled, a transaction whose
    /// only missing voters are *suspected* sites is decided speculatively
    /// from the surviving quorum: if a strict majority of the view voted
    /// YES (our own YES among them) and nobody voted NO, commit without
    /// waiting for the suspects — the decision a view change would reach
    /// anyway, taken one failure-detection round earlier. The
    /// abort-on-late-conflicting-vote rule is the NO-first ordering here:
    /// a conflicting NO that lands before the speculative decision always
    /// wins; one that lands after is ignored (the decision is final).
    fn try_decide(
        &mut self,
        st: &mut SiteState,
        now: SimTime,
        txn: TxnId,
        work: &mut VecDeque<Work>,
    ) {
        if st.decided.contains_key(&txn) {
            return;
        }
        let Some(entry) = st.remote.get(&txn) else {
            return;
        };
        let mut events = EventBuf::new();
        if !entry.votes_no.is_empty() {
            let reason = entry.doomed.unwrap_or(AbortReason::NegativeVote);
            st.apply_remote_abort(txn, reason, now, &mut events);
        } else if self.view.iter().all(|s| entry.votes_yes.contains(s)) {
            st.apply_commit(txn, now, &mut events);
        } else if self.fast_commit
            // Our own YES is in: the local write set is complete and
            // prepared, so the commit can apply here immediately.
            && entry.my_vote == Some(true)
            // Every missing voter is suspected by the failure detector…
            && self
                .view
                .iter()
                .all(|s| entry.votes_yes.contains(s) || self.suspected.contains(s))
            // …and the surviving YES voters are a strict majority of the
            // view, so no other view can decide differently.
            && 2 * self.view.iter().filter(|s| entry.votes_yes.contains(s)).count()
                > self.view.len()
        {
            st.trace_fast_decide(txn, now);
            st.trace_decided(txn, true, now);
            st.apply_commit(txn, now, &mut events);
        }
        work.extend(events.into_iter().map(Work::Event));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ConflictPolicy;
    use bcastdb_broadcast::msg::expand_dest;
    use bcastdb_db::TxnSpec;
    use std::collections::VecDeque as Q;

    /// A transport-free harness: n sites' protocol + state, wires shuttled
    /// through an in-memory FIFO queue.
    struct Rig {
        protos: Vec<ReliableProto>,
        states: Vec<SiteState>,
        wires: Q<(SiteId, SiteId, ReplicaMsg)>,
    }

    impl Rig {
        fn new(n: usize) -> Rig {
            let mut states: Vec<SiteState> = (0..n)
                .map(|i| SiteState::new(SiteId(i), n, ConflictPolicy::WoundWait))
                .collect();
            for st in states.iter_mut() {
                st.resolve_read_deadlocks = true;
            }
            Rig {
                protos: (0..n).map(|i| ReliableProto::new(SiteId(i), n)).collect(),
                states,
                wires: Q::new(),
            }
        }

        fn absorb(&mut self, me: SiteId, fx: Effects) {
            let n = self.protos.len();
            for (dest, msg) in fx.sends {
                for to in expand_dest(dest, me, n) {
                    if to != me {
                        self.wires.push_back((me, to, msg.clone()));
                    }
                }
            }
        }

        fn submit(&mut self, site: usize, spec: TxnSpec) -> TxnId {
            let mut fx = Effects::new();
            let (id, events) = self.states[site].begin_txn(SimTime::from_micros(site as u64), spec);
            self.protos[site].handle_events(&mut self.states[site], &mut fx, SimTime::ZERO, events);
            self.absorb(SiteId(site), fx);
            id
        }

        /// Delivers queued wires until empty.
        fn settle(&mut self) {
            while let Some((from, to, msg)) = self.wires.pop_front() {
                let mut fx = Effects::new();
                if let ReplicaMsg::R(wire) = msg {
                    self.protos[to.0].on_wire(
                        &mut self.states[to.0],
                        &mut fx,
                        SimTime::from_micros(1),
                        from,
                        wire,
                    );
                }
                self.absorb(to, fx);
            }
        }
    }

    #[test]
    fn uncontended_txn_collects_all_votes_and_commits_everywhere() {
        let mut rig = Rig::new(3);
        let id = rig.submit(0, TxnSpec::new().write("x", 7));
        rig.settle();
        for (i, st) in rig.states.iter().enumerate() {
            assert_eq!(st.decided.get(&id), Some(&true), "site {i}");
            assert_eq!(st.store.value(&bcastdb_db::Key::new("x")), 7, "site {i}");
            let e = &st.remote[&id];
            assert_eq!(e.votes_yes.len(), 3, "site {i} saw all votes");
            assert_eq!(e.my_vote, Some(true), "site {i} voted yes");
        }
    }

    #[test]
    fn gate_vetoes_writer_conflicting_with_read_only_reader() {
        let mut rig = Rig::new(2);
        // A read-only transaction at site 1 holds S("x") and is blocked on a
        // second key held exclusively, so it stays live.
        let blocker = TxnId::new(SiteId(0), 99);
        let mut events = EventBuf::new();
        rig.states[1].deliver_write_op(
            blocker,
            crate::payload::TxnPriority {
                ts: 0,
                origin: SiteId(0),
                num: 99,
            },
            bcastdb_db::WriteOp {
                key: "y".into(),
                value: 1,
            },
            2, // claims two writes so it never prepares/terminates
            SimTime::ZERO,
            &mut events,
        );
        let (ro, ev) =
            rig.states[1].begin_txn(SimTime::from_micros(5), TxnSpec::new().read("x").read("y"));
        assert!(ev.is_empty(), "reader parked on y");
        // Site 0 submits a writer of "x": its commit request reaches site 1
        // while the read-only reader holds S(x) → site 1 vetoes (votes NO).
        let w = rig.submit(0, TxnSpec::new().write("x", 3));
        rig.settle();
        assert_eq!(rig.states[0].decided.get(&w), Some(&false), "writer vetoed");
        assert!(
            !rig.states[1].decided.contains_key(&ro),
            "read-only reader survives"
        );
        let e = &rig.states[1].remote[&w];
        assert_eq!(e.my_vote, Some(false), "site 1 cast the NO vote");
    }

    #[test]
    fn one_no_vote_aborts_globally() {
        let mut rig = Rig::new(3);
        let id = rig.submit(0, TxnSpec::new().write("x", 1));
        // Pre-doom the transaction at site 2 before its wires arrive.
        {
            let st = &mut rig.states[2];
            let e = st.remote_entry(
                id,
                crate::payload::TxnPriority {
                    ts: 0,
                    origin: SiteId(0),
                    num: 1,
                },
            );
            e.doomed = Some(AbortReason::Wounded);
        }
        rig.settle();
        for (i, st) in rig.states.iter().enumerate() {
            assert_eq!(st.decided.get(&id), Some(&false), "site {i} aborted");
            assert_eq!(
                st.store.read(&"x".into()).writer,
                None,
                "site {i}: no install"
            );
        }
    }

    #[test]
    fn relay_sync_cadence_backs_off_and_resets_on_progress() {
        use bcastdb_broadcast::msg::MsgId;

        let ticks = |p: &mut ReliableProto, n: usize| -> usize {
            let mut sent = 0;
            for _ in 0..n {
                let mut fx = Effects::new();
                p.on_tick(&mut fx);
                sent += fx.sends.len();
            }
            sent
        };

        // Without backoff (the default), every tick solicits.
        let mut plain = ReliableProto::new_with_relay(SiteId(0), 3);
        assert_eq!(ticks(&mut plain, 64), 64);

        // With backoff, a stalled site solicits exponentially more rarely.
        let mut p = ReliableProto::new_with_relay(SiteId(0), 3);
        p.enable_backoff();
        let stalled = ticks(&mut p, 64);
        assert!(
            (1..16).contains(&stalled),
            "64 stalled ticks must coalesce into a handful of syncs, got {stalled}"
        );

        // Progress (a delivery advancing the watermarks) snaps the cadence
        // back to the very next tick.
        let mut st = SiteState::new(SiteId(0), 3, ConflictPolicy::WoundWait);
        let mut fx = Effects::new();
        p.on_wire(
            &mut st,
            &mut fx,
            SimTime::from_micros(1),
            SiteId(1),
            reliable::Wire {
                id: MsgId {
                    origin: SiteId(1),
                    seq: 1,
                },
                payload: std::sync::Arc::new(Payload::Null),
            },
        );
        let mut fx = Effects::new();
        p.on_tick(&mut fx);
        assert_eq!(fx.sends.len(), 1, "post-progress tick solicits again");
    }

    #[test]
    fn fifo_guarantees_ops_before_commit_request() {
        // The commit request never outruns the writes: by the time any site
        // votes, its write set is complete.
        let mut rig = Rig::new(4);
        let id = rig.submit(1, TxnSpec::new().write("a", 1).write("b", 2).write("c", 3));
        rig.settle();
        for st in &rig.states {
            let e = &st.remote[&id];
            assert_eq!(e.ops.len(), 3);
            assert_eq!(e.n_writes, Some(3));
            assert_eq!(st.decided.get(&id), Some(&true));
        }
    }
}
