//! §2 — the point-to-point read-one write-all baseline.
//!
//! The protocol the paper starts from: every write operation is sent to
//! every site individually, and "the transaction issuing the write
//! operation remains blocked until acknowledgments have been received from
//! all sites". After the last write is acknowledged, commitment is
//! decentralized 2PC \[Ske82\]: the origin sends commit requests, every site
//! sends its vote to every site, each site decides locally.
//!
//! Two costs the broadcast protocols remove are deliberately present here:
//!
//! - **per-operation acknowledgement rounds** — write latency grows with
//!   `2 · writes · one-way-delay`;
//! - **distributed deadlock** — conflicting writers queue with no global
//!   priority, so cross-site waiting cycles form; the origin breaks them
//!   with a timeout abort (counted as [`AbortReason::Timeout`]).

use crate::metrics::AbortReason;
use crate::payload::{P2pMsg, ReplicaMsg, TxnPriority};
use crate::protocols::Effects;
use crate::state::{EventBuf, LocalEvent, SiteState};
use bcastdb_db::{TxnId, WriteOp};
use bcastdb_sim::{SimDuration, SimTime, SiteId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

#[derive(Debug)]
enum Work {
    Event(LocalEvent),
    Msg(SiteId, P2pMsg),
}

/// Origin-side write-phase bookkeeping.
#[derive(Debug, Clone)]
struct Driving {
    prio: TxnPriority,
    writes: Vec<WriteOp>,
    /// Index of the operation currently awaiting acknowledgements.
    current_op: usize,
    /// Sites that acked the current op (own grant included). A set, not
    /// a counter: a network-duplicated WriteAck must not double-count
    /// one site and advance the op early.
    acked: BTreeSet<SiteId>,
    /// When the write phase started (timeout baseline).
    started: SimTime,
    commit_sent: bool,
}

/// The point-to-point baseline protocol at one site.
#[derive(Debug)]
pub struct P2pProto {
    /// Abort a write phase that exceeds this age (deadlock resolution).
    pub timeout: SimDuration,
    driving: BTreeMap<TxnId, Driving>,
    /// Keys whose queued grant should trigger an ack to the origin:
    /// `(txn, key) → op index`.
    pending_acks: BTreeMap<(TxnId, bcastdb_db::Key), usize>,
}

impl P2pProto {
    /// Creates the protocol instance.
    pub fn new(timeout: SimDuration) -> Self {
        P2pProto {
            timeout,
            driving: BTreeMap::new(),
            pending_acks: BTreeMap::new(),
        }
    }

    /// Resumes a recovered site (state transfer): drops stale driving
    /// state; the transferred store and decision map carry the outcomes.
    pub fn resume(&mut self) {
        self.driving.clear();
        self.pending_acks.clear();
    }

    /// Handles events produced outside the protocol.
    pub fn handle_events(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        events: EventBuf,
    ) {
        let work = events.into_iter().map(Work::Event).collect();
        self.pump(st, fx, now, work);
    }

    /// Handles an incoming point-to-point message.
    pub fn on_msg(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        from: SiteId,
        msg: P2pMsg,
    ) {
        let mut work = VecDeque::new();
        work.push_back(Work::Msg(from, msg));
        self.pump(st, fx, now, work);
    }

    /// Periodic tick: abort write phases that have exceeded the deadlock
    /// timeout.
    pub fn on_tick(&mut self, st: &mut SiteState, fx: &mut Effects, now: SimTime) {
        let stuck: Vec<TxnId> = self
            .driving
            .iter()
            .filter(|(txn, d)| {
                // Once the commit requests are out every site votes YES
                // (all writes were acknowledged), so the decision is
                // assured — aborting then could split the replicas.
                !d.commit_sent
                    && !st.decided.contains_key(txn)
                    && now.saturating_since(d.started) > self.timeout
            })
            .map(|(&txn, _)| txn)
            .collect();
        let mut work = VecDeque::new();
        for txn in stuck {
            self.abort_globally(st, fx, now, txn, AbortReason::Timeout, &mut work);
        }
        self.pump(st, fx, now, work);
    }

    fn pump(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        mut work: VecDeque<Work>,
    ) {
        while let Some(item) = work.pop_front() {
            match item {
                Work::Event(ev) => self.on_event(st, fx, now, ev, &mut work),
                Work::Msg(from, m) => self.on_p2p(st, fx, now, from, m, &mut work),
            }
        }
    }

    fn on_event(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        ev: LocalEvent,
        work: &mut VecDeque<Work>,
    ) {
        match ev {
            LocalEvent::ReadsComplete(id) => self.start_write_phase(st, fx, now, id, work),
            LocalEvent::RemoteKeyGranted(txn, key) => {
                // A queued write lock came through: acknowledge it.
                if let Some(index) = self.pending_acks.remove(&(txn, key)) {
                    self.emit_ack(st, fx, txn, index, work);
                }
            }
            LocalEvent::RemotePrepared(..) => {}
            LocalEvent::ReadPaused(id) => fx.pauses.push(id),
            LocalEvent::RemoteDoomed(..) => {
                // Wounding is disabled for the baseline (wound_remote and
                // wound_local_readers are false); nothing can be doomed.
                debug_assert!(false, "baseline must not doom transactions");
            }
        }
    }

    fn start_write_phase(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        id: TxnId,
        work: &mut VecDeque<Work>,
    ) {
        let Some(local) = st.local.get(&id) else {
            return;
        };
        let prio = local.prio;
        let writes = local.spec.writes().to_vec();
        self.driving.insert(
            id,
            Driving {
                prio,
                writes,
                current_op: 0,
                acked: BTreeSet::new(),
                started: now,
                commit_sent: false,
            },
        );
        self.issue_current_op(st, fx, now, id, work);
    }

    /// Sends the current write op to every site (including processing it
    /// locally) and waits for all acknowledgements before the next op.
    fn issue_current_op(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        id: TxnId,
        work: &mut VecDeque<Work>,
    ) {
        let Some(d) = self.driving.get(&id) else {
            return;
        };
        if d.current_op >= d.writes.len() {
            self.send_commit_requests(st, fx, now, id, work);
            return;
        }
        let op = d.writes[d.current_op].clone();
        let index = d.current_op;
        for site in 0..st.n {
            let site = SiteId(site);
            if site == st.me {
                // Process locally through the same path.
                work.push_back(Work::Msg(
                    st.me,
                    P2pMsg::Write {
                        txn: id,
                        op: op.clone(),
                        index,
                    },
                ));
            } else {
                fx.send_to(
                    site,
                    ReplicaMsg::P2p(P2pMsg::Write {
                        txn: id,
                        op: op.clone(),
                        index,
                    }),
                );
            }
        }
    }

    fn send_commit_requests(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        id: TxnId,
        work: &mut VecDeque<Work>,
    ) {
        let Some(d) = self.driving.get_mut(&id) else {
            return;
        };
        if d.commit_sent {
            return;
        }
        d.commit_sent = true;
        st.trace_commit_req_out(id, now);
        let writes = d.writes.clone();
        for site in 0..st.n {
            let site = SiteId(site);
            if site == st.me {
                work.push_back(Work::Msg(
                    st.me,
                    P2pMsg::CommitReq {
                        txn: id,
                        writes: writes.clone(),
                    },
                ));
            } else {
                fx.send_to(
                    site,
                    ReplicaMsg::P2p(P2pMsg::CommitReq {
                        txn: id,
                        writes: writes.clone(),
                    }),
                );
            }
        }
    }

    fn on_p2p(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        from: SiteId,
        msg: P2pMsg,
        work: &mut VecDeque<Work>,
    ) {
        match msg {
            P2pMsg::Write { txn, op, index } => {
                if st.decided.contains_key(&txn) {
                    return;
                }
                // Ops are issued one at a time over FIFO links, so a fresh
                // op always has `index == ops.len()`. Anything below that
                // is a network duplicate: delivering it again would corrupt
                // the `ops.len() == n_writes` prepare accounting (and a dup
                // landing after the commit request would reset `n_writes`
                // to the sentinel, wedging the vote). Just re-ack if the
                // lock is held — the origin's ack set dedups.
                if st.remote.get(&txn).is_some_and(|e| index < e.ops.len()) {
                    let granted = st
                        .remote
                        .get(&txn)
                        .is_some_and(|e| e.keys_granted.contains(&op.key))
                        || !st.placement.is_holder(st.me, &op.key, st.n);
                    if granted {
                        self.emit_ack(st, fx, txn, index, work);
                    }
                    return;
                }
                let prio = self
                    .driving
                    .get(&txn)
                    .map(|d| d.prio)
                    .unwrap_or(TxnPriority {
                        ts: u64::MAX,
                        origin: txn.origin,
                        num: txn.num,
                    });
                let key = op.key.clone();
                let mut events = EventBuf::new();
                // `of` is unknown at remote sites until the commit request;
                // use a sentinel larger than any index so fully_prepared
                // stays false until then.
                st.deliver_write_op(txn, prio, op, usize::MAX, now, &mut events);
                work.extend(events.into_iter().map(Work::Event));
                // Ack now if granted (or if we do not replicate the key —
                // nothing to lock), otherwise when the queue grants it.
                let granted = st
                    .remote
                    .get(&txn)
                    .is_some_and(|e| e.keys_granted.contains(&key))
                    || !st.placement.is_holder(st.me, &key, st.n);
                if granted {
                    self.emit_ack(st, fx, txn, index, work);
                } else {
                    self.pending_acks.insert((txn, key), index);
                }
            }
            P2pMsg::WriteAck { txn, index } => {
                self.record_ack(st, fx, now, from, txn, index, work);
            }
            P2pMsg::CommitReq { txn, writes } => {
                if st.decided.contains_key(&txn) {
                    return;
                }
                let prio = self
                    .driving
                    .get(&txn)
                    .map(|d| d.prio)
                    .unwrap_or(TxnPriority {
                        ts: u64::MAX,
                        origin: txn.origin,
                        num: txn.num,
                    });
                let entry = st.remote_entry(txn, prio);
                entry.commit_req_seen = true;
                entry.n_writes = Some(writes.len());
                // Writes arrived (and were acked) before the commit request
                // on FIFO links, so the site is prepared: vote YES to all.
                entry.my_vote = Some(true);
                st.trace_vote(txn, true, now);
                let me = st.me;
                for site in 0..st.n {
                    let site = SiteId(site);
                    let vote = P2pMsg::Vote {
                        txn,
                        site: me,
                        yes: true,
                    };
                    if site == me {
                        work.push_back(Work::Msg(me, vote));
                    } else {
                        fx.send_to(site, ReplicaMsg::P2p(vote));
                    }
                }
            }
            P2pMsg::Vote { txn, site, yes } => {
                if st.decided.contains_key(&txn) {
                    return;
                }
                let prio = TxnPriority {
                    ts: u64::MAX,
                    origin: txn.origin,
                    num: txn.num,
                };
                let n = st.n;
                let entry = st.remote_entry(txn, prio);
                if yes {
                    entry.votes_yes.insert(site);
                } else {
                    entry.votes_no.insert(site);
                }
                let all_yes = (0..n).all(|s| entry.votes_yes.contains(&SiteId(s)));
                let any_no = !entry.votes_no.is_empty();
                let prepared = entry.fully_prepared();
                let mut events = EventBuf::new();
                if any_no {
                    st.apply_remote_abort(txn, AbortReason::NegativeVote, now, &mut events);
                    self.driving.remove(&txn);
                } else if all_yes && prepared {
                    st.apply_commit(txn, now, &mut events);
                    self.driving.remove(&txn);
                }
                work.extend(events.into_iter().map(Work::Event));
            }
            P2pMsg::Abort { txn } => {
                let mut events = EventBuf::new();
                st.apply_remote_abort(txn, AbortReason::Timeout, now, &mut events);
                self.driving.remove(&txn);
                work.extend(events.into_iter().map(Work::Event));
            }
        }
    }

    /// Sends (or locally records) the acknowledgement that `index` of
    /// `txn` holds its lock at this site.
    fn emit_ack(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        txn: TxnId,
        index: usize,
        work: &mut VecDeque<Work>,
    ) {
        if txn.origin == st.me {
            work.push_back(Work::Msg(st.me, P2pMsg::WriteAck { txn, index }));
        } else {
            fx.send_to(txn.origin, ReplicaMsg::P2p(P2pMsg::WriteAck { txn, index }));
        }
    }

    /// Origin side: counts acknowledgements for the current op; when all
    /// sites acked, moves to the next op (or the commit phase).
    #[allow(clippy::too_many_arguments)]
    fn record_ack(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        from: SiteId,
        txn: TxnId,
        index: usize,
        work: &mut VecDeque<Work>,
    ) {
        let n = st.n;
        let Some(d) = self.driving.get_mut(&txn) else {
            return;
        };
        if index != d.current_op {
            return; // stale ack for an op already completed
        }
        d.acked.insert(from);
        if d.acked.len() >= n {
            d.current_op += 1;
            d.acked.clear();
            self.issue_current_op(st, fx, now, txn, work);
        }
    }

    /// Origin decision to abort `txn` everywhere (timeout).
    fn abort_globally(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        txn: TxnId,
        reason: AbortReason,
        work: &mut VecDeque<Work>,
    ) {
        self.driving.remove(&txn);
        for site in 0..st.n {
            let site = SiteId(site);
            if site != st.me {
                fx.send_to(site, ReplicaMsg::P2p(P2pMsg::Abort { txn }));
            }
        }
        let mut events = EventBuf::new();
        st.apply_remote_abort(txn, reason, now, &mut events);
        work.extend(events.into_iter().map(Work::Event));
    }
}
